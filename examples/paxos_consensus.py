#!/usr/bin/env python3
"""Paxos consensus with in-network vote counting (the Agreement type).

Two proposers, two software acceptors, three learners.  The switch
counts acceptor votes with CntFwd and multicasts each decision the
moment the majority arrives — the leader/vote-counting offload of
paper §6.3.  For context, the same workload runs on the P4xos and
software-Paxos baselines.

Run:  python examples/paxos_consensus.py
"""

from repro.apps import PaxosCluster
from repro.baselines import P4xosCluster, SoftwarePaxosCluster
from repro.control import build_rack


def main() -> None:
    n_instances = 500

    deployment = build_rack(n_clients=7, n_servers=1)
    cluster = PaxosCluster(deployment,
                           proposers=["c0", "c1"],
                           acceptors=["c2", "c3"],
                           learners=["c4", "c5", "c6"])
    netrpc = cluster.run(n_instances, window=16)

    p4xos = P4xosCluster().run(n_instances, window=16)
    libpaxos = SoftwarePaxosCluster(dpdk=False).run(n_instances, window=16)
    dpdk = SoftwarePaxosCluster(dpdk=True).run(n_instances, window=16)

    print(f"decided {len(netrpc.decided)}/{n_instances} instances "
          f"(e.g. instance 0 -> {netrpc.decided[0]!r})\n")
    print(f"{'system':12} {'throughput':>14} {'p99 latency':>12}")
    rows = [("NetRPC", netrpc), ("P4xos", p4xos),
            ("DPDK paxos", dpdk), ("libpaxos", libpaxos)]
    for name, report in rows:
        print(f"{name:12} {report.throughput_msgs_per_s / 1e3:11.0f} K/s "
              f"{report.latency.p(99) * 1e6:9.1f} us")
    assert len(netrpc.decided) == n_instances
    print("\nOK: consensus reached on every instance; INC systems beat "
          "software on both axes.")


if __name__ == "__main__":
    main()
