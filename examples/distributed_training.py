#!/usr/bin/env python3
"""Distributed DNN training with in-network gradient aggregation.

Four workers train three models (VGG16, AlexNet, ResNet50) with the
paper's PushPull pattern: compute a gradient, push it through the
``Update`` RPC, receive the in-network aggregate.  Communication-bound
models (VGG16) gain most from INC; compute-bound ones (ResNet50) are
insensitive — the Figure 6 story.

Run:  python examples/distributed_training.py
"""

from repro.apps import TrainingJob
from repro.control import build_rack
from repro.workloads import MODELS


def main() -> None:
    print(f"{'model':10} {'params':>8} {'comm/comp':>10} "
          f"{'images/s/worker':>16}")
    for name in ("VGG16", "AlexNet", "ResNet50"):
        model = MODELS[name]
        deployment = build_rack(n_clients=4, n_servers=1)
        job = TrainingJob(deployment, model, scale=20_000)
        report = job.run(iterations=4)
        ratio = model.comm_to_comp_ratio(100e9)
        print(f"{name:10} {model.parameters / 1e6:6.0f}M "
              f"{ratio:10.2f} {report.images_per_second:16.1f}")
    print("\nOK: every worker finished all rounds with identical "
          "aggregated gradients.")


if __name__ == "__main__":
    main()
