#!/usr/bin/env python3
"""Quickstart: in-network gradient aggregation in ~40 lines of user code.

This is the paper's running example (Figures 2-4): two training workers
push gradient tensors through an ``Update`` RPC whose NetFilter
aggregates them on the switch; both receive the sum without the server
touching a single gradient element.

Run:  python examples/quickstart.py
"""

from repro.control import build_rack
from repro.core import Channel, NetRPCService, register_service

# 1. The interface definition — vanilla protobuf plus a `filter` clause.
PROTO = """
import "netrpc.proto";

message NewGrad  { netrpc.FPArray tensor = 1; }
message AgtrGrad { netrpc.FPArray tensor = 1; }

service GradientService {
  rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
}
"""

# 2. The NetFilter: which fields feed the INC primitives (paper Fig. 3).
NETFILTER = """{
  "AppName": "quickstart",
  "Precision": 6,
  "get":   "AgtrGrad.tensor",
  "addTo": "NewGrad.tensor",
  "clear": "copy",
  "modify": "nop",
  "CntFwd": {"to": "ALL", "threshold": 2, "key": "ClientID"}
}"""


def main() -> None:
    # 3. A simulated rack: two clients, one server, one NetRPC switch.
    deployment = build_rack(n_clients=2, n_servers=1)

    # 4. Register the service (the controller reserves switch memory,
    #    installs the admission entry, and wires the host agents).
    service = NetRPCService.from_text(PROTO, "GradientService",
                                      {"agtr.nf": NETFILTER})
    registered = register_service(deployment, service, server="s0",
                                  clients=["c0", "c1"])

    # 5. Vanilla-gRPC-looking client code.
    stub0 = Channel(registered, "c0").stub()
    stub1 = Channel(registered, "c1").stub()
    new_grad = registered.binding("Update").request

    event0 = stub0.call_async("Update", new_grad(tensor=[0.1] * 64), round=0)
    event1 = stub1.call_async("Update", new_grad(tensor=[0.2] * 64), round=0)

    reply0, info = deployment.sim.run_until(event0, limit=5.0)
    reply1, _ = deployment.sim.run_until(event1, limit=5.0)

    print("worker c0 got aggregated tensor[:4]:", reply0.tensor[:4])
    print("worker c1 got aggregated tensor[:4]:", reply1.tensor[:4])
    print(f"switch cache hit ratio: {info.cache_hit_ratio:.0%}")
    print(f"server data-plane packets seen: "
          f"{deployment.server_agent(0).stats['data_rx']} "
          f"(aggregation happened in the network)")
    assert all(abs(v - 0.3) < 1e-5 for v in reply0.tensor)
    print("OK: 0.1 + 0.2 aggregated to 0.3 in-network.")


if __name__ == "__main__":
    main()
