#!/usr/bin/env python3
"""MapReduce WordCount over NetRPC (the AsyncAgtr application type).

Four mappers count words in a synthetic review corpus; the partial
counts aggregate *inside the switch* as they stream through, and a
single Query reads the totals back.  The result is validated against a
local reference count.

Run:  python examples/wordcount_mapreduce.py
"""

from repro.apps import WordCountJob
from repro.control import build_rack
from repro.workloads import SyntheticCorpus, word_count


def main() -> None:
    deployment = build_rack(n_clients=4, n_servers=1)
    corpus = SyntheticCorpus(vocabulary_size=2000, zipf_s=1.1, seed=42)

    shards = {f"c{i}": list(corpus.documents(10)) for i in range(4)}
    total_docs = sum(len(docs) for docs in shards.values())

    job = WordCountJob(deployment, batch_words=256)
    result = job.run(shards)

    expected = word_count(doc for docs in shards.values() for doc in docs)
    top = sorted(expected, key=expected.get, reverse=True)[:8]

    print(f"counted {total_docs} documents, "
          f"{len(expected)} distinct words")
    print(f"map phase took {result.elapsed_s * 1e3:.2f} ms simulated, "
          f"switch cache hit ratio {result.cache_hit_ratio:.0%}")
    print("top words (INC count / local reference):")
    for word in top:
        print(f"  {word:12} {result.counts[word]:6d} / {expected[word]}")
    mismatches = [w for w in expected
                  if result.counts.get(w, 0) != expected[w]]
    assert not mismatches, f"count mismatch for {mismatches[:3]}"
    print("OK: every word count matches the local reference exactly.")


if __name__ == "__main__":
    main()
