#!/usr/bin/env python3
"""Network monitoring with sub-RTT counter reads (the KeyValue type).

Two monitoring points stream flow observations from a heavy-tailed
synthetic trace (a CAIDA stand-in) into the INC map; per-flow counters
accumulate on the switch.  Operator queries then *bounce at the switch*
— the collector server never sees them — which is the latency win the
paper measures in Table 5.

Run:  python examples/network_monitoring.py
"""

from repro.apps import FlowMonitor
from repro.control import build_rack
from repro.workloads import SyntheticTrace


def main() -> None:
    deployment = build_rack(n_clients=2, n_servers=1)
    trace = SyntheticTrace(n_flows=2000, seed=7)
    records = list(trace.packets(8000))
    shards = {"c0": records[: len(records) // 2],
              "c1": records[len(records) // 2:]}

    monitor = FlowMonitor(deployment, batch_flows=32)
    stats = monitor.feed(shards)
    deployment.sim.run(until=deployment.sim.now + 0.05)

    truth = trace.exact_counts(records)
    top = sorted(truth, key=truth.get, reverse=True)[:5]

    server_rx_before = deployment.server_agent(0).stats["data_rx"]
    counts = monitor.query(top)
    server_rx_after = deployment.server_agent(0).stats["data_rx"]
    latency = monitor.query_latency(top[0])

    print(f"streamed {stats.packets_observed} observations in "
          f"{stats.batches_sent} batches "
          f"({stats.elapsed_s * 1e3:.2f} ms simulated)")
    print("heaviest flows (INC counter / ground truth):")
    for flow in top:
        print(f"  {flow:45} {counts[flow]:5d} / {truth[flow]}")
    print(f"single-counter query latency: {latency * 1e6:.1f} us")
    print(f"server packets during queries: "
          f"{server_rx_after - server_rx_before} (reads bounced at switch)")
    assert all(counts[f] == truth[f] for f in top)
    print("OK: heavy-hitter counters are exact and reads are sub-RTT.")


if __name__ == "__main__":
    main()
