#!/usr/bin/env python3
"""A distributed test&set lock served entirely by the switch.

The first GetLock bounces back granted in one switch round trip; a
contender's attempts are absorbed in-network until Release clears the
counter (paper Appendix D, Figures 19-21).

Run:  python examples/distributed_lock.py
"""

from repro.apps import LockService
from repro.control import build_rack


def main() -> None:
    deployment = build_rack(n_clients=2, n_servers=1)
    sim = deployment.sim
    lock = LockService(deployment)

    t0 = sim.now
    lock.acquire("c0", "shared-resource")
    print(f"c0 acquired the lock in {(sim.now - t0) * 1e6:.1f} us")

    blocked = lock.acquire_async("c1", "shared-resource")
    sim.run(until=sim.now + 0.002)
    print(f"c1 blocked while c0 holds it: {not blocked.triggered}")
    assert not blocked.triggered

    t1 = sim.now
    lock.release("c0", "shared-resource")
    sim.run_until(blocked, limit=sim.now + 5.0)
    print(f"c1 acquired {1e3 * (sim.now - t1):.2f} ms after the release")

    lock.release("c1", "shared-resource")
    sim.run(until=sim.now + 0.005)
    assert lock.holder_view("shared-resource") == 0
    print("OK: mutual exclusion held; lock is free again.")


if __name__ == "__main__":
    main()
