"""Behavioural models of the paper's comparison systems (Table 3).

Each baseline implements the mechanism that differentiates its measured
behaviour: SwitchML's in-order slot pool, ATP's server-ACK windows,
BytePS's software parameter servers, P4xos's in-switch acceptors,
libpaxos/DPDK-paxos's host-side message flow, ElasticSketch's two-part
sketch, ASK's hash-addressed cache, and a software-only NetRPC stack as
the pure-DPDK baseline.
"""

from .aggregation import (
    AggChunkPacket,
    AggregationJob,
    BaselineAggSwitch,
    build_aggregation_job,
)
from .paxos import P4xosCluster, PaxosBaselineReport, SoftwarePaxosCluster
from .sketch import ElasticSketch, SketchPacket, SketchSwitch
from .wrappers import ask_programs, register_ask, register_software_inc

__all__ = [
    "AggregationJob", "AggChunkPacket", "BaselineAggSwitch",
    "build_aggregation_job",
    "P4xosCluster", "SoftwarePaxosCluster", "PaxosBaselineReport",
    "ElasticSketch", "SketchSwitch", "SketchPacket",
    "register_ask", "register_software_inc", "ask_programs",
]
