"""Aggregation baselines: SwitchML, ATP, and BytePS (paper §6.3, Fig. 6/10).

Each baseline implements the *distinguishing mechanism* that drives its
measured behaviour:

* **SwitchML** — a fixed pool of switch slots reused in order.  A worker
  may send chunk ``i`` only after chunk ``i - pool`` completed, so a
  single lost packet head-of-line-blocks the slot pool (the paper's 43%
  degradation at 1% loss).  Aggregation results multicast from the
  switch after a recirculation pass.
* **ATP** — out-of-order windows with per-packet parameter-server ACKs:
  completed aggregates are forwarded to the PS, which returns the result
  (and thereby the ACK) to the workers.  Loss only costs the lost packet
  (graceful degradation), at the price of PS involvement and switch
  recirculation.
* **BytePS** — no INC: workers shard chunks across software parameter
  servers whose per-packet CPU cost creates the incast/processing
  bottleneck INC removes.
"""

from __future__ import annotations

import itertools
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.netsim import (
    Calibration,
    DEFAULT_CALIBRATION,
    Host,
    LossModel,
    Simulator,
    star,
)
from repro.switchsim import PlainSwitch

__all__ = ["AggChunkPacket", "BaselineAggSwitch", "AggregationJob",
           "build_aggregation_job"]

_uid = itertools.count()

_CHUNK_VALUES = 32
_DATA_TEMPLATE = array("q", [1]) * _CHUNK_VALUES
_PKT_BYTES = 192          # linear packets, like NetRPC's SyncAgtr
_RESULT_BYTES = 192
_ACK_BYTES = 64


@dataclass
class AggChunkPacket:
    """A gradient chunk / result / ACK for the baseline protocols.

    ``values`` is a columnar ``array('q')`` (same layout as the NetRPC
    ``KVBlock`` value column) so chunk payloads copy and accumulate as
    buffers rather than per-element object lists.
    """

    kind: str                  # data | result | ack
    src: str
    dst: str
    worker: str = ""
    chunk: int = -1
    values: array = field(default_factory=lambda: array("q"))
    size_bytes: int = _PKT_BYTES
    ecn: bool = False
    uid: int = field(default_factory=lambda: next(_uid))


class BaselineAggSwitch(PlainSwitch):
    """Slot-pool aggregation switch shared by SwitchML and ATP modes."""

    def __init__(self, sim: Simulator, name: str, n_workers: int,
                 mode: str, ps: str, n_slots: int = 128,
                 cal: Calibration = DEFAULT_CALIBRATION):
        super().__init__(sim, name, cal)
        if mode not in ("switchml", "atp"):
            raise ValueError(f"unknown aggregation mode {mode!r}")
        self.mode = mode
        self.n_workers = n_workers
        self.n_slots = n_slots
        self.ps = ps
        self.workers: Tuple[str, ...] = ()
        # slot -> (chunk, accumulated value column, contributed workers)
        self._slots: Dict[int, Tuple[int, array, Set[str]]] = {}
        # slot -> chunk whose aggregation completed (kept until the slot
        # is claimed by a newer chunk) so a worker that lost the result
        # can be answered from the cache instead of deadlocking the pool.
        self._completed: Dict[int, int] = {}
        self._recirc_busy_until = 0.0

    def receive(self, packet, link) -> None:
        self.stats.add("rx_pkts")
        if isinstance(packet, AggChunkPacket) and packet.kind == "result" \
                and packet.dst == "*workers*":
            # ATP: the PS sends one result; the switch replicates it.
            self.sim.schedule(self.cal.switch_pipeline_delay_s,
                              self._multicast_result, packet.chunk)
            return
        if not isinstance(packet, AggChunkPacket) or packet.kind != "data":
            self.sim.schedule(self.cal.switch_pipeline_delay_s,
                              self._forward, packet)
            return
        self.sim.schedule(self.cal.switch_pipeline_delay_s,
                          self._aggregate, packet)

    def _multicast_result(self, chunk: int) -> None:
        for worker in self.workers:
            out = AggChunkPacket(kind="result", src=self.name, dst=worker,
                                 chunk=chunk, size_bytes=_RESULT_BYTES)
            self.send(out, self.next_hop_for(worker))

    def _aggregate(self, packet: AggChunkPacket) -> None:
        slot_index = packet.chunk % self.n_slots
        if self._completed.get(slot_index) == packet.chunk:
            # Retransmission for an already-completed chunk: the worker
            # lost the result; answer from the slot's cached aggregate.
            self.stats.add("result_replays")
            if self.mode == "atp":
                out = AggChunkPacket(kind="result", src=self.name,
                                     dst=self.ps, chunk=packet.chunk,
                                     size_bytes=_RESULT_BYTES)
                self.send(out, self.next_hop_for(self.ps))
            else:
                out = AggChunkPacket(kind="result", src=self.name,
                                     dst=packet.src, chunk=packet.chunk,
                                     size_bytes=_RESULT_BYTES)
                self.send(out, self.next_hop_for(packet.src))
            return
        slot = self._slots.get(slot_index)
        stale = (slot is not None and packet.chunk < slot[0]) or \
            self._completed.get(slot_index, -1) > packet.chunk
        if stale:
            # A retransmission from an older slot generation.  The pool
            # discipline guarantees that generation completed (someone
            # advanced past it), so answer with a replayed result rather
            # than corrupting the current occupant.
            self.stats.add("stale_replays")
            out = AggChunkPacket(kind="result", src=self.name,
                                 dst=packet.src, chunk=packet.chunk,
                                 size_bytes=_RESULT_BYTES)
            self.send(out, self.next_hop_for(packet.src))
            return
        if slot is None or slot[0] != packet.chunk:
            slot = (packet.chunk, array("q", bytes(8 * len(packet.values))),
                    set())
            self._slots[slot_index] = slot
            self._completed.pop(slot_index, None)
        chunk, values, contributed = slot
        if packet.worker in contributed:
            self.stats.add("duplicate_contributions")
            return
        contributed.add(packet.worker)
        for index, value in enumerate(packet.values):
            values[index] += value
        if len(contributed) < self.n_workers:
            self.stats.add("absorbed")
            return
        # Complete: a recirculation pass produces the result packet(s).
        del self._slots[slot_index]
        self._completed[slot_index] = chunk
        self.stats.add("completions")
        tx = _RESULT_BYTES * 8.0 / self.cal.link_bandwidth_bps
        start = max(self.sim.now, self._recirc_busy_until)
        self._recirc_busy_until = start + tx
        delay = (start + tx + self.cal.switch_recirculation_delay_s
                 - self.sim.now)
        self.sim.schedule(delay, self._emit_result, packet.chunk)

    def _emit_result(self, chunk: int) -> None:
        result_values: List[int] = []
        if self.mode == "atp":
            # Forward the aggregate to the PS; the PS responds to workers.
            out = AggChunkPacket(kind="result", src=self.name, dst=self.ps,
                                 chunk=chunk, size_bytes=_RESULT_BYTES)
            self.send(out, self.next_hop_for(self.ps))
            return
        # switchml: multicast straight back to the workers.
        for worker in self.workers:
            out = AggChunkPacket(kind="result", src=self.name, dst=worker,
                                 chunk=chunk, size_bytes=_RESULT_BYTES)
            self.send(out, self.next_hop_for(worker))


class _WorkerBase:
    """Shared sender machinery: outstanding chunks plus retransmission."""

    RTO = 50e-6               # ~10x the rack RTT, like the real systems
    MAX_ATTEMPTS = 60

    def __init__(self, sim: Simulator, host: Host, tor: str, name: str,
                 total_chunks: int, window: int):
        self.sim = sim
        self.host = host
        self.tor = tor
        self.name = name
        self.total_chunks = total_chunks
        self.window = window
        self.next_chunk = 0
        self.completed: Set[int] = set()
        self.outstanding: Dict[int, int] = {}   # chunk -> attempts
        self.done = sim.event()
        self.stats = {"sent": 0, "retransmits": 0}
        host.set_handler(self._on_packet)

    # -- override points -------------------------------------------------
    def _dst_for(self, chunk: int) -> str:
        raise NotImplementedError

    def _may_send(self, chunk: int) -> bool:
        return len(self.outstanding) < self.window

    # ---------------------------------------------------------------
    def start(self) -> None:
        self._pump()

    def _pump(self) -> None:
        while self.next_chunk < self.total_chunks and \
                self._may_send(self.next_chunk):
            self._transmit(self.next_chunk)
            self.next_chunk += 1
        if not self.outstanding and self.next_chunk >= self.total_chunks \
                and not self.done.triggered:
            self.done.succeed()

    def _transmit(self, chunk: int) -> None:
        attempts = self.outstanding.get(chunk, 0) + 1
        self.outstanding[chunk] = attempts
        packet = AggChunkPacket(kind="data", src=self.host.name,
                                dst=self._dst_for(chunk), worker=self.name,
                                chunk=chunk, values=_DATA_TEMPLATE[:])
        self.host.send(packet, self.tor)
        self.stats["sent" if attempts == 1 else "retransmits"] += 1
        self.sim.schedule(self.RTO * min(4, attempts), self._timeout,
                          (chunk, attempts))

    def _timeout(self, pair) -> None:
        chunk, attempts = pair
        if chunk in self.completed or \
                self.outstanding.get(chunk) != attempts:
            return
        if attempts >= self.MAX_ATTEMPTS:  # pragma: no cover - give up
            self.outstanding.pop(chunk, None)
            self._pump()
            return
        self._transmit(chunk)

    def _on_packet(self, packet, _link) -> None:
        if not isinstance(packet, AggChunkPacket) or \
                packet.kind != "result":
            return
        if packet.chunk in self.completed:
            return
        self.completed.add(packet.chunk)
        self.outstanding.pop(packet.chunk, None)
        self._pump()


class SwitchMLWorker(_WorkerBase):
    """In-order slot pool: chunk i waits for chunk i - window."""

    def _dst_for(self, chunk: int) -> str:
        return "ps"  # routed via the switch, absorbed there

    def _may_send(self, chunk: int) -> bool:
        # The slot for this chunk must be free: the previous occupant
        # (chunk - window) must have completed.  This is the head-of-line
        # blocking that makes SwitchML fragile under loss.
        previous = chunk - self.window
        if previous >= 0 and previous not in self.completed:
            return False
        return len(self.outstanding) < self.window


class ATPWorker(_WorkerBase):
    """Out-of-order window with PS-returned results as ACKs.

    ATP's AIMD treats retransmission timeouts as congestion (unlike
    NetRPC's ECN-only design), so its window halves on loss — the
    behaviour behind its Figure 10 curve.
    """

    MIN_WINDOW = 16

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._max_window = self.window

    def _dst_for(self, chunk: int) -> str:
        return "ps"

    def _timeout(self, pair) -> None:
        chunk, attempts = pair
        if chunk not in self.completed and \
                self.outstanding.get(chunk) == attempts:
            self.window = max(self.MIN_WINDOW, self.window // 2)
        super()._timeout(pair)

    def _on_packet(self, packet, _link) -> None:
        if isinstance(packet, AggChunkPacket) and packet.kind == "result" \
                and self.window < self._max_window:
            self.window += 1  # additive recovery per completion
        super()._on_packet(packet, _link)


class BytePSWorker(_WorkerBase):
    """Software parameter servers, sharded by chunk."""

    def __init__(self, *args, ps_hosts: List[str], **kwargs):
        self.ps_hosts = ps_hosts
        super().__init__(*args, **kwargs)

    def _dst_for(self, chunk: int) -> str:
        return self.ps_hosts[chunk % len(self.ps_hosts)]


class _ParameterServer:
    """Software aggregation endpoint (BytePS; also ATP's result turn)."""

    def __init__(self, sim: Simulator, host: Host, tor: str,
                 n_workers: int, workers: List[str], software: bool,
                 cal: Calibration):
        self.sim = sim
        self.host = host
        self.tor = tor
        self.n_workers = n_workers
        self.workers = workers
        self.software = software
        self.cal = cal
        self._contrib: Dict[int, Set[str]] = {}
        self._completed: Set[int] = set()
        host.set_handler(self._on_packet)

    def _on_packet(self, packet, _link) -> None:
        if not isinstance(packet, AggChunkPacket):
            return
        if packet.kind == "result":
            # ATP: the switch aggregated and forwarded here for the PS
            # ACK; answer with one result the switch will replicate.
            out = AggChunkPacket(kind="result", src=self.host.name,
                                 dst="*workers*", chunk=packet.chunk,
                                 size_bytes=_RESULT_BYTES)
            self.host.send(out, self.tor)
            return
        if packet.kind != "data":
            return
        if self.software:
            self.host.run_on_core(self.cal.server_sw_inc_pkt_cpu_s,
                                  self._software_aggregate, packet)

    def _software_aggregate(self, packet: AggChunkPacket) -> None:
        if packet.chunk in self._completed:
            # A worker that lost its result retransmitted the chunk.
            self._respond_to(packet.chunk, packet.worker)
            return
        contributed = self._contrib.setdefault(packet.chunk, set())
        if packet.worker in contributed:
            return
        contributed.add(packet.worker)
        if len(contributed) >= self.n_workers:
            del self._contrib[packet.chunk]
            self._completed.add(packet.chunk)
            self._respond(packet.chunk)

    def _respond(self, chunk: int) -> None:
        for worker in self.workers:
            self._respond_to(chunk, worker)

    def _respond_to(self, chunk: int, worker: str) -> None:
        out = AggChunkPacket(kind="result", src=self.host.name,
                             dst=worker, chunk=chunk,
                             size_bytes=_RESULT_BYTES)
        self.host.send(out, self.tor)


@dataclass
class AggregationJob:
    """A wired-up baseline run; ``run()`` reports per-sender goodput."""

    sim: Simulator
    workers: List[_WorkerBase]
    total_chunks: int
    kind: str

    def run(self, limit: float = 60.0) -> float:
        """Run to completion; returns per-sender goodput in Gbps."""
        start = self.sim.now
        for worker in self.workers:
            worker.start()
        done = self.sim.all_of([w.done for w in self.workers])
        self.sim.run_until(done, limit=start + limit)
        elapsed = self.sim.now - start
        payload_bits = self.total_chunks * _CHUNK_VALUES * 4 * 8
        return payload_bits / elapsed / 1e9 if elapsed > 0 else 0.0


def build_aggregation_job(kind: str, n_workers: int, total_chunks: int,
                          cal: Calibration = DEFAULT_CALIBRATION,
                          seed: int = 0, n_ps: int = 0,
                          window: int = 0,
                          loss_factory=None) -> AggregationJob:
    """Assemble a SwitchML / ATP / BytePS run on a one-switch rack.

    Default windows reflect each design: SwitchML's modest in-order slot
    pool, ATP's 256-deep out-of-order window, BytePS with 8 sharded
    parameter servers (the paper's software configuration).
    """
    if kind not in ("switchml", "atp", "byteps"):
        raise ValueError(f"unknown baseline kind {kind!r}")
    if window <= 0:
        window = {"switchml": 128, "atp": 320, "byteps": 256}[kind]
    if n_ps <= 0:
        n_ps = 8 if kind == "byteps" else 1
    sim = Simulator(seed=seed)
    worker_names = [f"w{i}" for i in range(n_workers)]
    if kind in ("switchml", "atp"):
        switch = BaselineAggSwitch(sim, "sw0", n_workers, kind, ps="ps",
                                   n_slots=window, cal=cal)
        ps_hosts = [Host(sim, "ps", cores=cal.host_agent_cores,
                         rx_cpu_cost_s=cal.host_pkt_cpu_s)]
    elif kind == "byteps":
        switch = PlainSwitch(sim, "sw0", cal=cal)
        ps_hosts = [Host(sim, f"ps{i}" if n_ps > 1 else "ps",
                         cores=cal.host_agent_cores,
                         rx_cpu_cost_s=cal.host_pkt_cpu_s)
                    for i in range(n_ps)]
    else:
        raise ValueError(f"unknown baseline kind {kind!r}")
    hosts = [Host(sim, name, cores=cal.host_agent_cores,
                  rx_cpu_cost_s=cal.host_pkt_cpu_s)
             for name in worker_names]
    topo = star(sim, switch, hosts + ps_hosts, cal=cal)
    if loss_factory is not None:
        for link in topo.links.values():
            link.loss = loss_factory()
    if isinstance(switch, BaselineAggSwitch):
        switch.workers = tuple(worker_names)

    workers: List[_WorkerBase] = []
    ps_names = [h.name for h in ps_hosts]
    for name, host in zip(worker_names, hosts):
        if kind == "switchml":
            worker = SwitchMLWorker(sim, host, "sw0", name, total_chunks,
                                    window)
        elif kind == "atp":
            worker = ATPWorker(sim, host, "sw0", name, total_chunks,
                               window)
        else:
            worker = BytePSWorker(sim, host, "sw0", name, total_chunks,
                                  window, ps_hosts=ps_names)
        workers.append(worker)
    for ps_host in ps_hosts:
        _ParameterServer(sim, ps_host, "sw0", n_workers, worker_names,
                         software=(kind == "byteps"), cal=cal)
    return AggregationJob(sim=sim, workers=workers,
                          total_chunks=total_chunks, kind=kind)
