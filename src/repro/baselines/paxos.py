"""Consensus baselines: P4xos and software Paxos (paper §6.3 / Figure 7).

* **P4xos** — sequencer *and* acceptors live on the switch: a proposal
  is decided in one switch traversal and multicast to the learners
  (sub-RTT, no host on the critical path).
* **libpaxos** — classic kernel-networking Paxos: proposer -> leader ->
  acceptors -> leader -> learners, every hop paying kernel-stack
  per-packet CPU.
* **DPDK Paxos** — the same message flow on a kernel-bypass stack
  (smaller per-packet cost), the paper's stronger software baseline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.netsim import (
    Calibration,
    DEFAULT_CALIBRATION,
    Host,
    LatencyRecorder,
    Simulator,
    star,
)
from repro.switchsim import PlainSwitch

__all__ = ["P4xosCluster", "SoftwarePaxosCluster", "PaxosBaselineReport"]

_uid = itertools.count()

# Per-message processing cost of the two software consensus stacks
# (protocol logic + stack traversal), calibrated so the libpaxos:DPDK
# throughput ratio matches the paper's Figure 7.
KERNEL_PKT_CPU_S = 3.2e-6     # libpaxos: kernel UDP stack
DPDK_PKT_CPU_S = 2.0e-6       # DPDK paxos: kernel bypass
SOFTWARE_PAXOS_CORES = 2


@dataclass
class PaxosMsg:
    kind: str                   # propose | accept | accepted | learn
    src: str
    dst: str
    instance: int
    value: str
    sent_at: float
    size_bytes: int = 128
    ecn: bool = False
    uid: int = field(default_factory=lambda: next(_uid))


@dataclass
class PaxosBaselineReport:
    decided: Dict[int, str]
    throughput_msgs_per_s: float
    latency: LatencyRecorder
    elapsed_s: float


class P4xosSwitch(PlainSwitch):
    """Sequencer + acceptor in the switch: decide and multicast.

    ``acceptor_replicas`` models P4xos's fault-tolerant deployment: each
    learner receives one 2b message per switch-acceptor replica and
    counts the majority itself — the per-decision learner load NetRPC
    avoids by multicasting only the final result (§6.3).
    """

    def __init__(self, sim: Simulator, name: str, learners: List[str],
                 cal: Calibration = DEFAULT_CALIBRATION,
                 acceptor_replicas: int = 3):
        super().__init__(sim, name, cal)
        self.learners = learners
        self.acceptor_replicas = acceptor_replicas
        self._decided: Set[int] = set()

    def receive(self, packet, link) -> None:
        self.stats.add("rx_pkts")
        if isinstance(packet, PaxosMsg) and packet.kind == "propose":
            self.sim.schedule(self.cal.switch_pipeline_delay_s,
                              self._decide, packet)
            return
        self.sim.schedule(self.cal.switch_pipeline_delay_s,
                          self._forward, packet)

    def _decide(self, packet: PaxosMsg) -> None:
        # The in-switch acceptor state makes the decision immediate;
        # duplicates (proposer retries) re-multicast idempotently.
        self._decided.add(packet.instance)
        self.stats.add("decisions")
        for learner in self.learners + [packet.src]:
            for _replica in range(self.acceptor_replicas):
                out = PaxosMsg(kind="learn", src=self.name, dst=learner,
                               instance=packet.instance,
                               value=packet.value,
                               sent_at=packet.sent_at)
                self.send(out, self.next_hop_for(learner))


class _Learner:
    """Handles "learn" messages; only true learners feed the metrics."""

    def __init__(self, sim: Simulator, host: Host, cluster,
                 is_learner: bool = True):
        self.sim = sim
        self.cluster = cluster
        self.is_learner = is_learner
        host.set_handler(self._on_packet)

    def _on_packet(self, packet, _link) -> None:
        if isinstance(packet, PaxosMsg) and packet.kind == "learn":
            self.cluster.record_decision(packet, self.is_learner)


class _BaseCluster:
    """Shared harness: proposers pipeline instances, learners record."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.decided: Dict[int, str] = {}
        self.latency = LatencyRecorder("consensus")

    def record_decision(self, packet: PaxosMsg,
                        is_learner: bool = True) -> None:
        waiter = self._waiters.pop(packet.instance, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed()
        if not is_learner or packet.instance in self.decided:
            return
        # Throughput and latency are measured where the paper measures
        # them: at the learners.
        self.decided[packet.instance] = packet.value
        self.latency.record(self.sim.now - packet.sent_at)

    # -- proposer machinery ------------------------------------------------
    def _propose(self, host: Host, instance: int) -> None:
        raise NotImplementedError

    def _proposer_process(self, host: Host, instances: List[int],
                          window: int, gap_s: float = 0.0):
        outstanding = []
        for instance in instances:
            waiter = self.sim.event()
            self._waiters[instance] = waiter
            self._propose(host, instance)
            outstanding.append(waiter)
            if len(outstanding) >= window:
                yield outstanding.pop(0)
            if gap_s > 0:
                yield self.sim.timeout(gap_s)
        for waiter in outstanding:
            yield waiter

    def run(self, n_instances: int, window: int = 8, limit: float = 60.0,
            gap_s: float = 0.0) -> PaxosBaselineReport:
        self._waiters: Dict[int, object] = getattr(self, "_waiters", {})
        start = self.sim.now
        shards: Dict[Host, List[int]] = {p: [] for p in self.proposers}
        proposers = list(self.proposers)
        for instance in range(n_instances):
            shards[proposers[instance % len(proposers)]].append(instance)
        processes = [
            self.sim.process(self._proposer_process(host, insts, window,
                                                    gap_s),
                             name=f"proposer-{host.name}")
            for host, insts in shards.items()]
        self.sim.run_until(self.sim.all_of(processes), limit=start + limit)
        # Drain until the learners have seen every decision (they can lag
        # the proposers when learner CPU is the bottleneck).
        while len(self.decided) < n_instances and \
                self.sim.peek() <= start + limit:
            self.sim.step()
        elapsed = self.sim.now - start
        throughput = len(self.decided) / elapsed if elapsed > 0 else 0.0
        return PaxosBaselineReport(decided=dict(self.decided),
                                   throughput_msgs_per_s=throughput,
                                   latency=self.latency, elapsed_s=elapsed)


class P4xosCluster(_BaseCluster):
    """Proposers + learners around a P4xos switch."""

    def __init__(self, n_proposers: int = 2, n_learners: int = 3,
                 cal: Calibration = DEFAULT_CALIBRATION, seed: int = 0,
                 acceptor_replicas: int = 3):
        super().__init__(Simulator(seed=seed))
        self._waiters = {}
        learner_names = [f"l{i}" for i in range(n_learners)]
        self.switch = P4xosSwitch(self.sim, "sw0", learner_names, cal=cal,
                                  acceptor_replicas=acceptor_replicas)
        # Hosts run the consensus endpoints with the deployment's host
        # profile, so P4xos and NetRPC paxos share identical end hosts.
        self.proposers = [Host(self.sim, f"p{i}",
                               cores=cal.host_agent_cores,
                               rx_cpu_cost_s=cal.host_pkt_cpu_s)
                          for i in range(n_proposers)]
        self.learners = [Host(self.sim, name, cores=cal.host_agent_cores,
                              rx_cpu_cost_s=cal.host_pkt_cpu_s)
                         for name in learner_names]
        star(self.sim, self.switch, self.proposers + self.learners, cal=cal)
        for host in self.proposers:
            _Learner(self.sim, host, self, is_learner=False)
        for host in self.learners:
            _Learner(self.sim, host, self, is_learner=True)

    def _propose(self, host: Host, instance: int) -> None:
        msg = PaxosMsg(kind="propose", src=host.name, dst="sw0",
                       instance=instance, value=f"cmd-{instance}",
                       sent_at=self.sim.now)
        host.send(msg, "sw0")


class SoftwarePaxosCluster(_BaseCluster):
    """Leader-based software Paxos (libpaxos or DPDK flavour)."""

    def __init__(self, n_proposers: int = 2, n_acceptors: int = 2,
                 n_learners: int = 3, dpdk: bool = False,
                 cal: Calibration = DEFAULT_CALIBRATION, seed: int = 0):
        super().__init__(Simulator(seed=seed))
        self._waiters = {}
        self.dpdk = dpdk
        pkt_cpu = DPDK_PKT_CPU_S if dpdk else KERNEL_PKT_CPU_S
        cores = SOFTWARE_PAXOS_CORES
        self.switch = PlainSwitch(self.sim, "sw0", cal=cal)
        self.proposers = [Host(self.sim, f"p{i}", cores=cores,
                               rx_cpu_cost_s=pkt_cpu)
                          for i in range(n_proposers)]
        self.leader = Host(self.sim, "leader", cores=cores,
                           rx_cpu_cost_s=pkt_cpu)
        self.acceptors = [Host(self.sim, f"a{i}", cores=cores,
                               rx_cpu_cost_s=pkt_cpu)
                          for i in range(n_acceptors)]
        self.learners = [Host(self.sim, f"l{i}", cores=cores,
                              rx_cpu_cost_s=pkt_cpu)
                         for i in range(n_learners)]
        everyone = (self.proposers + [self.leader] + self.acceptors
                    + self.learners)
        star(self.sim, self.switch, everyone, cal=cal)
        self.majority = n_acceptors // 2 + 1
        self._votes: Dict[int, Set[str]] = {}
        self.leader.set_handler(self._leader_packet)
        for acceptor in self.acceptors:
            acceptor.set_handler(self._acceptor_packet)
        for host in self.proposers:
            _Learner(self.sim, host, self, is_learner=False)
        for host in self.learners:
            _Learner(self.sim, host, self, is_learner=True)

    # ------------------------------------------------------------------
    def _propose(self, host: Host, instance: int) -> None:
        msg = PaxosMsg(kind="propose", src=host.name, dst="leader",
                       instance=instance, value=f"cmd-{instance}",
                       sent_at=self.sim.now)
        host.send(msg, "sw0")

    def _leader_packet(self, packet, _link) -> None:
        if not isinstance(packet, PaxosMsg):
            return
        if packet.kind == "propose":
            # Phase 2a: send accept to every acceptor.
            for acceptor in self.acceptors:
                out = PaxosMsg(kind="accept", src="leader",
                               dst=acceptor.name, instance=packet.instance,
                               value=packet.value, sent_at=packet.sent_at)
                self.leader.send(out, "sw0")
            return
        if packet.kind == "accepted":
            votes = self._votes.setdefault(packet.instance, set())
            votes.add(packet.src)
            if len(votes) == self.majority:
                # Phase 3: tell the learners and the proposers.
                for host in self.learners + self.proposers:
                    out = PaxosMsg(kind="learn", src="leader",
                                   dst=host.name, instance=packet.instance,
                                   value=packet.value,
                                   sent_at=packet.sent_at)
                    self.leader.send(out, "sw0")

    def _acceptor_packet(self, packet, link) -> None:
        if isinstance(packet, PaxosMsg) and packet.kind == "accept":
            host = self.acceptors[0] if packet.dst == self.acceptors[0].name \
                else next(a for a in self.acceptors if a.name == packet.dst)
            out = PaxosMsg(kind="accepted", src=packet.dst, dst="leader",
                           instance=packet.instance, value=packet.value,
                           sent_at=packet.sent_at)
            host.send(out, "sw0")
