"""ElasticSketch: the monitoring baseline (paper Table 5).

A faithful implementation of the two-part ElasticSketch data structure
(SIGCOMM'18): a *heavy part* of hash buckets with the vote-based
eviction that keeps elephant flows exact(ish), backed by a *light part*
count-min sketch absorbing evicted and mouse traffic.  The
:class:`SketchSwitch` runs it at line rate and answers queries with a
switch bounce, like a hand-optimised INC monitoring deployment.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Simulator
from repro.switchsim import PlainSwitch

__all__ = ["ElasticSketch", "SketchSwitch", "SketchPacket"]

_uid = itertools.count()


def _hash(key: str, salt: int) -> int:
    return zlib.crc32(f"{salt}:{key}".encode("utf-8")) & 0xFFFFFFFF


class ElasticSketch:
    """Heavy part + light part flow counter (Yang et al., SIGCOMM'18)."""

    def __init__(self, heavy_buckets: int = 4096, light_counters: int = 65536,
                 light_rows: int = 3, eviction_lambda: int = 8):
        if heavy_buckets < 1 or light_counters < 1 or light_rows < 1:
            raise ValueError("sketch dimensions must be positive")
        self.heavy_buckets = heavy_buckets
        self.light_counters = light_counters
        self.light_rows = light_rows
        self.eviction_lambda = eviction_lambda
        # bucket -> (flow, positive_votes, negative_votes, flag)
        self._heavy: List[Optional[Tuple[str, int, int, bool]]] = \
            [None] * heavy_buckets
        self._light = [[0] * light_counters for _ in range(light_rows)]

    # ------------------------------------------------------------------
    def insert(self, flow: str, count: int = 1) -> None:
        index = _hash(flow, 0) % self.heavy_buckets
        bucket = self._heavy[index]
        if bucket is None:
            self._heavy[index] = (flow, count, 0, False)
            return
        owner, pos, neg, flag = bucket
        if owner == flow:
            self._heavy[index] = (owner, pos + count, neg, flag)
            return
        neg += count
        if neg >= self.eviction_lambda * pos:
            # Vote out the incumbent: its count decays to the light part,
            # the newcomer takes the bucket with the "flag" marking that
            # part of its history lives in the light part.
            self._light_insert(owner, pos)
            self._heavy[index] = (flow, count, 1, True)
        else:
            self._heavy[index] = (owner, pos, neg, flag)
            self._light_insert(flow, count)

    def _light_insert(self, flow: str, count: int) -> None:
        for row in range(self.light_rows):
            slot = _hash(flow, row + 1) % self.light_counters
            self._light[row][slot] += count

    # ------------------------------------------------------------------
    def query(self, flow: str) -> int:
        index = _hash(flow, 0) % self.heavy_buckets
        bucket = self._heavy[index]
        estimate = 0
        in_heavy_clean = False
        if bucket is not None and bucket[0] == flow:
            _owner, pos, _neg, flag = bucket
            estimate += pos
            in_heavy_clean = not flag
        if not in_heavy_clean:
            estimate += self._light_query(flow)
        return estimate

    def _light_query(self, flow: str) -> int:
        return min(self._light[row][_hash(flow, row + 1)
                                    % self.light_counters]
                   for row in range(self.light_rows))

    def heavy_hitters(self, threshold: int) -> Dict[str, int]:
        out = {}
        for bucket in self._heavy:
            if bucket is None:
                continue
            flow = bucket[0]
            estimate = self.query(flow)
            if estimate >= threshold:
                out[flow] = estimate
        return out


@dataclass
class SketchPacket:
    kind: str                       # report | query | reply
    src: str
    dst: str
    flows: Dict[str, int] = field(default_factory=dict)
    size_bytes: int = 256
    ecn: bool = False
    uid: int = field(default_factory=lambda: next(_uid))


class SketchSwitch(PlainSwitch):
    """Runs an ElasticSketch at line rate; queries bounce sub-RTT."""

    def __init__(self, sim: Simulator, name: str,
                 cal: Calibration = DEFAULT_CALIBRATION,
                 sketch: Optional[ElasticSketch] = None):
        super().__init__(sim, name, cal)
        self.sketch = sketch or ElasticSketch()

    def receive(self, packet, link) -> None:
        self.stats.add("rx_pkts")
        if isinstance(packet, SketchPacket):
            self.sim.schedule(self.cal.switch_pipeline_delay_s,
                              self._process, packet)
            return
        self.sim.schedule(self.cal.switch_pipeline_delay_s,
                          self._forward, packet)

    def _process(self, packet: SketchPacket) -> None:
        if packet.kind == "report":
            for flow, count in packet.flows.items():
                self.sketch.insert(flow, count)
            self.stats.add("reports")
            # Counting is a pure switch operation: the packet is consumed
            # (no server involvement at all — ElasticSketch's edge over
            # generic frameworks).
            return
        if packet.kind == "query":
            reply = SketchPacket(
                kind="reply", src=self.name, dst=packet.src,
                flows={f: self.sketch.query(f) for f in packet.flows})
            self.stats.add("queries")
            self.send(reply, self.next_hop_for(packet.src))
            return
        self._forward(packet)
