"""Thin baselines built by reconfiguring the NetRPC stack itself.

* **ASK** — in-network aggregation for key-value streams with
  hash-addressed switch memory: NetRPC's AsyncAgtr machinery running the
  ``hash`` cache policy (collisions fall back to the server forever, no
  periodic adaptation) — the distinguishing property Figure 12 measures.
* **Pure-DPDK software INC** — the same applications registered in
  software-only mode: every primitive executes on the server agent, the
  paper's "pure software version as baselines using DPDK".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.control import Deployment
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

__all__ = ["register_ask", "register_software_inc", "ask_programs"]


def ask_programs(app_name: str = "ASK") -> List[RIPProgram]:
    """ASK's reduce/query pair (aggregation service for kv streams)."""
    return [
        RIPProgram(app_name=app_name, add_to_field="Reduce.kvs",
                   cntfwd=CntFwdSpec(target=ForwardTarget.SRC)),
        RIPProgram(app_name=app_name, get_field="Query.kvs",
                   cntfwd=CntFwdSpec(target=ForwardTarget.SRC)),
    ]


def register_ask(deployment: Deployment, server: str,
                 clients: Sequence[str], value_slots: int = 65536,
                 app_name: str = "ASK"):
    """Register an ASK-style aggregation app (hash-addressed cache)."""
    return deployment.controller.register(
        ask_programs(app_name), server=server, clients=list(clients),
        value_slots=value_slots, cache_policy="hash")


def register_software_inc(deployment: Deployment, server: str,
                          clients: Sequence[str],
                          programs: Optional[List[RIPProgram]] = None,
                          app_name: str = "SW-INC"):
    """Register an application that runs every RIP on the server agent."""
    programs = programs or ask_programs(app_name)
    return deployment.controller.register(
        programs, server=server, clients=list(clients), value_slots=0,
        software_only=True)
