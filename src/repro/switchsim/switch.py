"""The programmable switch node: admission, pipeline, routing, multicast.

A single :class:`NetRPCSwitch` program runs from "boot"; the controller
installs/removes per-application admission entries at runtime, so
starting an application never interrupts the network (paper §3.2).

Behavioural model notes:

* every processed packet takes ``switch_pipeline_delay_s`` from ingress
  to egress;
* recirculating packets (shadow clears, and the ATP/SwitchML baselines)
  additionally traverse an internal loopback port at line rate, which
  is what costs those designs throughput (§6.3);
* ECN: the switch records the last time it saw a congestion-marked
  packet per application and taints every packet heading back towards
  clients while the mark is fresh — the paper's "write the ECN to the
  INC map so retransmissions carry it until cleared" (§5.1).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Link, Node, Simulator
from repro.obs.tracer import TRACE
from repro.protocol import Packet

from .admission import AdmissionTable, AppEntry
from .flowstate import FlowStateTable
from .pipeline import Action, RIPPipeline, Verdict
from .registers import RegisterFile

__all__ = ["NetRPCSwitch", "PlainSwitch"]


class PlainSwitch(Node):
    """A store-and-forward switch with static routing and no INC logic.

    Used for the pure-software baselines: identical forwarding/queueing
    behaviour, none of the computation.
    """

    def __init__(self, sim: Simulator, name: str,
                 cal: Calibration = DEFAULT_CALIBRATION):
        super().__init__(sim, name)
        self.cal = cal
        self.routes: Dict[str, str] = {}

    def add_route(self, dst: str, next_hop: str) -> None:
        self.routes[dst] = next_hop

    def next_hop_for(self, dst: str) -> str:
        if dst in self.egress:
            return dst
        try:
            return self.routes[dst]
        except KeyError:
            raise KeyError(
                f"{self.name}: no route to {dst!r} "
                f"(direct: {sorted(self.egress)})") from None

    def receive(self, packet: Any, link: Optional[Link]) -> None:
        self.stats.add("rx_pkts")
        self.sim.schedule(self.cal.switch_pipeline_delay_s,
                          self._forward, packet)

    def _forward(self, packet: Any) -> None:
        dst = getattr(packet, "dst", None)
        if dst is None:
            self.stats.add("dropped_unroutable")
            return
        self.send(packet, self.next_hop_for(dst))


class NetRPCSwitch(PlainSwitch):
    """The INC switch: RIP pipeline plus plain forwarding for the rest."""

    def __init__(self, sim: Simulator, name: str,
                 cal: Calibration = DEFAULT_CALIBRATION,
                 phys_base: int = 0):
        super().__init__(sim, name, cal)
        self.registers = RegisterFile(
            segments=cal.memory_segments,
            registers_per_segment=cal.segment_registers)
        self.flow_state = FlowStateTable(w_max=cal.w_max)
        self.admission = AdmissionTable()
        self.phys_base = phys_base
        self.pipeline = RIPPipeline(self.registers, self.flow_state,
                                    phys_base=phys_base,
                                    name=f"{name}.pipeline")
        self._ecn_marked_at: Dict[int, float] = {}
        # The internal recirculation port serialises at line rate; heavy
        # recirculation (shadow clears, baseline designs) contends here.
        self._recirc_busy_until = 0.0

    # ------------------------------------------------------------------
    # control-plane interface (invoked by the controller / server agents)
    # ------------------------------------------------------------------
    def install_app(self, entry: AppEntry) -> None:
        self.admission.install(entry)

    def remove_app(self, gaid: int) -> AppEntry:
        self._ecn_marked_at.pop(gaid, None)
        return self.admission.remove(gaid)

    def allocate_flow_slot(self) -> int:
        return self.flow_state.allocate()

    def ctrl_read_and_clear(self, addrs) -> list:
        """Control-plane eviction read (exact values, sticky bits reset).

        Addresses are global-physical; results report them unchanged.
        """
        self.stats.add("ctrl_reads")
        base = self.phys_base
        out = self.registers.read_and_clear([a - base for a in addrs])
        return [(a + base, v, s) for a, v, s in out]

    def ctrl_read(self, addrs) -> list:
        """Control-plane non-destructive read of exact register values."""
        self.stats.add("ctrl_reads")
        base = self.phys_base
        return [(a, self.registers.read_raw(a - base),
                 self.registers.is_sticky(a - base)) for a in addrs]

    def ctrl_write(self, addr: int, value: int) -> None:
        """Control-plane register write (seeding a granted mapping)."""
        self.stats.add("ctrl_writes")
        self.registers.write(addr - self.phys_base, value)

    def ctrl_add(self, addr: int, delta: int) -> Tuple[int, bool]:
        """Atomic control-plane read-modify-write add.

        Returns ``(new_value, overflowed)``.  Models the switch driver's
        register update; atomicity holds because the simulator executes
        it as one event.  Used by the server agent to fold late
        software-path contributions into an already-granted register
        without a race against the dataplane.
        """
        self.stats.add("ctrl_writes")
        local = addr - self.phys_base
        overflowed = self.registers.add(local, delta)
        return self.registers.read_raw(local), overflowed

    def ctrl_fadd(self, addr: int, ordered: int,
                  codec=None) -> Tuple[int, bool]:
        """Atomic control-plane table-fp add (agg=fadd recovery folds).

        ``ordered`` is an fp ordered encoding; returns the stored
        encoding plus the overflow flag, mirroring :meth:`ctrl_add`.
        """
        self.stats.add("ctrl_writes")
        local = addr - self.phys_base
        if codec is None:
            overflowed = self.registers.fadd(local, ordered)
        else:
            overflowed = self.registers.fadd(local, ordered, codec)
        return self.registers.read_raw(local), overflowed

    def ctrl_fmax(self, addr: int, ordered: int) -> Tuple[int, bool]:
        """Atomic control-plane fp max-combine (agg=fmax recovery folds)."""
        self.stats.add("ctrl_writes")
        local = addr - self.phys_base
        overflowed = self.registers.fmax(local, ordered)
        return self.registers.read_raw(local), overflowed

    def owns(self, addr: int) -> bool:
        """Whether a global physical address lives on this switch."""
        return 0 <= addr - self.phys_base < self.registers.capacity

    def poll_timestamps(self) -> Dict[int, float]:
        """Last-seen time per GAID (two-level timeout, §5.2.2)."""
        return self.admission.timestamps()

    def reboot(self) -> None:
        """Power-cycle the dataplane (fault injection).

        Registers, flow state bitmaps, admission entries, and ECN marks
        are volatile and vanish; the static routing config and the SRRT
        slot allocator position (controller-owned) survive.  The
        pipeline holds references to the register file and flow-state
        table, so both are cleared in place rather than replaced.
        Verdicts already in flight deliver normally — their register
        reads happened before the power cut.
        """
        self.stats.add("reboots")
        if TRACE.enabled:
            TRACE.instant("control.reboot", self.sim.now, self.name)
        self.registers.power_cycle()
        self.flow_state.clear_state()
        self.admission.clear()
        self._ecn_marked_at.clear()
        self._recirc_busy_until = 0.0

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def receive(self, packet: Any, link: Optional[Link]) -> None:
        # Per-packet hot path: counter increments inlined, lookups hoisted.
        sim = self.sim
        stats = self.stats
        counts = stats._counts if stats.enabled else None
        if counts is not None:
            try:
                counts["rx_pkts"] += 1
            except KeyError:
                counts["rx_pkts"] = 1
        if not isinstance(packet, Packet):
            sim.schedule(self.cal.switch_pipeline_delay_s,
                         self._forward, packet)
            return
        entry = self.admission.lookup(packet.gaid)
        if entry is None:
            # Unregistered applications are forwarded as normal traffic.
            stats.add("unadmitted_pkts")
            if TRACE.enabled:
                TRACE.instant("switch.unadmitted", sim.now, self.name,
                              (packet.gaid,))
            sim.schedule(self.cal.switch_pipeline_delay_s,
                         self._forward, packet)
            return
        if packet.ecn and not (packet.is_sa or packet.is_ack):
            # Only client-data-direction congestion feeds the INC map's
            # ECN state; server-return congestion is echoed end-to-end by
            # the clients' ACKs instead.
            self._ecn_marked_at[packet.gaid] = sim.now
        verdict = self.pipeline.process(packet, entry, sim.now)
        # Mark the packet as having traversed the *edge* INC pipeline —
        # the one that makes forwarding/CntFwd verdicts.  During the
        # reboot-to-reinstall failover window packets take the unadmitted
        # path above and arrive at the server *without* this mark, which
        # is how the server agent tells a switch-aggregated result apart
        # from raw data that slipped past a cold switch (retransmit
        # copies do not inherit it — Packet.copy drops it).
        if entry.edge:
            packet.switch_processed = True
        if verdict.retransmission:
            stats.add("retransmissions_detected")
        if counts is not None:
            try:
                counts["inc_pkts"] += 1
            except KeyError:
                counts["inc_pkts"] = 1
        if TRACE.enabled:
            now = sim.now
            TRACE.record("switch.pipeline", now,
                         now + self.cal.switch_pipeline_delay_s, self.name,
                         (packet.gaid, verdict.action.value,
                          verdict.retransmission))
        sim.schedule(self.cal.switch_pipeline_delay_s,
                     self._apply_verdict, (packet, verdict))

    # ------------------------------------------------------------------
    def _apply_verdict(self, pair: Tuple[Packet, Verdict]) -> None:
        packet, verdict = pair
        if verdict.recirculate and not getattr(packet, "_recirculated", False):
            # The internal loopback is a single port serialising at line
            # rate: each recirculated packet occupies it for its wire
            # time, so heavy recirculation costs throughput, not just
            # latency (§6.3's argument against recirculating designs).
            packet._recirculated = True
            self.stats.add("recirculations")
            tx_time = packet.size_bytes * 8.0 / self.cal.link_bandwidth_bps
            start = max(self.sim.now, self._recirc_busy_until)
            self._recirc_busy_until = start + tx_time
            done = (start + tx_time + self.cal.switch_recirculation_delay_s
                    - self.sim.now)
            if TRACE.enabled:
                TRACE.record("switch.recirculate", start,
                             self.sim.now + done, self.name,
                             (packet.gaid,))
            self.sim.schedule(done, self._apply_verdict, (packet, verdict))
            return

        if verdict.action is Action.DROP:
            # Reached after any recirculation, so absorbed shadow packets
            # still paid for their loopback pass.
            self.stats.add("cntfwd_absorbed")
            return

        if verdict.action is Action.MULTICAST:
            self.stats.add("multicasts")
            targets = verdict.group or (packet.dst,)
            for target in targets:
                copy = packet.copy()
                copy.dst = target
                copy.is_mcast = True
                self._stamp_ecn(copy)
                self.send(copy, self.next_hop_for(target))
            return

        # FORWARD / BOUNCE
        packet.dst = verdict.dst
        if verdict.action is Action.BOUNCE:
            self.stats.add("bounced_pkts")
        if self._towards_clients(packet, verdict):
            self._stamp_ecn(packet)
        self.send(packet, self.next_hop_for(packet.dst))

    def _towards_clients(self, packet: Packet, verdict: Verdict) -> bool:
        return (verdict.action is Action.BOUNCE or packet.is_sa
                or packet.is_ack)

    def _stamp_ecn(self, packet: Packet) -> None:
        marked_at = self._ecn_marked_at.get(packet.gaid)
        if marked_at is not None and \
                self.sim.now - marked_at < self.cal.ecn_freshness_s:
            packet.ecn_echo = True
