"""Behavioural model of the NetRPC programmable switch (paper §5.2.3, App. C).

Replaces the Barefoot Tofino of the paper's testbed.  The pipeline
executes the same RIP flowchart (Figure 15) packet by packet with
32-bit arithmetic, per-flow flip-bit retransmission state, runtime
admission entries, and line-rate recirculation costs.
"""

from .admission import AdmissionTable, AppEntry
from .flowstate import FlowStateTable
from .pipeline import Action, RIPPipeline, Verdict
from .registers import RegisterFile, StageLayout
from .switch import NetRPCSwitch, PlainSwitch

__all__ = [
    "AdmissionTable", "AppEntry",
    "FlowStateTable",
    "Action", "RIPPipeline", "Verdict",
    "RegisterFile", "StageLayout",
    "NetRPCSwitch", "PlainSwitch",
]
