"""The RIP pipeline: per-packet switch logic (paper Figure 15, §5.2.3).

Given a packet and its application's admission entry, the pipeline
mutates the packet (Stream.modify, Map.get results, overflow sentinels)
and returns a :class:`Verdict` telling the switch what to do with it:
forward, bounce to the source, multicast to the client group, or drop.

Processing order mirrors the paper's flowchart:

1. reliability check (flip bit) — retransmissions skip all
   state-changing primitives but still read;
2. bypasses: ACKs, overflow-marked packets, unmapped (``is_cross``)
   packets go straight through;
3. server-return path: execute ``Map.clear`` and multicast;
4. data path: ``Stream.modify`` -> shadow mirror clear -> ``Map.addTo``
   -> ``Map.get`` -> ``CntFwd`` decision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.netsim import Counter
from repro.obs.tracer import TRACE
from repro.protocol import (
    AggOp,
    ClearPolicy,
    ForwardTarget,
    Packet,
    RIPProgram,
    StreamOp,
)

from .admission import AppEntry
from .flowstate import FlowStateTable
from .registers import RegisterFile

__all__ = ["Action", "Verdict", "RIPPipeline"]


class Action(enum.Enum):
    FORWARD = "forward"      # towards pkt.dst / the server
    BOUNCE = "bounce"        # back to pkt.src (sub-RTT response)
    MULTICAST = "multicast"  # to the application's client group
    DROP = "drop"            # absorbed (CntFwd below threshold)


@dataclass
class Verdict:
    action: Action
    dst: Optional[str] = None           # FORWARD/BOUNCE target host
    group: Tuple[str, ...] = ()         # MULTICAST targets
    recirculate: bool = False           # costs an extra pipeline trip
    retransmission: bool = False        # flip-bit said we saw this packet


class RIPPipeline:
    """Executes RIPs against a register file, one packet per call.

    ``phys_base`` positions this switch's registers inside the global
    physical address space: in a two-switch chain (§6.6) the second
    switch owns addresses ``[capacity, 2*capacity)`` and ignores kv
    pairs outside its range.
    """

    def __init__(self, registers: RegisterFile, flow_state: FlowStateTable,
                 phys_base: int = 0, name: str = "pipeline"):
        self.registers = registers
        self.flow_state = flow_state
        self.phys_base = phys_base
        self.name = name
        # Stage occupancy and register-kernel batch sizes (kept separate
        # from the switch's own Counter: that dict is golden-pinned).
        self.stats = Counter()

    def _observe_kernel(self, stats: Counter, select: int, op: str,
                        now: float) -> None:
        """Record one register-kernel batch (off the no-observe path)."""
        pairs = select.bit_count()
        if stats.enabled:
            counts = stats._counts
            try:
                counts["kernel_ops"] += 1
            except KeyError:
                counts["kernel_ops"] = 1
            try:
                counts["kernel_pairs"] += pairs
            except KeyError:
                counts["kernel_pairs"] = pairs
        if TRACE.enabled:
            TRACE.instant("regs.kernel", now, self.name, (op, pairs))

    def _local(self, addr: int) -> Optional[int]:
        """Translate a global physical address, or None if not ours."""
        local = addr - self.phys_base
        if 0 <= local < self.registers.capacity:
            return local
        return None

    # ------------------------------------------------------------------
    def process(self, pkt: Packet, entry: AppEntry, now: float) -> Verdict:
        entry.touch(now)
        prog = entry.program

        retrans = False
        if pkt.srrt >= 0:
            retrans = self.flow_state.check_and_update(pkt.srrt, pkt.seq,
                                                       pkt.flip)
        pkt.is_retransmit = retrans

        if pkt.is_ack:
            self.stats.add("ack_pkts")
            return Verdict(Action.FORWARD, dst=pkt.dst,
                           retransmission=retrans)
        if pkt.is_sa:
            # Server-originated packets take the return path even when
            # overflow-marked (a sentinel-carrying clearing return).
            return self._return_path(pkt, prog, entry, retrans, now)
        if pkt.is_of:
            # Fallback bypass: raw data straight to the server agent.
            self.stats.add("bypass_pkts")
            return Verdict(Action.FORWARD, dst=entry.server,
                           retransmission=retrans)
        if pkt.is_cross:
            # Unmapped keys: the server executes the primitives in software.
            self.stats.add("bypass_pkts")
            return Verdict(Action.FORWARD, dst=entry.server,
                           retransmission=retrans)
        return self._data_path(pkt, prog, entry, retrans, now)

    # ------------------------------------------------------------------
    def _return_path(self, pkt: Packet, prog: RIPProgram, entry: AppEntry,
                     retrans: bool, now: float = 0.0) -> Verdict:
        """Packets from the server agent: clear on the way back (§5.2.2)."""
        recirc = False
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["return_pkts"] += 1
            except KeyError:
                counts["return_pkts"] = 1
        if pkt.is_clr and not retrans:
            block = pkt.kv
            select = block.mapped_mask & pkt.bitmap
            if select:
                self.registers.clear_block(block.addrs, select,
                                           -self.phys_base)
                if stats.enabled or TRACE.enabled:
                    pairs = select.bit_count()
                    stats.add("clear_ops")
                    stats.add("clear_pairs", pairs)
                    if TRACE.enabled:
                        TRACE.instant("regs.kernel", now, self.name,
                                      ("clear", pairs))
            if pkt.is_cnf:
                local = self._local(pkt.cnt_index)
                if local is not None:
                    self.registers.clear(local)
            if prog.clear is ClearPolicy.SHADOW:
                recirc = True
        if pkt.is_mcast:
            return Verdict(Action.MULTICAST, group=entry.clients,
                           recirculate=recirc, retransmission=retrans)
        return Verdict(Action.FORWARD, dst=pkt.dst, recirculate=recirc,
                       retransmission=retrans)

    # ------------------------------------------------------------------
    def _data_path(self, pkt: Packet, prog: RIPProgram, entry: AppEntry,
                   retrans: bool, now: float = 0.0) -> Verdict:
        # Batch kernels below run once per data packet per switch — the
        # hottest switchsim code.  All per-kv work happens inside the
        # KVBlock / RegisterFile bulk operations (the only sanctioned
        # register access path); the pipeline just computes masks.
        regs = self.registers
        recirc = False
        block = pkt.kv
        bitmap = pkt.bitmap
        base = self.phys_base
        select = block.mapped_mask & bitmap
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["data_pkts"] += 1
            except KeyError:
                counts["data_pkts"] = 1

        # --- Stream.modify (stateless; the edge switch applies it once) --
        if prog.modify_op is not StreamOp.NOP and entry.edge:
            if block.modify(prog.modify_op, prog.modify_para, bitmap):
                pkt.is_of = True

        # --- shadow mirror clear (costs a recirculation) ----------------
        if prog.clear is ClearPolicy.SHADOW and pkt.shadow_offset:
            if not retrans and select:
                regs.clear_block(block.addrs, select,
                                 pkt.shadow_offset - base)
                if stats.enabled or TRACE.enabled:
                    pairs = select.bit_count()
                    stats.add("shadow_clear_ops")
                    stats.add("shadow_clear_pairs", pairs)
                    if TRACE.enabled:
                        TRACE.instant("regs.kernel", now, self.name,
                                      ("shadow_clear", pairs))
            recirc = True

        # --- Map.addTo + Map.get -----------------------------------------
        # Linear-addressed packets carry distinct consecutive addresses,
        # so addTo and get fuse into one pass; the general path keeps the
        # two-pass order (all adds before all gets) that duplicate
        # addresses require.
        if select:
            do_add = prog.uses_add_to and not retrans
            observe = stats.enabled or TRACE.enabled
            agg = prog.agg
            if agg is AggOp.FADD or agg is AggOp.FMAX:
                # Table-fp aggregation: no fused kernel (the fp add is a
                # multi-table pass of its own), so addTo then get, same
                # two-pass order and sticky semantics as the integer path.
                if do_add:
                    if agg is AggOp.FADD:
                        if regs.fadd_block(block, select, base):
                            pkt.is_of = True
                        if observe:
                            self._observe_kernel(stats, select, "fadd", now)
                    else:
                        if regs.fmax_block(block, select, base):
                            pkt.is_of = True
                        if observe:
                            self._observe_kernel(stats, select, "fmax", now)
                if prog.uses_get:
                    if regs.get_block(block, select, base):
                        pkt.is_of = True
                    if observe:
                        self._observe_kernel(stats, select, "get", now)
            elif do_add and prog.uses_get and pkt.linear_base is not None:
                if regs.add_get_block(block, select, base):
                    pkt.is_of = True
                if observe:
                    self._observe_kernel(stats, select, "add_get", now)
            else:
                if do_add:
                    if regs.add_block(block, select, base):
                        pkt.is_of = True
                    if observe:
                        self._observe_kernel(stats, select, "add", now)
                if prog.uses_get:
                    if regs.get_block(block, select, base):
                        pkt.is_of = True
                    if observe:
                        self._observe_kernel(stats, select, "get", now)
            if pkt.is_of:
                stats.add("overflow_pkts")

        if not entry.edge:
            # Upstream switch in a chain: local pairs are done, the
            # server-edge switch makes the forwarding decision.
            return Verdict(Action.FORWARD, dst=pkt.dst, recirculate=recirc,
                           retransmission=retrans)

        # --- CntFwd (edge switch only) -----------------------------------
        spec = prog.cntfwd
        if pkt.is_cnf and spec.counts:
            cnt_local = self._local(pkt.cnt_index)
            if cnt_local is None:
                return Verdict(Action.FORWARD, dst=pkt.dst,
                               recirculate=recirc, retransmission=retrans)
            # When the counter register is one of the packet's own kv
            # addresses, the Map.addTo above already incremented it (the
            # paper's §5.2.3: CntFwd rides the normal map-access pipeline);
            # only ClientID-style side counters need the extra add.
            # (Fp aggs never count via addTo: their kernels write fp
            # encodings, not +1 increments, so the side counter is used.)
            counted_by_add = prog.uses_add_to and not prog.agg.is_float and \
                block.selected_contains(pkt.cnt_index, select)
            if not retrans and not counted_by_add:
                regs.add(cnt_local, 1)
            count = regs.read_raw(cnt_local)
            stats.add("cntfwd_checks")
            if count == spec.threshold:
                stats.add("cntfwd_fires")
                if spec.threshold > 1:
                    # Multi-party rounds: re-arm the counter for the next
                    # round.  test&set (threshold 1) persists until an
                    # explicit clear releases it.
                    regs.write(cnt_local, 0)
                if prog.clear is ClearPolicy.COPY and \
                        spec.target is not ForwardTarget.SERVER:
                    # Copy policy: the result detours through the server
                    # for backup (Figure 5's black arrows); the server's
                    # clearing return stream reaches the real target.
                    return Verdict(Action.FORWARD, dst=entry.server,
                                   recirculate=recirc,
                                   retransmission=retrans)
                return self._target_verdict(spec.target, pkt, entry, recirc,
                                            retrans)
            if retrans and spec.threshold > 1 and count == 0:
                if prog.clear is ClearPolicy.COPY:
                    # Either the trigger to the server was lost (registers
                    # still hold the aggregate: re-trigger with the values
                    # Map.get just read) or the return is in flight (the
                    # server dedups and its reliable return heals us).
                    return Verdict(Action.FORWARD, dst=entry.server,
                                   recirculate=recirc, retransmission=True)
                # shadow/lazy: the aggregate is still readable on the
                # switch; bounce it straight back (values were filled by
                # Map.get above).
                return Verdict(Action.BOUNCE, dst=pkt.src,
                               recirculate=recirc, retransmission=True)
            return Verdict(Action.DROP, recirculate=recirc,
                           retransmission=retrans)

        # threshold == 0 (or CntFwd disabled): unconditional forward.
        if prog.clear is ClearPolicy.COPY and \
                spec.target is not ForwardTarget.SERVER and \
                block.any_mapped:
            # A clearing method (e.g. lock Release): the server backs up
            # the values and its return stream performs the clear.
            return Verdict(Action.FORWARD, dst=entry.server,
                           recirculate=recirc, retransmission=retrans)
        return self._target_verdict(spec.target, pkt, entry, recirc, retrans)

    # ------------------------------------------------------------------
    @staticmethod
    def _target_verdict(target: ForwardTarget, pkt: Packet, entry: AppEntry,
                        recirc: bool, retrans: bool) -> Verdict:
        if target is ForwardTarget.SRC:
            return Verdict(Action.BOUNCE, dst=pkt.src, recirculate=recirc,
                           retransmission=retrans)
        if target is ForwardTarget.ALL:
            pkt.is_mcast = True
            return Verdict(Action.MULTICAST, group=entry.clients,
                           recirculate=recirc, retransmission=retrans)
        return Verdict(Action.FORWARD, dst=entry.server, recirculate=recirc,
                       retransmission=retrans)
