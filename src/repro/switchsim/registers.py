"""Switch register storage: the physical memory behind the INC map.

The paper's switch (§6.1) exposes 32 read-write memory *segments* — one
per key-value slot in a NetRPC packet — each holding 40K 32-bit units,
spread over 8 of the 12 pipeline stages with 4 register groups per
stage.  A physical address ``p`` maps to segment ``p % segments`` at
index ``p // segments``, so a run of 32 consecutive addresses touches
every segment exactly once (which is what lets a full packet be
processed in one pipeline pass).

Overflow handling refines §5.2.1: instead of saturating the register
itself (which destroys the accumulated value), a 1-bit *sticky overflow
sidecar* is set and the register is left intact.  Reads of a sticky
register return the MAX_INT sentinel, so every downstream host detects
the overflow exactly as in the paper, while the pre-overflow total
remains recoverable by the control plane (see DESIGN.md §4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.protocol import DEFAULT_FP_CODEC, INT32_MAX, INT32_MIN

__all__ = ["RegisterFile", "StageLayout"]


class StageLayout:
    """Maps memory segments onto pipeline stages and register groups.

    Purely structural — used to validate that a configuration fits the
    chip (``segments <= map_stages * groups_per_stage``) and to report
    resource usage.
    """

    def __init__(self, pipeline_stages: int = 12, map_stages: int = 8,
                 groups_per_stage: int = 4, segments: int = 32):
        if map_stages > pipeline_stages:
            raise ValueError("map stages cannot exceed pipeline stages")
        if segments > map_stages * groups_per_stage:
            raise ValueError(
                f"{segments} segments do not fit in {map_stages} stages x "
                f"{groups_per_stage} groups")
        self.pipeline_stages = pipeline_stages
        self.map_stages = map_stages
        self.groups_per_stage = groups_per_stage
        self.segments = segments

    def placement(self, segment: int) -> Tuple[int, int]:
        """(stage, group) hosting a given segment."""
        if not 0 <= segment < self.segments:
            raise ValueError(f"segment {segment} out of range")
        return segment // self.groups_per_stage, \
            segment % self.groups_per_stage


class RegisterFile:
    """32-bit register memory with per-register sticky overflow bits."""

    def __init__(self, segments: int = 32, registers_per_segment: int = 40_000,
                 layout: StageLayout = None):
        if segments < 1 or registers_per_segment < 1:
            raise ValueError("segments and registers_per_segment must be >= 1")
        self.segments = segments
        self.registers_per_segment = registers_per_segment
        self.capacity = segments * registers_per_segment
        self.layout = layout or StageLayout(segments=segments)
        # Sparse storage: zero registers dominate, a dict keeps memory sane
        # while still modelling the full 32 x 40K address space.
        self._values: Dict[int, int] = {}
        self._sticky_overflow: set = set()

    # ------------------------------------------------------------------
    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.capacity:
            raise IndexError(
                f"physical address {addr} out of range [0, {self.capacity})")

    def segment_of(self, addr: int) -> int:
        """Which memory segment (= packet kv slot) an address lives in."""
        self._check(addr)
        return addr % self.segments

    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        """Map.get: returns the sentinel for sticky-overflowed registers."""
        self._check(addr)
        if addr in self._sticky_overflow:
            return INT32_MAX
        return self._values.get(addr, 0)

    def read_raw(self, addr: int) -> int:
        """Control-plane read: the exact stored value, ignoring sticky bits."""
        self._check(addr)
        return self._values.get(addr, 0)

    def add(self, addr: int, value: int) -> bool:
        """Map.addTo.  Returns True when the add overflowed.

        On overflow (including adds to an already-sticky register) the
        stored value is left unchanged and the sticky bit is set, so the
        packet's contribution must be replayed through the server agent.
        """
        # Hot path (one call per mapped kv pair per packet): the bounds
        # check and saturating_add are inlined.
        if addr < 0 or addr >= self.capacity:
            self._check(addr)
        if addr in self._sticky_overflow:
            return True
        values = self._values
        result = values.get(addr, 0) + value
        if result > INT32_MAX or result < INT32_MIN:
            self._sticky_overflow.add(addr)
            return True
        if result:
            values[addr] = result
        else:
            values.pop(addr, None)
        return False

    def write(self, addr: int, value: int) -> None:
        """Direct write (control plane / test&set reset paths)."""
        self._check(addr)
        self._sticky_overflow.discard(addr)
        if value:
            self._values[addr] = value
        else:
            self._values.pop(addr, None)

    def clear(self, addr: int) -> None:
        """Map.clear: zero the register and reset its sticky bit."""
        self._check(addr)
        self._values.pop(addr, None)
        self._sticky_overflow.discard(addr)

    def is_sticky(self, addr: int) -> bool:
        self._check(addr)
        return addr in self._sticky_overflow

    # ------------------------------------------------------------------
    # Table floating point (agg=fadd / agg=fmax).  Registers hold
    # ordered fp encodings (see repro.protocol.fpcodec): 0 is +0.0, so a
    # cleared register is the fp additive identity, and the encodings
    # never reach INT32_MAX — the sticky-read sentinel stays unambiguous.
    # Sticky/overflow semantics mirror the integer :meth:`add` exactly:
    # on exponent overflow the stored value is preserved, the sticky bit
    # set, and the packet replays through the server agent.
    # ------------------------------------------------------------------
    def fadd(self, addr: int, ordered: int, codec=DEFAULT_FP_CODEC) -> bool:
        """Fp ``Map.addTo`` via the lookup-table add.  True on overflow."""
        if addr < 0 or addr >= self.capacity:
            self._check(addr)
        if addr in self._sticky_overflow:
            return True
        values = self._values
        result, overflowed = codec.add_bits(values.get(addr, 0), ordered)
        if overflowed:
            self._sticky_overflow.add(addr)
            return True
        if result:
            values[addr] = result
        else:
            values.pop(addr, None)
        return False

    def fmax(self, addr: int, ordered: int) -> bool:
        """Fp ``Map.addTo`` with max combine: plain integer max on the
        ordered encodings.  Cannot itself overflow, but adds to a sticky
        register still report True (the replay contract)."""
        if addr < 0 or addr >= self.capacity:
            self._check(addr)
        if addr in self._sticky_overflow:
            return True
        values = self._values
        result = values.get(addr, 0)
        if ordered > result:
            result = ordered
            if result:
                values[addr] = result
            else:
                values.pop(addr, None)
        return False

    # ------------------------------------------------------------------
    # Bulk kernels: the sanctioned batch API for the pipeline's fused
    # per-packet loops (one call per primitive per packet instead of one
    # method call per kv slot).  ``select`` is a bitmask over the block's
    # slots (typically ``block.mapped_mask & pkt.bitmap``); ``base`` is
    # the switch's position in the global physical address space — slots
    # whose translated address falls outside ``[0, capacity)`` belong to
    # another switch in the chain and are skipped, exactly like the old
    # per-kv ``_local`` test.  Each kernel mirrors the scalar method's
    # semantics bit for bit (see tests/switchsim/test_kvblock_kernels.py
    # for the differential proof).
    # ------------------------------------------------------------------
    def add_block(self, block, select: int, base: int = 0) -> bool:
        """Batch ``Map.addTo``: one :meth:`add` per selected in-window slot.

        Sticky or overflowing slots get the ``INT32_MAX`` sentinel written
        back into the block (the on-wire overflow mark); the return value
        says whether any slot overflowed, so the caller can set the
        packet's ``is_of`` flag.
        """
        addrs = block.addrs
        slot_values = block.values
        values = self._values
        sticky = self._sticky_overflow
        capacity = self.capacity
        overflowed = False
        get = values.get
        full = select == (1 << len(addrs)) - 1
        for index, addr in enumerate(addrs):
            if full or select >> index & 1:
                local = addr - base
                if 0 <= local < capacity:
                    # `sticky and` keeps the empty-set steady state to a
                    # truthiness test; the membership check still guards
                    # duplicate addresses after a mid-packet overflow.
                    if sticky and local in sticky:
                        slot_values[index] = INT32_MAX
                        overflowed = True
                        continue
                    result = get(local, 0) + slot_values[index]
                    if result > INT32_MAX or result < INT32_MIN:
                        sticky.add(local)
                        slot_values[index] = INT32_MAX
                        overflowed = True
                    elif result:
                        values[local] = result
                    else:
                        values.pop(local, None)
        return overflowed

    def get_block(self, block, select: int, base: int = 0) -> bool:
        """Batch ``Map.get``: read each selected in-window slot's register.

        Sticky registers read as ``INT32_MAX``; returns whether any slot
        was sticky (the packet-level overflow signal).
        """
        addrs = block.addrs
        slot_values = block.values
        values = self._values
        sticky = self._sticky_overflow
        capacity = self.capacity
        overflowed = False
        get = values.get
        full = select == (1 << len(addrs)) - 1
        for index, addr in enumerate(addrs):
            if full or select >> index & 1:
                local = addr - base
                if 0 <= local < capacity:
                    if sticky and local in sticky:
                        slot_values[index] = INT32_MAX
                        overflowed = True
                    else:
                        slot_values[index] = get(local, 0)
        return overflowed

    def add_get_block(self, block, select: int, base: int = 0) -> bool:
        """Fused ``Map.addTo`` + ``Map.get`` in one pass over the block.

        Only valid when the selected slots carry *distinct* addresses
        (guaranteed for linear-addressed packets, which use consecutive
        addresses): with duplicates, the two-pass kernels would return
        the final register value for every duplicate slot, while a fused
        pass would return partial sums.  Callers gate on
        ``pkt.linear_base is not None``.
        """
        addrs = block.addrs
        slot_values = block.values
        values = self._values
        sticky = self._sticky_overflow
        capacity = self.capacity
        overflowed = False
        get = values.get
        if not sticky and select == (1 << len(addrs)) - 1:
            # Fast path for the steady state of a full linear packet:
            # every slot selected, no sticky registers anywhere — the
            # per-slot mask test and sticky membership test drop out.
            for index, addr in enumerate(addrs):
                local = addr - base
                if 0 <= local < capacity:
                    result = get(local, 0) + slot_values[index]
                    if result > INT32_MAX or result < INT32_MIN:
                        sticky.add(local)
                        slot_values[index] = INT32_MAX
                        overflowed = True
                    elif result:
                        values[local] = result
                        slot_values[index] = result
                    else:
                        values.pop(local, None)
                        slot_values[index] = 0
            return overflowed
        for index, addr in enumerate(addrs):
            if select >> index & 1:
                local = addr - base
                if 0 <= local < capacity:
                    if local in sticky:
                        slot_values[index] = INT32_MAX
                        overflowed = True
                        continue
                    result = get(local, 0) + slot_values[index]
                    if result > INT32_MAX or result < INT32_MIN:
                        sticky.add(local)
                        slot_values[index] = INT32_MAX
                        overflowed = True
                    elif result:
                        values[local] = result
                        slot_values[index] = result
                    else:
                        values.pop(local, None)
                        slot_values[index] = 0
        return overflowed

    def fadd_block(self, block, select: int, base: int = 0,
                   codec=DEFAULT_FP_CODEC) -> bool:
        """Batch fp ``Map.addTo``: one :meth:`fadd` per selected slot.

        Mirrors :meth:`add_block` slot for slot — sticky/overflowing
        slots get the ``INT32_MAX`` sentinel written back (never a valid
        fp encoding), the return value drives the packet's ``is_of``.
        """
        addrs = block.addrs
        slot_values = block.values
        values = self._values
        sticky = self._sticky_overflow
        capacity = self.capacity
        overflowed = False
        get = values.get
        add_bits = codec.add_bits
        full = select == (1 << len(addrs)) - 1
        for index, addr in enumerate(addrs):
            if full or select >> index & 1:
                local = addr - base
                if 0 <= local < capacity:
                    if sticky and local in sticky:
                        slot_values[index] = INT32_MAX
                        overflowed = True
                        continue
                    result, slot_of = add_bits(get(local, 0),
                                               slot_values[index])
                    if slot_of:
                        sticky.add(local)
                        slot_values[index] = INT32_MAX
                        overflowed = True
                    elif result:
                        values[local] = result
                    else:
                        values.pop(local, None)
        return overflowed

    def fmax_block(self, block, select: int, base: int = 0) -> bool:
        """Batch fp max-combine: integer max over ordered encodings.

        Same sticky contract as :meth:`fadd_block`; the max itself can
        never overflow, so only pre-existing sticky slots report.
        """
        addrs = block.addrs
        slot_values = block.values
        values = self._values
        sticky = self._sticky_overflow
        capacity = self.capacity
        overflowed = False
        get = values.get
        full = select == (1 << len(addrs)) - 1
        for index, addr in enumerate(addrs):
            if full or select >> index & 1:
                local = addr - base
                if 0 <= local < capacity:
                    if sticky and local in sticky:
                        slot_values[index] = INT32_MAX
                        overflowed = True
                        continue
                    ordered = slot_values[index]
                    current = get(local, 0)
                    if ordered > current:
                        if ordered:
                            values[local] = ordered
                        else:
                            values.pop(local, None)
        return overflowed

    def clear_block(self, addrs: Iterable[int], select: int = -1,
                    offset: int = 0) -> None:
        """Batch ``Map.clear`` over ``addrs`` (plus ``offset``) per mask.

        ``select = -1`` clears every address.  Out-of-window addresses
        are skipped silently — the pipeline's return path and shadow
        clear both tolerate pairs owned by the other switch in a chain.
        """
        values = self._values
        sticky = self._sticky_overflow
        capacity = self.capacity
        pop = values.pop
        discard = sticky.discard
        if select == -1 or select == (1 << len(addrs)) - 1:
            for addr in addrs:
                local = addr + offset
                if 0 <= local < capacity:
                    pop(local, None)
                    discard(local)
            return
        for index, addr in enumerate(addrs):
            if select >> index & 1:
                local = addr + offset
                if 0 <= local < capacity:
                    pop(local, None)
                    discard(local)

    # ------------------------------------------------------------------
    def read_and_clear(self, addrs: Iterable[int]) -> List[Tuple[int, int, bool]]:
        """Control-plane eviction: (addr, exact value, was_sticky) triples."""
        out = []
        values = self._values
        sticky = self._sticky_overflow
        addr_list = list(addrs)
        for addr in addr_list:
            self._check(addr)
            out.append((addr, values.get(addr, 0), addr in sticky))
        self.clear_block(addr_list)
        return out

    @property
    def occupied(self) -> int:
        """Number of non-zero registers (diagnostic)."""
        return len(self._values)

    def occupied_addrs(self) -> List[int]:
        """Addresses of all non-zero registers (diagnostic snapshot)."""
        return sorted(self._values)

    def power_cycle(self) -> None:
        """Reboot: register memory and sticky bits are volatile SRAM."""
        self._values.clear()
        self._sticky_overflow.clear()
