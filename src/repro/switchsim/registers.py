"""Switch register storage: the physical memory behind the INC map.

The paper's switch (§6.1) exposes 32 read-write memory *segments* — one
per key-value slot in a NetRPC packet — each holding 40K 32-bit units,
spread over 8 of the 12 pipeline stages with 4 register groups per
stage.  A physical address ``p`` maps to segment ``p % segments`` at
index ``p // segments``, so a run of 32 consecutive addresses touches
every segment exactly once (which is what lets a full packet be
processed in one pipeline pass).

Overflow handling refines §5.2.1: instead of saturating the register
itself (which destroys the accumulated value), a 1-bit *sticky overflow
sidecar* is set and the register is left intact.  Reads of a sticky
register return the MAX_INT sentinel, so every downstream host detects
the overflow exactly as in the paper, while the pre-overflow total
remains recoverable by the control plane (see DESIGN.md §4.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.protocol import INT32_MAX, INT32_MIN

__all__ = ["RegisterFile", "StageLayout"]


class StageLayout:
    """Maps memory segments onto pipeline stages and register groups.

    Purely structural — used to validate that a configuration fits the
    chip (``segments <= map_stages * groups_per_stage``) and to report
    resource usage.
    """

    def __init__(self, pipeline_stages: int = 12, map_stages: int = 8,
                 groups_per_stage: int = 4, segments: int = 32):
        if map_stages > pipeline_stages:
            raise ValueError("map stages cannot exceed pipeline stages")
        if segments > map_stages * groups_per_stage:
            raise ValueError(
                f"{segments} segments do not fit in {map_stages} stages x "
                f"{groups_per_stage} groups")
        self.pipeline_stages = pipeline_stages
        self.map_stages = map_stages
        self.groups_per_stage = groups_per_stage
        self.segments = segments

    def placement(self, segment: int) -> Tuple[int, int]:
        """(stage, group) hosting a given segment."""
        if not 0 <= segment < self.segments:
            raise ValueError(f"segment {segment} out of range")
        return segment // self.groups_per_stage, \
            segment % self.groups_per_stage


class RegisterFile:
    """32-bit register memory with per-register sticky overflow bits."""

    def __init__(self, segments: int = 32, registers_per_segment: int = 40_000,
                 layout: StageLayout = None):
        if segments < 1 or registers_per_segment < 1:
            raise ValueError("segments and registers_per_segment must be >= 1")
        self.segments = segments
        self.registers_per_segment = registers_per_segment
        self.capacity = segments * registers_per_segment
        self.layout = layout or StageLayout(segments=segments)
        # Sparse storage: zero registers dominate, a dict keeps memory sane
        # while still modelling the full 32 x 40K address space.
        self._values: Dict[int, int] = {}
        self._sticky_overflow: set = set()

    # ------------------------------------------------------------------
    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.capacity:
            raise IndexError(
                f"physical address {addr} out of range [0, {self.capacity})")

    def segment_of(self, addr: int) -> int:
        """Which memory segment (= packet kv slot) an address lives in."""
        self._check(addr)
        return addr % self.segments

    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        """Map.get: returns the sentinel for sticky-overflowed registers."""
        self._check(addr)
        if addr in self._sticky_overflow:
            return INT32_MAX
        return self._values.get(addr, 0)

    def read_for_get(self, addr: int) -> Tuple[int, bool]:
        """Fused Map.get read: ``(value_with_sentinel, sticky)``.

        One call instead of a ``read`` + ``is_sticky`` pair in the
        pipeline's per-kv loop.
        """
        if addr < 0 or addr >= self.capacity:
            self._check(addr)
        if addr in self._sticky_overflow:
            return INT32_MAX, True
        return self._values.get(addr, 0), False

    def read_raw(self, addr: int) -> int:
        """Control-plane read: the exact stored value, ignoring sticky bits."""
        self._check(addr)
        return self._values.get(addr, 0)

    def add(self, addr: int, value: int) -> bool:
        """Map.addTo.  Returns True when the add overflowed.

        On overflow (including adds to an already-sticky register) the
        stored value is left unchanged and the sticky bit is set, so the
        packet's contribution must be replayed through the server agent.
        """
        # Hot path (one call per mapped kv pair per packet): the bounds
        # check and saturating_add are inlined.
        if addr < 0 or addr >= self.capacity:
            self._check(addr)
        if addr in self._sticky_overflow:
            return True
        values = self._values
        result = values.get(addr, 0) + value
        if result > INT32_MAX or result < INT32_MIN:
            self._sticky_overflow.add(addr)
            return True
        if result:
            values[addr] = result
        else:
            values.pop(addr, None)
        return False

    def write(self, addr: int, value: int) -> None:
        """Direct write (control plane / test&set reset paths)."""
        self._check(addr)
        self._sticky_overflow.discard(addr)
        if value:
            self._values[addr] = value
        else:
            self._values.pop(addr, None)

    def clear(self, addr: int) -> None:
        """Map.clear: zero the register and reset its sticky bit."""
        self._check(addr)
        self._values.pop(addr, None)
        self._sticky_overflow.discard(addr)

    def is_sticky(self, addr: int) -> bool:
        self._check(addr)
        return addr in self._sticky_overflow

    # ------------------------------------------------------------------
    def read_and_clear(self, addrs: Iterable[int]) -> List[Tuple[int, int, bool]]:
        """Control-plane eviction: (addr, exact value, was_sticky) triples."""
        out = []
        for addr in addrs:
            self._check(addr)
            out.append((addr, self._values.get(addr, 0),
                        addr in self._sticky_overflow))
            self.clear(addr)
        return out

    @property
    def occupied(self) -> int:
        """Number of non-zero registers (diagnostic)."""
        return len(self._values)

    def occupied_addrs(self) -> List[int]:
        """Addresses of all non-zero registers (diagnostic snapshot)."""
        return sorted(self._values)

    def power_cycle(self) -> None:
        """Reboot: register memory and sticky bits are volatile SRAM."""
        self._values.clear()
        self._sticky_overflow.clear()
