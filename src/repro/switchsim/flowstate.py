"""Per-flow retransmission state: the flip-bit bitmap protocol (§5.1).

The switch keeps one bit array of ``w_max`` bits per reliable flow,
initialised to all ones.  A packet carries ``flip = (seq // w_max) % 2``;
the switch compares the ``seq % w_max``-th bit against the flip:

* bit == flip  ->  the packet was seen before (retransmission); skip all
  state-changing primitives;
* bit != flip  ->  first appearance; store the flip and process fully.

The sender-side window invariant (packet *i* of window *t* is sent only
after packet *i* of window *t-1* is ACKed) makes this exact — the
induction proof is in §5.1 and is checked by property-based tests.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["FlowStateTable"]


class FlowStateTable:
    """SRRT slot -> ``w_max``-bit array, packed into Python ints."""

    def __init__(self, slots: int = 1024, w_max: int = 256):
        if slots < 1:
            raise ValueError("need at least one flow slot")
        if w_max < 1:
            raise ValueError("w_max must be >= 1")
        self.slots = slots
        self.w_max = w_max
        self._all_ones = (1 << w_max) - 1
        self._bits: Dict[int, int] = {}
        self._next_slot = 0

    def allocate(self) -> int:
        """Hand out the next free SRRT slot (controller connection setup)."""
        if self._next_slot >= self.slots:
            raise RuntimeError(
                f"all {self.slots} reliable-flow slots are in use")
        slot = self._next_slot
        self._next_slot += 1
        self._bits[slot] = self._all_ones
        return slot

    def release(self, slot: int) -> None:
        self._bits.pop(slot, None)

    def expected_flip(self, slot: int, seq: int) -> int:
        """The stored bit for ``seq`` (diagnostic/test helper)."""
        bits = self._bits.get(slot, self._all_ones)
        return bits >> (seq % self.w_max) & 1

    def check_and_update(self, slot: int, seq: int, flip: int) -> bool:
        """Returns True when the packet is a retransmission.

        First appearances store the packet's flip bit into the array.
        """
        if seq < 0:
            raise ValueError("sequence numbers are non-negative")
        if flip not in (0, 1):
            raise ValueError(f"flip must be 0 or 1, got {flip}")
        index = seq % self.w_max
        bits = self._bits.get(slot, self._all_ones)
        current = bits >> index & 1
        if current == flip:
            return True
        if flip:
            bits |= 1 << index
        else:
            bits &= ~(1 << index)
        self._bits[slot] = bits
        return False

    @property
    def next_slot(self) -> int:
        """Allocator position (diagnostic; slot handout is bump-only)."""
        return self._next_slot

    def clear_state(self) -> None:
        """Reboot: every allocated slot reverts to all-ones.

        The allocator position survives — slot numbers are handed out by
        the controller and must stay consistent across every switch on
        the path, so a reboot may lose the *bits* but not the slot map.
        """
        ones = self._all_ones
        for slot in self._bits:
            self._bits[slot] = ones

    def restore(self, slot: int, bits: int) -> None:
        """Controller resync: overwrite one slot's bit array wholesale.

        Used on the failover path to rebuild retransmission state from
        the live senders after :meth:`clear_state` (see
        ``ReliableFlow.flip_resync_bits``).
        """
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range [0, {self.slots})")
        self._bits[slot] = bits & self._all_ones

    def memory_bits(self) -> int:
        """Total switch memory consumed by reliable-flow state."""
        return len(self._bits) * self.w_max
