"""Per-application admission state installed by the controller at runtime.

A single switch program serves every application; the controller only
installs/removes :class:`AppEntry` rows (match-action table entries), so
applications start and stop without rebooting the switch (paper §3.2,
"multi-application data plane").  Each entry keeps the last-seen
timestamp the controller polls for the two-level timeout (§5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.protocol import RIPProgram

__all__ = ["AppEntry", "AdmissionTable"]


@dataclass
class AppEntry:
    """One application's switch-resident configuration."""

    gaid: int
    program: RIPProgram
    server: str                       # server agent host name
    clients: Tuple[str, ...] = ()     # multicast group for CntFwd "ALL"
    enabled: bool = True
    last_seen: float = 0.0
    # In a multi-switch chain (§6.6) only the switch adjacent to the
    # server ("edge") runs CntFwd/forwarding decisions; upstream switches
    # process their local kv pairs and pass the packet along.
    edge: bool = True

    def touch(self, now: float) -> None:
        self.last_seen = now


class AdmissionTable:
    """GAID -> :class:`AppEntry` match table."""

    def __init__(self):
        self._entries: Dict[int, AppEntry] = {}

    def install(self, entry: AppEntry) -> None:
        if entry.gaid in self._entries:
            raise ValueError(f"GAID {entry.gaid} already installed")
        self._entries[entry.gaid] = entry

    def remove(self, gaid: int) -> AppEntry:
        try:
            return self._entries.pop(gaid)
        except KeyError:
            raise KeyError(f"GAID {gaid} not installed") from None

    def lookup(self, gaid: int) -> Optional[AppEntry]:
        entry = self._entries.get(gaid)
        if entry is not None and not entry.enabled:
            return None
        return entry

    def update_clients(self, gaid: int, clients: Tuple[str, ...]) -> None:
        self._entries[gaid].clients = clients

    def clear(self) -> None:
        """Reboot: match-action entries are part of the volatile config.

        The controller re-installs them on the failover path; until then
        every INC packet takes the unadmitted forwarding path.
        """
        self._entries.clear()

    def timestamps(self) -> Dict[int, float]:
        """Last-seen time per GAID, polled by the controller."""
        return {gaid: e.last_seen for gaid, e in self._entries.items()}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, gaid: int) -> bool:
        return gaid in self._entries
