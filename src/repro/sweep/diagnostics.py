"""Importable calibration/self-test workloads for the sweep engine.

The engine's failure-containment and overlap properties need runnable
workloads that are importable from worker processes (a spec names its
callable by dotted path, so closures defined in test bodies cannot be
used).  These live in the package itself: the benchmark runner uses
:func:`blocking_run` to measure fan-out overlap independent of core
count, and the test suite uses the rest to provoke each failure mode.
"""

from __future__ import annotations

import os
import time

from repro.netsim import Simulator

__all__ = ["blocking_run", "checksum_run", "crash_run", "pid_run",
           "raise_run", "runaway_simulation"]


def blocking_run(wall_s: float = 0.1, tag: int = 0) -> int:
    """Hold a worker for ``wall_s`` of wall time without burning CPU.

    A sweep of these measures the engine's *overlap*: N blocking runs
    finish in ~``wall_s`` on N workers vs ``N * wall_s`` serially, on
    any machine — including single-core CI — so it calibrates engine
    overhead separately from CPU-bound scaling.
    """
    time.sleep(wall_s)
    return tag


def checksum_run(seed: int = 0, n: int = 1000) -> int:
    """Pure seeded computation — the determinism property-test subject."""
    sim = Simulator(seed=seed)
    acc = 0
    for i in range(n):
        acc = (acc * 131 + sim.rng.randrange(1 << 30) + i) % (1 << 61)
    return acc


def pid_run() -> int:
    """Report the executing process id (worker-placement assertions)."""
    return os.getpid()


def raise_run(message: str = "boom") -> None:
    """Fail at the Python level — must become RunFailure('error')."""
    raise ValueError(message)


def crash_run(code: int = 3) -> None:
    """Kill the worker process outright — RunFailure('crash')."""
    os._exit(code)


def nested_sweep_run(width: int = 3) -> dict:
    """Run a sweep *from inside* a sweep worker.

    Nested engines must degrade to in-process execution (the outer
    engine owns the fan-out and pool workers may not have children);
    this reports what the nested engine actually did.
    """
    from . import RunSpec, SweepEngine, default_workers

    engine = SweepEngine()
    outcomes = engine.run(
        [RunSpec("repro.sweep.diagnostics.checksum_run", {"n": 50},
                 seed=seed) for seed in range(width)])
    return {"effective_workers": default_workers(),
            "pid": os.getpid(),
            "values": [outcome.value for outcome in outcomes]}


def runaway_simulation(step_s: float = 1e-6) -> None:
    """A simulation that never quiesces: an endless self-rescheduling
    process.  Under a sweep timeout the simulator's wall-deadline guard
    cancels it; without one it would spin forever."""
    sim = Simulator(seed=0)

    def spin():
        while True:
            yield sim.timeout(step_s)

    sim.process(spin(), name="runaway")
    sim.run()
