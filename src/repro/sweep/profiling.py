"""Per-run profiling adapter for sweep execution.

``tools/profile_experiment.py --sweep`` routes each grid point through
:func:`profiled_call` inside its worker: the run executes under its own
``cProfile``, the raw stats land in a per-run dump file (pstats
snapshots are not picklable, files are), and only a light summary
travels back through the pool.
"""

from __future__ import annotations

import cProfile
import pstats
from io import StringIO
from pathlib import Path
from time import perf_counter
from typing import Any, Dict

from .spec import resolve_callable

__all__ = ["profiled_call", "top_table"]


def profiled_call(fn: str, kwargs: Dict[str, Any], dump_path: str,
                  ) -> Dict[str, Any]:
    """Run ``fn(**kwargs)`` under cProfile; dump stats to ``dump_path``.

    Returns a picklable summary (wall time, dump location, call count)
    rather than the profile or the experiment result itself — sweep
    profiling is about where the time went, not the figures.
    """
    target = resolve_callable(fn)
    profiler = cProfile.Profile()
    start = perf_counter()
    profiler.enable()
    value = target(**kwargs)
    profiler.disable()
    wall = perf_counter() - start
    Path(dump_path).parent.mkdir(parents=True, exist_ok=True)
    profiler.dump_stats(dump_path)
    stats = pstats.Stats(profiler)
    return {
        "fn": fn,
        "kwargs": kwargs,
        "wall_s": wall,
        "dump": str(dump_path),
        "total_calls": int(stats.total_calls),
        "result_type": type(value).__name__,
    }


def top_table(dump_path: str, sort: str = "tottime", top: int = 15) -> str:
    """Render the top rows of a dumped profile as text."""
    buffer = StringIO()
    stats = pstats.Stats(str(dump_path), stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()
