"""Process-parallel sweep execution with a deterministic merge.

Every paper figure is a *sweep* — a grid of independent simulation runs,
each a pure function of (config, seed).  :class:`SweepEngine` fans a
list of :class:`RunSpec` out over a ``ProcessPoolExecutor`` and merges
results **by spec index**, so parallel output is bit-identical to serial
output regardless of completion order (the SimBricks recipe: parallelize
the independent instances, synchronize only at result boundaries).

Failure containment, in increasing order of violence:

* the callable raises → the worker catches it and ships a structured
  ``("error", ...)`` payload back; the sweep continues.
* the run overruns its wall-clock budget → the simulator's wall-deadline
  guard (:class:`repro.netsim.WallClockExceeded`) cancels it inside the
  worker, which reports ``("timeout", ...)``; the pool is not poisoned.
* the worker process *dies* (segfault, ``os._exit``, OOM kill) → the
  executor breaks; the engine collects everything that finished, then
  re-runs each unfinished spec in its own fresh single-worker pool so
  the crasher is identified exactly and charged a ``RunFailure("crash")``
  while innocent bystanders still complete.

``workers=1`` bypasses multiprocessing entirely (plain in-process loop,
same merge, same timeout guard) — the debugging escape hatch and the
reference ordering that the parallel path must reproduce bit-for-bit.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.netsim.simulator import (
    WallClockExceeded,
    set_global_wall_deadline,
)

from .spec import (
    RunFailure,
    RunResult,
    RunSpec,
    format_exception,
    resolve_callable,
)

__all__ = ["SweepEngine", "default_workers", "run_sweep", "sweep_values",
           "WORKERS_ENV"]

WORKERS_ENV = "REPRO_SWEEP_WORKERS"

# Engine-side backstop multiplier for a spec's timeout: the cooperative
# in-worker guard normally fires first; the backstop only matters when a
# run hangs outside any simulator loop (e.g. a native busy-wait).
_HARD_TIMEOUT_SLACK = 4.0
_HARD_TIMEOUT_FLOOR_S = 5.0

Outcome = Union[RunResult, RunFailure]


# Set (via pool initializer) in sweep worker processes: a nested sweep
# — an experiment's run() invoked as a spec of an outer sweep — must not
# fan out again.  Workers may be daemonic, and the outer sweep already
# owns the machine's parallelism; nested engines run in-process instead.
_IN_WORKER = False


def _mark_worker_process() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def default_workers() -> int:
    """Worker count: ``$REPRO_SWEEP_WORKERS``, else ``os.cpu_count()``.

    Inside a sweep worker process this is always 1 (nested sweeps run
    in-process; the outer engine owns the fan-out).
    """
    if _IN_WORKER:
        return 1
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
        if value < 1:
            raise ValueError(f"{WORKERS_ENV} must be >= 1, got {value}")
        return value
    return os.cpu_count() or 1


def _execute(fn_path: str, kwargs: Dict[str, Any],
             timeout_s: Optional[float]) -> Tuple[str, Any, str, float]:
    """Worker-side entry point: run one spec, never raise.

    Returns ``(status, value_or_message, traceback, wall_s)`` with
    status ``"ok"``, ``"timeout"`` or ``"error"`` — Python-level
    exceptions are *payload*, so the only thing that can surface as a
    future exception is the process itself dying.
    """
    start = perf_counter()
    if timeout_s is not None:
        set_global_wall_deadline(start + timeout_s)
    try:
        fn = resolve_callable(fn_path)
        value = fn(**kwargs)
        return ("ok", value, "", perf_counter() - start)
    except WallClockExceeded as exc:
        return ("timeout", f"exceeded {timeout_s}s wall budget: {exc}",
                "", perf_counter() - start)
    except BaseException as exc:   # noqa: BLE001 - containment by design
        return ("error", f"{type(exc).__name__}: {exc}",
                format_exception(exc), perf_counter() - start)
    finally:
        if timeout_s is not None:
            set_global_wall_deadline(None)


def _outcome(index: int, spec: RunSpec,
             payload: Tuple[str, Any, str, float]) -> Outcome:
    status, value, tb, wall = payload
    if status == "ok":
        return RunResult(index=index, spec=spec, value=value, wall_s=wall)
    return RunFailure(index=index, spec=spec, kind=status,
                      message=str(value), traceback=tb, wall_s=wall)


class SweepEngine:
    """Execute a list of :class:`RunSpec` and merge results in order."""

    def __init__(self, workers: Optional[int] = None,
                 timeout_s: Optional[float] = None,
                 mp_start_method: Optional[str] = None):
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.timeout_s = timeout_s   # default per-run budget
        if mp_start_method is None:
            methods = multiprocessing.get_all_start_methods()
            mp_start_method = "fork" if "fork" in methods else methods[0]
        self.mp_start_method = mp_start_method

    # -- public API -----------------------------------------------------
    def run(self, specs: Iterable[RunSpec]) -> List[Outcome]:
        """Run every spec; outcome ``i`` always belongs to spec ``i``."""
        specs = list(specs)
        if not specs:
            return []
        if self.workers == 1 or _IN_WORKER:
            return self._run_inprocess(specs)
        return self._run_pool(specs)

    def map(self, fn: str, kwargs_grid: Sequence[Dict[str, Any]],
            timeout_s: Optional[float] = None) -> List[Outcome]:
        """Sweep one callable over a grid of kwargs dicts."""
        return self.run([RunSpec(fn=fn, kwargs=dict(kwargs),
                                 timeout_s=timeout_s or self.timeout_s)
                         for kwargs in kwargs_grid])

    # -- serial reference path ------------------------------------------
    def _run_inprocess(self, specs: List[RunSpec]) -> List[Outcome]:
        outcomes: List[Outcome] = []
        for index, spec in enumerate(specs):
            payload = _execute(spec.fn, spec.merged_kwargs(),
                               spec.timeout_s or self.timeout_s)
            outcomes.append(_outcome(index, spec, payload))
        return outcomes

    # -- parallel path --------------------------------------------------
    def _hard_timeout(self, spec: RunSpec) -> Optional[float]:
        budget = spec.timeout_s or self.timeout_s
        if budget is None:
            return None
        return max(budget * _HARD_TIMEOUT_SLACK, _HARD_TIMEOUT_FLOOR_S)

    def _run_pool(self, specs: List[RunSpec]) -> List[Outcome]:
        outcomes: List[Optional[Outcome]] = [None] * len(specs)
        ctx = multiprocessing.get_context(self.mp_start_method)
        broken = False
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(specs)),
                    mp_context=ctx,
                    initializer=_mark_worker_process) as pool:
                futures = {
                    index: pool.submit(_execute, spec.fn,
                                       spec.merged_kwargs(),
                                       spec.timeout_s or self.timeout_s)
                    for index, spec in enumerate(specs)}
                for index, future in futures.items():
                    spec = specs[index]
                    try:
                        payload = future.result(
                            timeout=self._hard_timeout(spec))
                    except _FuturesTimeout:
                        outcomes[index] = RunFailure(
                            index=index, spec=spec, kind="timeout",
                            message="engine-side hard timeout (run hung "
                                    "outside the simulator's wall guard)")
                    except BrokenProcessPool:
                        broken = True
                        break
                    else:
                        outcomes[index] = _outcome(index, spec, payload)
                if broken:
                    # Salvage every future that did complete before the
                    # pool broke; the rest re-run in quarantine below.
                    for index, future in futures.items():
                        if outcomes[index] is not None:
                            continue
                        if future.done() and future.exception() is None:
                            outcomes[index] = _outcome(index, specs[index],
                                                       future.result())
        except BrokenProcessPool:
            broken = True
        if any(outcome is None for outcome in outcomes):
            self._run_quarantined(specs, outcomes, ctx)
        return outcomes  # type: ignore[return-value]

    def _run_quarantined(self, specs: List[RunSpec],
                         outcomes: List[Optional[Outcome]], ctx) -> None:
        """Re-run unfinished specs one per fresh single-worker pool.

        Reached only after a worker death broke the shared pool.  Runs
        are pure functions of their spec, so re-running is safe; giving
        each suspect its own process identifies the crasher exactly.
        """
        for index, spec in enumerate(specs):
            if outcomes[index] is not None:
                continue
            try:
                with ProcessPoolExecutor(
                        max_workers=1, mp_context=ctx,
                        initializer=_mark_worker_process) as pool:
                    future = pool.submit(_execute, spec.fn,
                                         spec.merged_kwargs(),
                                         spec.timeout_s or self.timeout_s)
                    payload = future.result(timeout=self._hard_timeout(spec))
                    outcomes[index] = _outcome(index, spec, payload)
            except _FuturesTimeout:
                outcomes[index] = RunFailure(
                    index=index, spec=spec, kind="timeout",
                    message="engine-side hard timeout in quarantine")
            except BrokenProcessPool:
                outcomes[index] = RunFailure(
                    index=index, spec=spec, kind="crash",
                    message="worker process died while running this spec")


def run_sweep(specs: Iterable[RunSpec],
              workers: Optional[int] = None) -> List[Outcome]:
    """One-shot sweep with default engine settings."""
    return SweepEngine(workers=workers).run(specs)


def sweep_values(specs: Iterable[RunSpec],
                 workers: Optional[int] = None) -> List[Any]:
    """Run a sweep and unwrap values, re-raising the first failure.

    The experiment harnesses use this: a failed run must propagate as
    an exception exactly as it would have under the old serial loop.
    """
    values = []
    for outcome in run_sweep(specs, workers=workers):
        if isinstance(outcome, RunFailure):
            outcome.raise_()
        values.append(outcome.value)
    return values
