"""Run specifications and structured outcomes for sweep execution.

A :class:`RunSpec` names one independent simulation run as *data*: an
importable callable path, plain-value kwargs, and an optional seed.
Keeping specs pickle-light (strings, numbers, small containers — never
closures, deployments, or simulator objects) is what lets a sweep fan
out over worker processes; anything heavyweight is rebuilt inside the
run from the spec, which is also the determinism contract — each run is
a pure function of (config, seed).
"""

from __future__ import annotations

import importlib
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = ["RunSpec", "RunResult", "RunFailure", "SweepError",
           "resolve_callable"]


class SweepError(RuntimeError):
    """Raised when a sweep whose caller demanded values hit a failure."""


def resolve_callable(path: str) -> Callable:
    """Import ``pkg.module.attr`` (attr may be dotted) to a callable."""
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ValueError(f"not a dotted callable path: {path!r}")
    obj: Any = importlib.import_module(module_name)
    for name in attr.split("."):
        obj = getattr(obj, name)
    if not callable(obj):
        raise TypeError(f"{path!r} resolved to non-callable {obj!r}")
    return obj


@dataclass(frozen=True)
class RunSpec:
    """One independent run: callable path + kwargs (+ seed, timeout).

    ``seed`` is merged into the kwargs as ``seed=...`` when set, so a
    seed sweep over one config is ``[RunSpec(fn, cfg, seed=s) ...]``.
    ``timeout_s`` is a per-run *wall-clock* budget enforced inside the
    worker by the simulator's wall-deadline guard (see
    ``Simulator.set_wall_deadline``); a run that exceeds it becomes a
    :class:`RunFailure` with ``kind="timeout"``, not a dead sweep.
    """

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""
    timeout_s: Optional[float] = None

    def merged_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def call(self) -> Any:
        """Resolve and invoke the callable (no timeout, no isolation)."""
        return resolve_callable(self.fn)(**self.merged_kwargs())

    def describe(self) -> str:
        return self.label or f"{self.fn}({self.merged_kwargs()!r})"


@dataclass
class RunResult:
    """A completed run, tagged with its spec index for ordered merge."""

    index: int
    spec: RunSpec
    value: Any
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return True


@dataclass
class RunFailure:
    """A run that raised, timed out, or took its worker process down.

    ``kind`` is one of ``"error"`` (the callable raised), ``"timeout"``
    (wall-clock budget exceeded), or ``"crash"`` (the worker process
    died — segfault, ``os._exit``, OOM kill).  The sweep always
    completes: a failure occupies the failed spec's slot in the merged
    result list and every other run still runs.
    """

    index: int
    spec: RunSpec
    kind: str
    message: str
    traceback: str = ""
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return False

    def raise_(self) -> None:
        """Re-raise as :class:`SweepError` with the remote traceback."""
        detail = f"\n--- worker traceback ---\n{self.traceback}" \
            if self.traceback else ""
        raise SweepError(
            f"sweep run #{self.index} ({self.spec.describe()}) failed "
            f"[{self.kind}]: {self.message}{detail}")


def format_exception(exc: BaseException) -> str:
    return "".join(_traceback.format_exception(type(exc), exc,
                                               exc.__traceback__))
