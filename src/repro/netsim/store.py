"""FIFO stores for inter-process communication.

A :class:`Store` is an unbounded (or bounded) FIFO queue whose ``get``
and ``put`` operations are events, so processes can block on them:

>>> from repro.netsim import Simulator
>>> sim = Simulator()
>>> store = Store(sim)
>>> out = []
>>> def consumer():
...     item = yield store.get()
...     out.append(item)
>>> _ = sim.process(consumer())
>>> store.put_nowait("hello")
>>> sim.run()
>>> out
['hello']
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .events import Event
from .simulator import Simulator

__all__ = ["Store", "StoreFull"]


class StoreFull(Exception):
    """Raised by :meth:`Store.put_nowait` when a bounded store is full."""


class Store:
    """A FIFO queue with event-based blocking ``get`` and ``put``."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying pending items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Blocking put; the returned event triggers once the item is in."""
        event = self.sim.event()
        if not self.is_full:
            self._items.append(item)
            event.succeed()
            self._wake_getter()
        else:
            event.value = item  # stash the payload until space frees up
            self._putters.append(event)
        return event

    def put_nowait(self, item: Any) -> None:
        """Non-blocking put; raises :class:`StoreFull` if bounded and full."""
        if self.is_full:
            raise StoreFull(f"store at capacity {self.capacity}")
        self._items.append(item)
        self._wake_getter()

    def get(self) -> Event:
        """Blocking get; the returned event triggers with the item."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        """Non-blocking get; raises :class:`LookupError` when empty."""
        if not self._items:
            raise LookupError("store is empty")
        item = self._items.popleft()
        self._admit_putter()
        return item

    def drain(self) -> list:
        """Remove and return all queued items (does not wake putters fully)."""
        items = list(self._items)
        self._items.clear()
        while self._putters and not self.is_full:
            self._admit_putter()
        return items

    # ------------------------------------------------------------------
    def _wake_getter(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:  # pragma: no cover - cancelled getter
                continue
            getter.succeed(self._items.popleft())

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            putter = self._putters.popleft()
            item, putter.value = putter.value, None
            self._items.append(item)
            putter.succeed()
            self._wake_getter()
