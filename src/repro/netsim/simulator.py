"""The discrete-event simulator core.

:class:`Simulator` owns the clock and the pending-event schedule.
:class:`Process` wraps a generator so that ``yield event`` suspends the
process until the event triggers.  This gives application code a
blocking, thread-like style while the whole system remains
deterministic and single-threaded.

Scheduler structure (DESIGN.md §4.7)
------------------------------------
Events are not kept in one binary heap.  The schedule is *tiered*:

* a **cohort table** maps each pending timestamp to the list of events
  scheduled at exactly that instant, in scheduling order.  Scheduling
  into an existing cohort is a dict hit plus a list append — no heap
  comparisons — and the dispatch loop drains a whole same-timestamp
  cohort per iteration;
* a **spill heap** of *distinct* timestamps orders the cohorts.  Its
  push/pop traffic scales with the number of unique pending instants,
  not with the event count, so the classic NetRPC pattern — hundreds of
  link/process events landing on one computed timestamp — costs one
  float comparison per cohort instead of ``O(log n)`` tuple comparisons
  per event;
* **cancellable timers** (:meth:`Simulator.call_later` /
  :meth:`Simulator.call_at`) return a :class:`TimerHandle` whose
  ``cancel()`` is O(1) and lazy: the cohort entry is blanked in place
  and skipped by the dispatch loop, never popped, re-sifted, or
  dispatched as a tombstone callback.

The ordering contract is unchanged from the single-heap model: events
run in ``(time, seq)`` order, where ``seq`` is the monotonically
increasing scheduling sequence number.  Within a cohort the append
order *is* the seq order, so no per-event comparison is needed to
preserve it.  Cancelled entries still advance the clock to their
timestamp when reached (exactly as a tombstone dispatch used to), so a
run that drains the schedule ends at the same ``now`` either way.

Example
-------
>>> sim = Simulator(seed=1)
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("b", 2.0))
>>> _ = sim.process(worker("a", 1.0))
>>> sim.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

import heapq
import random
from time import perf_counter
from typing import (Any, Callable, Dict, Generator, Iterable, List, Optional,
                    Tuple)

from repro.obs.tracer import TRACE

from .events import AllOf, AnyOf, Event, EventFailed, Interrupt, Timeout

__all__ = ["Simulator", "Process", "TimerHandle", "SimulationError",
           "WallClockExceeded", "set_global_wall_deadline",
           "global_wall_deadline", "track_simulators"]

_heappush = heapq.heappush
_heappop = heapq.heappop

# Every _WALL_CHECK_EVERY dispatched events a deadline-guarded loop
# consults perf_counter(); coarse enough to stay off the hot path,
# fine enough that a runaway run is cancelled within milliseconds.
_WALL_CHECK_EVERY = 2048

# Process-wide wall deadline (absolute perf_counter() time).  Sweep
# workers install it *before* the run constructs its Simulator; every
# simulator built while it is set inherits it, so the guard reaches
# simulators created arbitrarily deep inside experiment code.
_GLOBAL_WALL_DEADLINE: Optional[float] = None

# Optional construction hook: when a list is installed here, every new
# Simulator appends itself.  tools/profile_experiment.py uses this to
# reach the simulators an experiment builds internally and report their
# scheduler statistics next to the cProfile table.
_SIM_SINK: Optional[list] = None


class SimulationError(RuntimeError):
    """Raised for fatal simulator misuse (e.g. running a finished sim)."""


class WallClockExceeded(SimulationError):
    """A run overran its wall-clock deadline (sweep timeout guard)."""


def set_global_wall_deadline(deadline: Optional[float]) -> None:
    """Install (or clear, with ``None``) the process-wide wall deadline.

    ``deadline`` is an absolute :func:`time.perf_counter` timestamp.
    Only simulators constructed while the deadline is set are guarded —
    the disabled path of :meth:`Simulator.run` stays byte-for-byte the
    pre-guard dispatch loop.
    """
    global _GLOBAL_WALL_DEADLINE
    _GLOBAL_WALL_DEADLINE = deadline


def global_wall_deadline() -> Optional[float]:
    return _GLOBAL_WALL_DEADLINE


def track_simulators(sink: Optional[list]) -> None:
    """Install (or clear, with ``None``) a list that collects every
    :class:`Simulator` constructed afterwards.

    Diagnostic-only: lets tooling reach simulators built deep inside
    experiment code to read :meth:`Simulator.scheduler_stats` after a
    run.  The sink holds strong references; callers clear it promptly.
    """
    global _SIM_SINK
    _SIM_SINK = sink


class TimerHandle(list):
    """A cancellable hold on one scheduled callback.

    Returned by :meth:`Simulator.call_later` / :meth:`Simulator.call_at`.
    The handle *is* the schedule entry — a two-element
    ``[callback, value]`` list the dispatch loop unpacks like any other —
    so arming a timer costs a single allocation.  :meth:`cancel` is O(1)
    and *lazy*: the callback slot is blanked in place and the dispatch
    loop skips the entry when its timestamp is reached — no heap
    surgery, no tombstone callback dispatch.
    """

    __slots__ = ("when", "_sim")

    def cancel(self) -> bool:
        """Prevent the callback from running; True if this call did it.

        Returns ``False`` once the timer's timestamp has passed (it
        already fired or was already cancelled).  Cancelling *at* the
        timer's exact timestamp, from a later entry of the same cohort,
        blanks the entry after the callback ran — harmless, but the
        caller is expected to know its own timer fired (as
        ``Timeout.cancel`` does via its triggered flag).
        """
        if self[0] is None or self.when < self._sim.now:
            return False
        self[0] = None
        self[1] = None           # drop the value reference eagerly
        self._sim._timers_cancelled += 1
        return True

    @property
    def cancelled(self) -> bool:
        return self[0] is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self[0] is None else f"at {self.when!r}"
        return f"<TimerHandle {state}>"


class Process(Event):
    """A running generator; itself an event that triggers on completion.

    The wrapped generator may ``yield`` any :class:`Event`.  When the event
    succeeds, the generator resumes with the event's value; when it fails,
    :class:`EventFailed` is thrown into the generator.  The process event
    succeeds with the generator's return value.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Start the process at the current simulation time, but via the
        # event queue so creation order is preserved deterministically.
        sim.schedule(0.0, self._resume, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def _resume(self, send_value: Any) -> None:
        # The generator is driven directly (no per-step closure): this
        # method runs once per process step, on the simulator's hottest
        # path.
        if self.triggered:
            return
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process as failed.
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as cause:
            self.fail(cause)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._event_done)

    def _event_done(self, event: Event) -> None:
        if self.triggered or self._waiting_on is not event:
            return
        self._waiting_on = None
        if event.ok:
            self._resume(event.value)
        else:
            self._throw(EventFailed(event.value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with a seeded RNG.

    Time is a float in **seconds**.  Ties break on a monotonically
    increasing sequence number, so same-time events run in scheduling
    order; within a cohort that order is the append order, so the
    dispatch loop never compares sequence numbers at all.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        # Tier 1: cohort table — pending timestamp -> entries at exactly
        # that instant, in scheduling (= seq) order.  Entries are
        # (callback, value) tuples, or [callback, value] lists for
        # cancellable timers (cancel blanks the callback slot in place).
        self._cohorts: Dict[float, list] = {}
        # Tier 2: spill heap of *distinct* pending timestamps.
        self._times: List[float] = []
        # The cohort currently being drained (its time == self.now) and
        # the index of the next undispatched entry.  Shared by run(),
        # run_until(), and step() so they can interleave mid-cohort.
        self._ready: list = []
        self._ready_i = 0
        self._sequence = 0
        self.rng = random.Random(seed)
        self._finished = False
        self._wall_deadline = _GLOBAL_WALL_DEADLINE
        self._wall_countdown = _WALL_CHECK_EVERY
        # Scheduler statistics (amortized: touched per cohort or per
        # timer, never per plain schedule into an existing cohort).
        self._cohorts_created = 0
        self._cohorts_drained = 0
        self._timers_created = 0
        self._timers_cancelled = 0
        self._peak_spill = 0
        if _SIM_SINK is not None:
            _SIM_SINK.append(self)
        if TRACE.enabled:
            # Each simulator is its own trace epoch, so sequential runs
            # in one process never interleave on the exported timeline.
            TRACE.begin_epoch()

    def set_wall_deadline(self, deadline: Optional[float]) -> None:
        """Cancel this simulator's run loops past an absolute
        :func:`time.perf_counter` timestamp (``None`` disables).

        The guard makes a runaway run *cancellable*: :meth:`run`,
        :meth:`run_until`, and :meth:`step` raise
        :class:`WallClockExceeded` once the deadline passes, checked
        every ``_WALL_CHECK_EVERY`` events so the guarded loop stays
        within noise of the unguarded one.  It never alters event order
        or timestamps, so a run that finishes under its deadline is
        bit-identical to an unguarded run.
        """
        self._wall_deadline = deadline

    def _check_wall_deadline(self) -> None:
        if perf_counter() > self._wall_deadline:
            raise WallClockExceeded(
                f"wall-clock deadline exceeded at t={self.now} "
                f"({self._sequence} events dispatched)")

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[Any], None],
                 value: Any = None) -> None:
        """Run ``callback(value)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._sequence += 1
        when = self.now + delay
        cohort = self._cohorts.get(when)
        if cohort is None:
            self._cohorts[when] = [(callback, value)]
            times = self._times
            _heappush(times, when)
            self._cohorts_created += 1
            if len(times) > self._peak_spill:
                self._peak_spill = len(times)
        else:
            cohort.append((callback, value))

    def schedule_at(self, when: float, callback: Callable[[Any], None],
                    value: Any = None) -> None:
        """Run ``callback(value)`` at absolute time ``when``.

        Equivalent to :meth:`schedule` with ``delay = when - now`` but
        free of the float round-trip, so a caller can hit an exact
        timestamp computed elsewhere (the link fast path relies on this
        to keep delivery times bit-identical to the two-event model).
        """
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when}; clock already at {self.now}")
        self._sequence += 1
        cohort = self._cohorts.get(when)
        if cohort is None:
            self._cohorts[when] = [(callback, value)]
            times = self._times
            _heappush(times, when)
            self._cohorts_created += 1
            if len(times) > self._peak_spill:
                self._peak_spill = len(times)
        else:
            cohort.append((callback, value))

    def call_later(self, delay: float, callback: Callable[[Any], None],
                   value: Any = None) -> TimerHandle:
        """Like :meth:`schedule`, returning a cancellable handle.

        The timer occupies the same cohort slot a plain event would —
        same sequence number, same tie-breaking — so arming it is
        observably identical to :meth:`schedule` until ``cancel()``.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        when = self.now + delay
        self._sequence += 1
        self._timers_created += 1
        handle = TimerHandle((callback, value))
        handle.when = when
        handle._sim = self
        cohort = self._cohorts.get(when)
        if cohort is None:
            self._cohorts[when] = [handle]
            times = self._times
            _heappush(times, when)
            self._cohorts_created += 1
            if len(times) > self._peak_spill:
                self._peak_spill = len(times)
        else:
            cohort.append(handle)
        return handle

    def call_at(self, when: float, callback: Callable[[Any], None],
                value: Any = None) -> TimerHandle:
        """Like :meth:`schedule_at`, returning a cancellable handle."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when}; clock already at {self.now}")
        self._sequence += 1
        self._timers_created += 1
        handle = TimerHandle((callback, value))
        handle.when = when
        handle._sim = self
        cohort = self._cohorts.get(when)
        if cohort is None:
            self._cohorts[when] = [handle]
            times = self._times
            _heappush(times, when)
            self._cohorts_created += 1
            if len(times) > self._peak_spill:
                self._peak_spill = len(times)
        else:
            cohort.append(handle)
        return handle

    def schedule_event(self, delay: float, event: Event, value: Any = None
                       ) -> None:
        """Trigger ``event`` (succeed) after ``delay`` seconds."""
        self.schedule(delay, self._trigger_event, (event, value))

    @staticmethod
    def _trigger_event(pair: Tuple[Event, Any]) -> None:
        event, value = pair
        if not event.triggered:
            event.succeed(value)

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute the next pending callback, advancing the clock.

        Shares the dispatch state with :meth:`run` / :meth:`run_until`
        (a stopped run can be continued one event at a time and vice
        versa), honours the wall-clock deadline, and skips lazily
        cancelled timers — one *live* callback runs per call.  Raises
        :class:`IndexError` when nothing is pending.
        """
        if self._wall_deadline is not None:
            self._wall_countdown -= 1
            if self._wall_countdown <= 0:
                self._wall_countdown = _WALL_CHECK_EVERY
                self._check_wall_deadline()
        ready = self._ready
        i = self._ready_i
        try:
            while True:
                if i < len(ready):
                    callback, value = ready[i]
                    i += 1
                    if callback is None:
                        continue             # lazily cancelled timer
                    callback(value)
                    return
                when = _heappop(self._times)   # IndexError when empty
                self.now = when
                ready = self._cohorts.pop(when)
                i = 0
                self._cohorts_drained += 1
        finally:
            self._ready = ready
            self._ready_i = i

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none.

        A lazily cancelled timer still counts until its timestamp is
        reached (it advances the clock like the tombstone dispatch it
        replaces), so ``peek`` may report a cancelled entry's time.
        """
        if self._ready_i < len(self._ready):
            return self.now
        return self._times[0] if self._times else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains, or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event falls on it, so back-to-back ``run`` calls see a
        monotonic clock.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self.now}")
        # The dispatch loop drains one same-timestamp cohort per outer
        # iteration: one heap pop and one clock assignment amortize over
        # every event in the cohort, and the inner loop is index/unpack/
        # call with no comparisons.  The wall-deadline guard gets its own
        # copy of the loop so the common (unguarded) path pays nothing.
        cohorts = self._cohorts
        times = self._times
        pop = _heappop
        ready = self._ready
        i = self._ready_i
        try:
            if self._wall_deadline is None:
                while True:
                    n = len(ready)
                    while i < n:
                        callback, value = ready[i]
                        i += 1
                        if callback is not None:
                            callback(value)
                    if not times:
                        break
                    when = times[0]
                    if until is not None and when > until:
                        break
                    pop(times)
                    self.now = when
                    ready = cohorts.pop(when)
                    i = 0
                    self._cohorts_drained += 1
            else:
                countdown = self._wall_countdown
                while True:
                    n = len(ready)
                    while i < n:
                        callback, value = ready[i]
                        i += 1
                        if callback is not None:
                            callback(value)
                        countdown -= 1
                        if countdown == 0:
                            countdown = _WALL_CHECK_EVERY
                            self._wall_countdown = countdown
                            self._check_wall_deadline()
                    if not times:
                        break
                    when = times[0]
                    if until is not None and when > until:
                        break
                    pop(times)
                    self.now = when
                    ready = cohorts.pop(when)
                    i = 0
                    self._cohorts_drained += 1
                self._wall_countdown = countdown
        finally:
            self._ready = ready
            self._ready_i = i
        if until is not None:
            self.now = max(self.now, until)

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Stops *immediately* when the event triggers — same-timestamp
        events scheduled after it stay pending, exactly as with the
        single-heap dispatch loop.  Raises :class:`SimulationError` if
        the schedule drains (or ``limit`` is hit) before the event
        triggers, and :class:`EventFailed` if the event fails.
        """
        cohorts = self._cohorts
        times = self._times
        pop = _heappop
        deadline = self._wall_deadline
        countdown = self._wall_countdown
        ready = self._ready
        i = self._ready_i
        try:
            while not event._triggered:
                if i < len(ready):
                    callback, value = ready[i]
                    i += 1
                    if callback is None:
                        continue
                    callback(value)
                    if deadline is not None:
                        countdown -= 1
                        if countdown == 0:
                            countdown = _WALL_CHECK_EVERY
                            self._check_wall_deadline()
                    continue
                if not times:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)")
                when = times[0]
                if limit is not None and when > limit:
                    raise SimulationError(
                        f"awaited event did not trigger before t={limit}")
                pop(times)
                self.now = when
                ready = cohorts.pop(when)
                i = 0
                self._cohorts_drained += 1
        finally:
            self._ready = ready
            self._ready_i = i
            if deadline is not None:
                self._wall_countdown = countdown
        if not event.ok:
            raise EventFailed(event.value)
        return event.value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def scheduler_stats(self) -> Dict[str, float]:
        """Counters describing how the tiered scheduler was exercised.

        Cheap to maintain (touched per cohort / per timer, not per
        event) and cheap to read; meant for the profiling CLI and perf
        forensics, not for simulation logic.
        """
        events = self._sequence
        created = self._cohorts_created
        timers = self._timers_created
        return {
            "events_scheduled": events,
            "cohorts_created": created,
            "cohorts_drained": self._cohorts_drained,
            "avg_cohort_size": events / created if created else 0.0,
            # Fraction of schedules that had to touch the spill heap
            # (opened a new timestamp) rather than joining a cohort.
            "spill_rate": created / events if events else 0.0,
            "peak_spill_depth": self._peak_spill,
            "timers_created": timers,
            "timers_cancelled": self._timers_cancelled,
            "cancelled_timer_ratio": (self._timers_cancelled / timers
                                      if timers else 0.0),
        }
