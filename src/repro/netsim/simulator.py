"""The discrete-event simulator core.

:class:`Simulator` owns the clock and the pending-event heap.
:class:`Process` wraps a generator so that ``yield event`` suspends the
process until the event triggers.  This gives application code a
blocking, thread-like style while the whole system remains
deterministic and single-threaded.

Example
-------
>>> sim = Simulator(seed=1)
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("b", 2.0))
>>> _ = sim.process(worker("a", 1.0))
>>> sim.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

import heapq
import random
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs.tracer import TRACE

from .events import AllOf, AnyOf, Event, EventFailed, Interrupt, Timeout

__all__ = ["Simulator", "Process", "SimulationError", "WallClockExceeded",
           "set_global_wall_deadline", "global_wall_deadline"]

_heappush = heapq.heappush
_heappop = heapq.heappop

# Every _WALL_CHECK_EVERY dispatched events a deadline-guarded loop
# consults perf_counter(); coarse enough to stay off the hot path,
# fine enough that a runaway run is cancelled within milliseconds.
_WALL_CHECK_EVERY = 2048

# Process-wide wall deadline (absolute perf_counter() time).  Sweep
# workers install it *before* the run constructs its Simulator; every
# simulator built while it is set inherits it, so the guard reaches
# simulators created arbitrarily deep inside experiment code.
_GLOBAL_WALL_DEADLINE: Optional[float] = None


class SimulationError(RuntimeError):
    """Raised for fatal simulator misuse (e.g. running a finished sim)."""


class WallClockExceeded(SimulationError):
    """A run overran its wall-clock deadline (sweep timeout guard)."""


def set_global_wall_deadline(deadline: Optional[float]) -> None:
    """Install (or clear, with ``None``) the process-wide wall deadline.

    ``deadline`` is an absolute :func:`time.perf_counter` timestamp.
    Only simulators constructed while the deadline is set are guarded —
    the disabled path of :meth:`Simulator.run` stays byte-for-byte the
    pre-guard dispatch loop.
    """
    global _GLOBAL_WALL_DEADLINE
    _GLOBAL_WALL_DEADLINE = deadline


def global_wall_deadline() -> Optional[float]:
    return _GLOBAL_WALL_DEADLINE


class Process(Event):
    """A running generator; itself an event that triggers on completion.

    The wrapped generator may ``yield`` any :class:`Event`.  When the event
    succeeds, the generator resumes with the event's value; when it fails,
    :class:`EventFailed` is thrown into the generator.  The process event
    succeeds with the generator's return value.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Start the process at the current simulation time, but via the
        # event queue so creation order is preserved deterministically.
        sim.schedule(0.0, self._resume, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self.sim.schedule(0.0, self._throw, Interrupt(cause))

    def _resume(self, send_value: Any) -> None:
        # The generator is driven directly (no per-step closure): this
        # method runs once per process step, on the simulator's hottest
        # path.
        if self.triggered:
            return
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process as failed.
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as cause:
            self.fail(cause)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._event_done)

    def _event_done(self, event: Event) -> None:
        if self.triggered or self._waiting_on is not event:
            return
        self._waiting_on = None
        if event.ok:
            self._resume(event.value)
        else:
            self._throw(EventFailed(event.value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Deterministic discrete-event simulator with a seeded RNG.

    Time is a float in **seconds**.  Ties in the event heap break on a
    monotonically increasing sequence number, so same-time events run in
    scheduling order.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable, Any]] = []
        self._sequence = 0
        self.rng = random.Random(seed)
        self._finished = False
        self._wall_deadline = _GLOBAL_WALL_DEADLINE
        if TRACE.enabled:
            # Each simulator is its own trace epoch, so sequential runs
            # in one process never interleave on the exported timeline.
            TRACE.begin_epoch()

    def set_wall_deadline(self, deadline: Optional[float]) -> None:
        """Cancel this simulator's run loops past an absolute
        :func:`time.perf_counter` timestamp (``None`` disables).

        The guard makes a runaway run *cancellable*: :meth:`run` and
        :meth:`run_until` raise :class:`WallClockExceeded` once the
        deadline passes, checked every ``_WALL_CHECK_EVERY`` events so
        the guarded loop stays within noise of the unguarded one.  It
        never alters event order or timestamps, so a run that finishes
        under its deadline is bit-identical to an unguarded run.
        """
        self._wall_deadline = deadline

    def _check_wall_deadline(self) -> None:
        if perf_counter() > self._wall_deadline:
            raise WallClockExceeded(
                f"wall-clock deadline exceeded at t={self.now} "
                f"({self._sequence} events dispatched)")

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[Any], None],
                 value: Any = None) -> None:
        """Run ``callback(value)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._sequence = seq = self._sequence + 1
        _heappush(self._heap, (self.now + delay, seq, callback, value))

    def schedule_at(self, when: float, callback: Callable[[Any], None],
                    value: Any = None) -> None:
        """Run ``callback(value)`` at absolute time ``when``.

        Equivalent to :meth:`schedule` with ``delay = when - now`` but
        free of the float round-trip, so a caller can hit an exact
        timestamp computed elsewhere (the link fast path relies on this
        to keep delivery times bit-identical to the two-event model).
        """
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when}; clock already at {self.now}")
        self._sequence = seq = self._sequence + 1
        _heappush(self._heap, (when, seq, callback, value))

    def schedule_event(self, delay: float, event: Event, value: Any = None
                       ) -> None:
        """Trigger ``event`` (succeed) after ``delay`` seconds."""
        self.schedule(delay, self._trigger_event, (event, value))

    @staticmethod
    def _trigger_event(pair: Tuple[Event, Any]) -> None:
        event, value = pair
        if not event.triggered:
            event.succeed(value)

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute the next pending callback, advancing the clock."""
        when, _seq, callback, value = _heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self.now = when
        callback(value)

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains, or until the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if no event falls on it, so back-to-back ``run`` calls see a
        monotonic clock.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock already at {self.now}")
        # The dispatch loop is inlined (no self.step() call) — it executes
        # once per event and dominates every experiment's wall time.  The
        # wall-deadline guard gets its own copy of the loop so the common
        # (unguarded) path pays nothing for it.
        heap = self._heap
        pop = _heappop
        if self._wall_deadline is None:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                when, _seq, callback, value = pop(heap)
                self.now = when
                callback(value)
        else:
            countdown = _WALL_CHECK_EVERY
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                when, _seq, callback, value = pop(heap)
                self.now = when
                callback(value)
                countdown -= 1
                if countdown == 0:
                    countdown = _WALL_CHECK_EVERY
                    self._check_wall_deadline()
        if until is not None:
            self.now = max(self.now, until)

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; returns its value.

        Raises :class:`SimulationError` if the heap drains (or ``limit`` is
        hit) before the event triggers, and :class:`EventFailed` if the
        event fails.
        """
        heap = self._heap
        pop = _heappop
        deadline = self._wall_deadline
        countdown = _WALL_CHECK_EVERY
        while not event._triggered:
            if not heap:
                raise SimulationError(
                    "simulation ran out of events before the awaited event "
                    "triggered (deadlock?)")
            if limit is not None and heap[0][0] > limit:
                raise SimulationError(
                    f"awaited event did not trigger before t={limit}")
            when, _seq, callback, value = pop(heap)
            self.now = when
            callback(value)
            if deadline is not None:
                countdown -= 1
                if countdown == 0:
                    countdown = _WALL_CHECK_EVERY
                    self._check_wall_deadline()
        if not event.ok:
            raise EventFailed(event.value)
        return event.value
