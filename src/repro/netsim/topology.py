"""Topology builders: wire nodes together with duplex links.

The builders are agnostic to node types — any :class:`~repro.netsim.node.Node`
subclass works — so the same functions build NetRPC dataplanes and
baseline dataplanes.  The paper's testbed is a dumbbell: two switches,
four hosts on each side (§6.1); the rack-scale builders (`multi_rack`,
`fat_tree`) grow that shape to the fabrics the shard runner
(:mod:`repro.shard`) partitions across cores.

Each rack-scale builder has a pure *structure* companion
(`multi_rack_structure`, `fat_tree_structure`) that returns only names,
roles, rack labels, and edges — the shard partitioner consumes the
structure without constructing live nodes, so worker processes can
rebuild exactly their own shard.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .calibration import Calibration, DEFAULT_CALIBRATION
from .link import Link, LossModel, duplex_link
from .node import Node
from .simulator import Simulator

__all__ = ["Topology", "star", "dumbbell", "chain",
           "multi_rack_structure", "fat_tree_structure",
           "multi_rack", "fat_tree"]


class Topology:
    """A set of nodes plus a registry of the directed links between them.

    ``rack_of`` maps node names to rack labels for builders that have a
    rack notion (`multi_rack`, `fat_tree`); nodes of rack-less builders
    simply do not appear in it.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.rack_of: Dict[str, str] = {}

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def connect(self, a: Node, b: Node, bandwidth_bps: float,
                delay_s: float, loss: Optional[LossModel] = None,
                **kwargs) -> Tuple[Link, Link]:
        """Create a duplex link between ``a`` and ``b`` and register it."""
        for node in (a, b):
            if node.name not in self.nodes:
                self.add_node(node)
        fwd, bwd = duplex_link(self.sim, a, b, bandwidth_bps, delay_s,
                               loss=loss, **kwargs)
        a.attach_egress(fwd)
        b.attach_egress(bwd)
        self.links[(a.name, b.name)] = fwd
        self.links[(b.name, a.name)] = bwd
        return fwd, bwd

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}") from None

    def node(self, name: str) -> Node:
        return self.nodes[name]


def star(sim: Simulator, center: Node, leaves: Sequence[Node],
         cal: Calibration = DEFAULT_CALIBRATION,
         loss: Optional[LossModel] = None) -> Topology:
    """All leaves attach to a single center (one-switch rack)."""
    topo = Topology(sim)
    topo.add_node(center)
    for leaf in leaves:
        topo.connect(leaf, center, cal.link_bandwidth_bps,
                     cal.host_link_delay_s, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo


def dumbbell(sim: Simulator, left_switch: Node, right_switch: Node,
             left_hosts: Sequence[Node], right_hosts: Sequence[Node],
             cal: Calibration = DEFAULT_CALIBRATION,
             loss: Optional[LossModel] = None) -> Topology:
    """The paper's testbed: two switches, hosts hanging off each (§6.1)."""
    topo = Topology(sim)
    topo.add_node(left_switch)
    topo.add_node(right_switch)
    topo.connect(left_switch, right_switch, cal.link_bandwidth_bps,
                 cal.switch_link_delay_s, loss=loss,
                 queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                 ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    for host in left_hosts:
        topo.connect(host, left_switch, cal.link_bandwidth_bps,
                     cal.host_link_delay_s, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    for host in right_hosts:
        topo.connect(host, right_switch, cal.link_bandwidth_bps,
                     cal.host_link_delay_s, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo


def chain(sim: Simulator, nodes: Sequence[Node],
          cal: Calibration = DEFAULT_CALIBRATION,
          loss: Optional[LossModel] = None) -> Topology:
    """Connect nodes in a line (used for the two-switch pipeline, §6.6)."""
    if len(nodes) < 2:
        raise ValueError("a chain needs at least two nodes")
    topo = Topology(sim)
    for node in nodes:
        topo.add_node(node)
    for a, b in zip(nodes, nodes[1:]):
        topo.connect(a, b, cal.link_bandwidth_bps, cal.switch_link_delay_s,
                     loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo


# ---------------------------------------------------------------------------
# rack-scale structures
# ---------------------------------------------------------------------------
# A structure is ``(nodes, edges)``:
#   nodes: list of (name, role, rack) with role in {"host", "switch"}
#   edges: list of (a, b, tier) with tier in {"host", "fabric"} — the
#          tier selects host-link vs switch-link calibration parameters.
# Both lists are emitted in a fixed deterministic order (hosts of rack 0,
# then its switch, then rack 1, ... then the spine/core tier), so every
# consumer — live builders, the shard partitioner, worker processes —
# sees identical orderings.

Structure = Tuple[List[Tuple[str, str, str]], List[Tuple[str, str, str]]]


def multi_rack_structure(n_racks: int, hosts_per_rack: int,
                         n_spines: int = 1) -> Structure:
    """Racks of hosts behind a ToR each, every ToR uplinked to every
    spine (a leaf-spine fabric).  Rack labels: ``rack0``.. for the ToR
    and its hosts, ``spine`` for the spine tier."""
    if n_racks < 1 or hosts_per_rack < 1 or n_spines < 1:
        raise ValueError("need >= 1 rack, host per rack, and spine")
    nodes: List[Tuple[str, str, str]] = []
    edges: List[Tuple[str, str, str]] = []
    spines = [f"spine{s}" for s in range(n_spines)]
    for r in range(n_racks):
        rack = f"rack{r}"
        tor = f"tor{r}"
        for h in range(hosts_per_rack):
            host = f"r{r}h{h}"
            nodes.append((host, "host", rack))
            edges.append((host, tor, "host"))
        nodes.append((tor, "switch", rack))
        for spine in spines:
            edges.append((tor, spine, "fabric"))
    for spine in spines:
        nodes.append((spine, "switch", "spine"))
    return nodes, edges


def fat_tree_structure(k: int) -> Structure:
    """Classic k-ary fat-tree: k pods of k/2 edge + k/2 aggregation
    switches, (k/2)^2 cores, k/2 hosts per edge switch.  Rack labels:
    ``pod0``.. for everything inside a pod, ``core`` for the core tier.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    nodes: List[Tuple[str, str, str]] = []
    edges: List[Tuple[str, str, str]] = []
    for p in range(k):
        rack = f"pod{p}"
        for e in range(half):
            edge_sw = f"p{p}e{e}"
            for h in range(half):
                host = f"p{p}e{e}h{h}"
                nodes.append((host, "host", rack))
                edges.append((host, edge_sw, "host"))
            nodes.append((edge_sw, "switch", rack))
        for a in range(half):
            agg = f"p{p}a{a}"
            nodes.append((agg, "switch", rack))
            for e in range(half):
                edges.append((f"p{p}e{e}", agg, "fabric"))
    for c in range(half * half):
        core = f"core{c}"
        nodes.append((core, "switch", "core"))
    # Aggregation switch a of every pod connects to cores
    # [a*k/2, (a+1)*k/2) — the standard fat-tree core wiring.
    for p in range(k):
        for a in range(half):
            for c in range(a * half, (a + 1) * half):
                edges.append((f"p{p}a{a}", f"core{c}", "fabric"))
    return nodes, edges


def _build_structure(sim: Simulator, structure: Structure,
                     host_factory: Callable[[Simulator, str], Node],
                     switch_factory: Callable[[Simulator, str], Node],
                     cal: Calibration,
                     loss: Optional[LossModel]) -> Topology:
    nodes, edges = structure
    topo = Topology(sim)
    for name, role, rack in nodes:
        factory = host_factory if role == "host" else switch_factory
        topo.add_node(factory(sim, name))
        topo.rack_of[name] = rack
    for a, b, tier in edges:
        delay = (cal.host_link_delay_s if tier == "host"
                 else cal.switch_link_delay_s)
        topo.connect(topo.nodes[a], topo.nodes[b],
                     cal.link_bandwidth_bps, delay, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo


def multi_rack(sim: Simulator, n_racks: int, hosts_per_rack: int,
               host_factory: Callable[[Simulator, str], Node],
               switch_factory: Callable[[Simulator, str], Node],
               n_spines: int = 1,
               cal: Calibration = DEFAULT_CALIBRATION,
               loss: Optional[LossModel] = None) -> Topology:
    """Build a live leaf-spine fabric (see :func:`multi_rack_structure`)."""
    return _build_structure(
        sim, multi_rack_structure(n_racks, hosts_per_rack, n_spines),
        host_factory, switch_factory, cal, loss)


def fat_tree(sim: Simulator, k: int,
             host_factory: Callable[[Simulator, str], Node],
             switch_factory: Callable[[Simulator, str], Node],
             cal: Calibration = DEFAULT_CALIBRATION,
             loss: Optional[LossModel] = None) -> Topology:
    """Build a live k-ary fat-tree (see :func:`fat_tree_structure`)."""
    return _build_structure(sim, fat_tree_structure(k), host_factory,
                            switch_factory, cal, loss)
