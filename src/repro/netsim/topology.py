"""Topology builders: wire nodes together with duplex links.

The builders are agnostic to node types — any :class:`~repro.netsim.node.Node`
subclass works — so the same functions build NetRPC dataplanes and
baseline dataplanes.  The paper's testbed is a dumbbell: two switches,
four hosts on each side (§6.1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .calibration import Calibration, DEFAULT_CALIBRATION
from .link import Link, LossModel, duplex_link
from .node import Node
from .simulator import Simulator

__all__ = ["Topology", "star", "dumbbell", "chain"]


class Topology:
    """A set of nodes plus a registry of the directed links between them."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: Dict[Tuple[str, str], Link] = {}

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def connect(self, a: Node, b: Node, bandwidth_bps: float,
                delay_s: float, loss: Optional[LossModel] = None,
                **kwargs) -> Tuple[Link, Link]:
        """Create a duplex link between ``a`` and ``b`` and register it."""
        for node in (a, b):
            if node.name not in self.nodes:
                self.add_node(node)
        fwd, bwd = duplex_link(self.sim, a, b, bandwidth_bps, delay_s,
                               loss=loss, **kwargs)
        a.attach_egress(fwd)
        b.attach_egress(bwd)
        self.links[(a.name, b.name)] = fwd
        self.links[(b.name, a.name)] = bwd
        return fwd, bwd

    def link(self, src: str, dst: str) -> Link:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src} -> {dst}") from None

    def node(self, name: str) -> Node:
        return self.nodes[name]


def star(sim: Simulator, center: Node, leaves: Sequence[Node],
         cal: Calibration = DEFAULT_CALIBRATION,
         loss: Optional[LossModel] = None) -> Topology:
    """All leaves attach to a single center (one-switch rack)."""
    topo = Topology(sim)
    topo.add_node(center)
    for leaf in leaves:
        topo.connect(leaf, center, cal.link_bandwidth_bps,
                     cal.host_link_delay_s, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo


def dumbbell(sim: Simulator, left_switch: Node, right_switch: Node,
             left_hosts: Sequence[Node], right_hosts: Sequence[Node],
             cal: Calibration = DEFAULT_CALIBRATION,
             loss: Optional[LossModel] = None) -> Topology:
    """The paper's testbed: two switches, hosts hanging off each (§6.1)."""
    topo = Topology(sim)
    topo.add_node(left_switch)
    topo.add_node(right_switch)
    topo.connect(left_switch, right_switch, cal.link_bandwidth_bps,
                 cal.switch_link_delay_s, loss=loss,
                 queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                 ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    for host in left_hosts:
        topo.connect(host, left_switch, cal.link_bandwidth_bps,
                     cal.host_link_delay_s, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    for host in right_hosts:
        topo.connect(host, right_switch, cal.link_bandwidth_bps,
                     cal.host_link_delay_s, loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo


def chain(sim: Simulator, nodes: Sequence[Node],
          cal: Calibration = DEFAULT_CALIBRATION,
          loss: Optional[LossModel] = None) -> Topology:
    """Connect nodes in a line (used for the two-switch pipeline, §6.6)."""
    if len(nodes) < 2:
        raise ValueError("a chain needs at least two nodes")
    topo = Topology(sim)
    for node in nodes:
        topo.add_node(node)
    for a, b in zip(nodes, nodes[1:]):
        topo.connect(a, b, cal.link_bandwidth_bps, cal.switch_link_delay_s,
                     loss=loss,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    return topo
