"""Deterministic, seeded fault injection for adversarial testing.

The paper's reliability mechanisms (§5.1 flip-bit idempotent
retransmission, §5.2.2 two-level timeouts, controller-driven failover)
are only meaningful under an adversarial network.  This module supplies
the adversary: per-link fault models that compose with the existing
:class:`~repro.netsim.link.LossModel` hook, node-level faults (switch
reboot, host pause), a :class:`ChaosSchedule` driver that injects a
scripted or randomly seeded fault sequence into any deployment, and an
:class:`InvariantChecker` that asserts the end-to-end contract: a round
either produces a result bit-identical to the no-fault run or reports
an explicit failure — never a silent wrong answer.

Every random draw made on the data path comes from the simulator's own
RNG (or a pinned per-link stream — see :func:`fault_rng`), so a faulted
run is exactly as reproducible as a lossy one: same seed, same
schedule, same bits.  Schedule *generation* uses a separate
``random.Random(seed)`` so the schedule itself is a pure function of
its seed and the topology, independent of simulation state — that is
what :meth:`ChaosSchedule.fingerprint` pins across PRs.

A link fault model is a :class:`FaultModel`: instead of the boolean
``drops`` decision it *plans* the delivery of each packet as a list of
``(extra_delay, packet)`` tuples — the empty list is a drop, two tuples
are a duplicate, a positive extra delay is reordering.  The
:class:`~repro.netsim.link.Link` legacy (lossy) path consults ``plan``
when present, so installing any fault model automatically moves the
link off the fused lossless fast path, exactly like a loss model does.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .link import Link, LossModel, NoLoss

__all__ = [
    "FaultModel",
    "Reorder",
    "Duplicate",
    "Corrupt",
    "LinkFlap",
    "CompositeFault",
    "LinkFault",
    "SwitchReboot",
    "HostPause",
    "ChaosSchedule",
    "InvariantChecker",
]

_INF = float("inf")


# ---------------------------------------------------------------------------
# link-level fault models
# ---------------------------------------------------------------------------
class FaultModel(LossModel):
    """A loss model that can also delay, duplicate, or mutate packets.

    Subclasses implement :meth:`apply`, which maps one packet to the
    list of ``(extra_delay_s, packet)`` deliveries it becomes.  Faults
    are active only inside the ``[start, until)`` window; outside it the
    packet passes through untouched and — crucially for determinism —
    no RNG draw is made.
    """

    def __init__(self, start: float = 0.0, until: float = _INF):
        self.start = start
        self.until = until

    def active(self, now: float) -> bool:
        return self.start <= now < self.until

    def apply(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        raise NotImplementedError

    def plan(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        """Deliveries for ``packet``: ``[]`` drops, two entries duplicate."""
        if not self.active(link.sim.now):
            return [(0.0, packet)]
        return self.apply(packet, link)

    # FaultModels ride the ``plan`` hook; ``drops`` is never consulted,
    # but keep the LossModel contract callable for defensive callers.
    def drops(self, packet: Any, rng) -> bool:  # pragma: no cover
        return False


def fault_rng(link: Link):
    """The RNG a fault draw uses for ``link``.

    By default the simulator's stream.  A harness that needs draw
    sequences independent of global event interleaving (the sharded
    runner: one simulator per shard, but the single-core reference run
    interleaves all links through one stream) pins ``link.fault_rng``
    to a dedicated per-link ``random.Random`` instead.
    """
    rng = getattr(link, "fault_rng", None)
    return rng if rng is not None else link.sim.rng


class Reorder(FaultModel):
    """Adds up to ``jitter_s`` of extra propagation delay per packet.

    With independent per-packet jitter, a later-serialized packet can
    arrive before an earlier one — the reordering that exercises the
    transport's out-of-order ACK accounting and the switch's flip-bit
    retransmission check.  ``rate`` limits the fraction of packets that
    are jittered (1.0 = every packet).
    """

    def __init__(self, jitter_s: float, rate: float = 1.0,
                 start: float = 0.0, until: float = _INF):
        super().__init__(start, until)
        if jitter_s < 0:
            raise ValueError("jitter must be >= 0")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.jitter_s = jitter_s
        self.rate = rate

    def apply(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        rng = fault_rng(link)
        if self.rate < 1.0 and rng.random() >= self.rate:
            return [(0.0, packet)]
        link.stats.add("reordered_pkts")
        return [(rng.random() * self.jitter_s, packet)]


class Duplicate(FaultModel):
    """Delivers a fraction ``rate`` of packets twice.

    The duplicate is a :meth:`copy` when the packet supports it, so the
    two deliveries do not alias each other's in-place switch mutations —
    this is what makes the flip-bit retransmission filter (§5.1), not
    object identity, responsible for idempotence.  With the columnar
    payload (``KVBlock``), the copy's kv slots are duplicated as whole
    column buffers, so a fault schedule that duplicates every packet no
    longer dominates the run with per-pair object construction.
    """

    def __init__(self, rate: float, start: float = 0.0, until: float = _INF):
        super().__init__(start, until)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate

    def apply(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        if fault_rng(link).random() >= self.rate:
            return [(0.0, packet)]
        link.stats.add("dup_pkts")
        dup = packet.copy() if hasattr(packet, "copy") else packet
        return [(0.0, packet), (0.0, dup)]


class Corrupt(FaultModel):
    """Flips bits in a fraction ``rate`` of packets.

    Two modes, both ending in a retransmission rather than a wrong
    answer:

    - ``"fcs"`` (default): the flip lands anywhere in the frame and the
      Ethernet FCS catches it — the frame is dropped on the wire.  This
      is the overwhelmingly common hardware outcome.
    - ``"gaid"``: the flip lands in the GAID header field *after* the
      FCS was recomputed (a soft error inside a store-and-forward hop).
      The packet is delivered with a corrupted GAID, so the switch
      admission lookup misses and the unadmitted path forwards it
      untouched; receivers ignore the unknown GAID and the sender's
      transport retransmits.  This exercises the admission-miss path
      without ever feeding corrupt data to a primitive.
    """

    def __init__(self, rate: float, mode: str = "fcs",
                 start: float = 0.0, until: float = _INF):
        super().__init__(start, until)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if mode not in ("fcs", "gaid"):
            raise ValueError(f"unknown corrupt mode {mode!r}")
        self.rate = rate
        self.mode = mode

    GAID_FLIP_BIT = 1 << 20   # far above any allocated GAID

    def apply(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        if fault_rng(link).random() >= self.rate:
            return [(0.0, packet)]
        link.stats.add("corrupt_pkts")
        if self.mode == "fcs" or not hasattr(packet, "gaid"):
            link.stats.add("wire_drops")
            return []
        # Corrupt a *copy*: the original Packet object is also the
        # sender's pending-table entry, which must stay intact for the
        # retransmission to carry the true GAID.
        mangled = packet.copy() if hasattr(packet, "copy") else packet
        mangled.gaid ^= self.GAID_FLIP_BIT
        return [(0.0, mangled)]


class LinkFlap(FaultModel):
    """The link is down (drops everything) in ``[down_at, up_at)``."""

    def __init__(self, down_at: float, up_at: float):
        if up_at < down_at:
            raise ValueError("up_at must be >= down_at")
        super().__init__(down_at, up_at)

    def apply(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        link.stats.add("flap_drops")
        link.stats.add("wire_drops")
        return []


class CompositeFault(FaultModel):
    """Chains fault models (and plain loss models) on one link.

    Each stage's output deliveries feed the next stage; extra delays
    accumulate.  A plain :class:`LossModel` stage is adapted through its
    ``drops`` decision.  Stage order is the composition order, fixed at
    construction, so the RNG draw sequence is deterministic.
    """

    def __init__(self, models: Sequence[LossModel]):
        super().__init__()
        self.models = list(models)

    def plan(self, packet: Any, link: Link) -> List[Tuple[float, Any]]:
        deliveries: List[Tuple[float, Any]] = [(0.0, packet)]
        for model in self.models:
            nxt: List[Tuple[float, Any]] = []
            if isinstance(model, FaultModel):
                for delay, pkt in deliveries:
                    for extra, out in model.plan(pkt, link):
                        nxt.append((delay + extra, out))
            else:
                for delay, pkt in deliveries:
                    if model.drops(pkt, fault_rng(link)):
                        link.stats.add("wire_drops")
                    else:
                        nxt.append((delay, pkt))
            deliveries = nxt
            if not deliveries:
                break
        return deliveries


# ---------------------------------------------------------------------------
# schedule event specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFault:
    """One timed fault window on one directed link."""

    src: str
    dst: str
    kind: str                 # "reorder" | "duplicate" | "corrupt" | "flap"
    at: float
    duration_s: float
    rate: float = 1.0
    jitter_s: float = 0.0

    _KINDS = ("reorder", "duplicate", "corrupt", "flap")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown link fault kind {self.kind!r}")

    def build(self) -> FaultModel:
        until = self.at + self.duration_s
        if self.kind == "reorder":
            return Reorder(self.jitter_s, rate=self.rate,
                           start=self.at, until=until)
        if self.kind == "duplicate":
            return Duplicate(self.rate, start=self.at, until=until)
        if self.kind == "corrupt":
            return Corrupt(self.rate, mode="gaid",
                           start=self.at, until=until)
        return LinkFlap(self.at, until)

    def canonical(self) -> str:
        return (f"link {self.src}->{self.dst} {self.kind} at={self.at!r} "
                f"dur={self.duration_s!r} rate={self.rate!r} "
                f"jitter={self.jitter_s!r}")


@dataclass(frozen=True)
class SwitchReboot:
    """Power-cycle one switch at ``at``: registers, flow state, and
    admission table are lost; the controller re-installs after
    ``failover_delay_s`` (None = the deployment's control RTT)."""

    switch: str
    at: float
    failover_delay_s: Optional[float] = None

    def canonical(self) -> str:
        return (f"reboot {self.switch} at={self.at!r} "
                f"failover={self.failover_delay_s!r}")


@dataclass(frozen=True)
class HostPause:
    """Freeze one host's packet reception for ``duration_s`` (a GC or
    scheduler stall); buffered packets flush in order on resume."""

    host: str
    at: float
    duration_s: float

    def canonical(self) -> str:
        return (f"pause {self.host} at={self.at!r} "
                f"dur={self.duration_s!r}")


# ---------------------------------------------------------------------------
# chaos schedule driver
# ---------------------------------------------------------------------------
class ChaosSchedule:
    """A timed sequence of faults injectable into any deployment.

    Build one explicitly from event specs, or draw one with
    :meth:`random`.  :meth:`install` arms the schedule on a deployment:
    link faults become (composited) loss models on the affected links,
    switch reboots and host pauses become scheduled simulator callbacks.
    Install before starting traffic — loss models must not be swapped
    mid-serialization.
    """

    def __init__(self, events: Iterable[Any]):
        self.events = list(events)

    # -- generation -----------------------------------------------------
    @classmethod
    def random(cls, seed: int, deployment: Any, t0: float, t1: float,
               n_link_faults: int = 4, n_switch_reboots: int = 0,
               n_host_pauses: int = 0,
               kinds: Sequence[str] = ("reorder", "duplicate",
                                       "corrupt", "flap")) -> "ChaosSchedule":
        """A schedule that is a pure function of (seed, topology names).

        Uses its own ``random.Random(seed)`` — never the simulator RNG —
        and sorts link names, so the same seed over the same topology
        yields the same schedule regardless of construction order or
        simulation state.  That property is pinned by the golden
        fingerprint test.
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        rng = random.Random(seed)
        span = t1 - t0
        link_keys = sorted(deployment.topology.links.keys())
        switch_names = sorted(sw.name for sw in deployment.switches)
        host_names = sorted(h.name for h in
                            list(deployment.clients) +
                            list(deployment.servers))
        events: List[Any] = []
        for _ in range(n_link_faults):
            src, dst = link_keys[rng.randrange(len(link_keys))]
            kind = kinds[rng.randrange(len(kinds))]
            at = t0 + rng.random() * span
            if kind == "flap":
                # A black-holed link heals well before the run's RTO
                # budget (MAX_ATTEMPTS) is exhausted.
                duration = span * (0.05 + 0.15 * rng.random())
            else:
                duration = span * (0.2 + 0.6 * rng.random())
            events.append(LinkFault(
                src=src, dst=dst, kind=kind, at=at, duration_s=duration,
                rate=0.05 + 0.25 * rng.random(),
                jitter_s=span * 0.1 * rng.random()))
        for _ in range(n_switch_reboots):
            events.append(SwitchReboot(
                switch=switch_names[rng.randrange(len(switch_names))],
                at=t0 + rng.random() * span))
        for _ in range(n_host_pauses):
            events.append(HostPause(
                host=host_names[rng.randrange(len(host_names))],
                at=t0 + rng.random() * span,
                duration_s=span * 0.2 * rng.random()))
        return cls(events)

    # -- identity -------------------------------------------------------
    def canonical(self) -> str:
        return "\n".join(event.canonical() for event in self.events)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical event list.

        Stable across processes and PRs: only names and ``repr``-exact
        floats go in, never object identities.
        """
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    # -- installation ---------------------------------------------------
    def install(self, deployment: Any,
                failover_delay_s: Optional[float] = None) -> None:
        """Arm every fault on ``deployment`` (idempotent per schedule).

        ``failover_delay_s`` is the default lag between a switch reboot
        and the controller's re-install (one control RTT if None);
        per-event overrides win.
        """
        sim = deployment.sim
        if failover_delay_s is None:
            failover_delay_s = deployment.cal.ctrl_rtt_s

        by_link: Dict[Tuple[str, str], List[LinkFault]] = {}
        for event in self.events:
            if isinstance(event, LinkFault):
                by_link.setdefault((event.src, event.dst), []).append(event)
        for key, specs in by_link.items():
            try:
                link = deployment.topology.links[key]
            except KeyError:
                raise KeyError(f"schedule names unknown link {key[0]}->"
                               f"{key[1]}") from None
            models: List[LossModel] = []
            if type(link.loss) is not NoLoss:
                models.append(link.loss)   # keep pre-existing loss
            models.extend(spec.build() for spec in specs)
            link.loss = CompositeFault(models)

        switches = {sw.name: sw for sw in deployment.switches}
        hosts = {h.name: h for h in
                 list(deployment.clients) + list(deployment.servers)}
        for event in self.events:
            if isinstance(event, SwitchReboot):
                switch = switches[event.switch]
                delay = (event.failover_delay_s
                         if event.failover_delay_s is not None
                         else failover_delay_s)
                sim.schedule_at(event.at, self._reboot,
                                (switch, deployment.controller, delay))
            elif isinstance(event, HostPause):
                host = hosts[event.host]
                sim.schedule_at(event.at, self._pause,
                                (host, event.duration_s))

    @staticmethod
    def _reboot(arg) -> None:
        switch, controller, delay = arg
        switch.reboot()
        switch.sim.schedule(delay, controller.handle_switch_reboot, switch)

    @staticmethod
    def _pause(arg) -> None:
        host, duration_s = arg
        host.pause(duration_s)


# ---------------------------------------------------------------------------
# invariant checking
# ---------------------------------------------------------------------------
class InvariantChecker:
    """Asserts the chaos contract over a deployment.

    Three invariant families (ISSUE tentpole):

    - **monotone simulator time**: ``sim.now`` never decreases, and no
      pending event is scheduled in the past;
    - **conservation of allocator slots**: live register regions plus
      freed regions plus the untouched bump gap is constant, and every
      switch's SRRT slot allocator agrees;
    - **end-of-round correctness** via :meth:`check_result` — a result
      is bit-identical to the expected value or the violation is
      recorded; the *caller* supplies the explicit-failure channel
      (a :class:`~repro.netsim.simulator.SimulationError` timeout).

    Violations accumulate in :attr:`violations`; tests assert the list
    is empty.  :meth:`register_residue` additionally exposes leftover
    register occupancy inside an app's regions (possible after a reboot
    interleaves with in-flight clears) so harnesses can scrub it between
    rounds — an explicit control-plane action, never a silent one.
    """

    def __init__(self, deployment: Any):
        self.deployment = deployment
        self.violations: List[str] = []
        sim = deployment.sim
        self._last_now = sim.now
        self._slot_high = self._slot_positions()
        self._pool_baseline = self._pool_total()

    # -- observation ----------------------------------------------------
    def observe(self) -> None:
        """Run every invariant check once, at the current instant."""
        sim = self.deployment.sim
        now = sim.now
        if now < self._last_now:
            self._violate(f"time ran backwards: {now!r} < "
                          f"{self._last_now!r}")
        self._last_now = now
        head = sim.peek()
        if head < now:
            self._violate(f"pending event in the past: {head!r} < {now!r}")

        slots = self._slot_positions()
        if len(set(slots)) > 1:
            self._violate(f"SRRT allocators diverged across switches: "
                          f"{slots}")
        if slots and min(slots) < max(self._slot_high):
            self._violate(f"SRRT allocator moved backwards: {slots} after "
                          f"{self._slot_high}")
        self._slot_high = slots

        total = self._pool_total()
        if total != self._pool_baseline:
            self._violate(f"register pool leaked: accounted {total} slots, "
                          f"expected {self._pool_baseline}")

        # Chain-fusion gating: a link carrying a fault/loss model must
        # run the two-event path (the injector draws at serialization
        # end), so it must never be fused and must hold no batch-fused
        # residue from before the fault was installed.
        topology = getattr(self.deployment, "topology", None)
        links = getattr(topology, "links", None) or {}
        for key, link in links.items():
            if type(link.loss) is not NoLoss:
                if link._fused:
                    self._violate(f"link {key}: fault model installed but "
                                  f"fused fast path still active")
                if link._virtual_starts:
                    self._violate(f"link {key}: fault model installed with "
                                  f"batch-fused packets still in flight")

    def check_result(self, label: str, expected: Any, got: Any) -> bool:
        """Bit-exact result comparison; a mismatch is a silent wrong
        answer (the one outcome the system must never produce)."""
        if got == expected:
            return True
        self._violate(f"{label}: silent wrong answer: got {got!r}, "
                      f"expected {expected!r}")
        return False

    def start(self, interval_s: float) -> None:
        """Observe periodically for the rest of the run."""
        sim = self.deployment.sim

        def _loop():
            while True:
                yield sim.timeout(interval_s)
                self.observe()

        sim.process(_loop(), name="invariant-checker")

    def raise_if_violated(self) -> None:
        if self.violations:
            raise AssertionError("invariants violated:\n" +
                                 "\n".join(self.violations))

    # -- register residue -----------------------------------------------
    def register_residue(self, config: Any) -> int:
        """Occupied registers inside ``config``'s regions right now."""
        count = 0
        for switch in self.deployment.switches:
            base = switch.phys_base
            for region in (config.value_region, config.counter_region):
                lo, hi = region.base, region.base + region.size
                for local in switch.registers.occupied_addrs():
                    if lo <= base + local < hi:
                        count += 1
        return count

    def scrub_residue(self, config: Any) -> int:
        """Clear leftover occupancy in ``config``'s regions (an explicit
        control-plane read-and-clear, logged as a violation-free event);
        returns how many registers were non-empty."""
        scrubbed = 0
        for switch in self.deployment.switches:
            base = switch.phys_base
            stale = []
            for region in (config.value_region, config.counter_region):
                lo, hi = region.base, region.base + region.size
                stale.extend(base + local
                             for local in switch.registers.occupied_addrs()
                             if lo <= base + local < hi)
            if stale:
                switch.ctrl_read_and_clear(stale)
                scrubbed += len(stale)
        return scrubbed

    # -- internals ------------------------------------------------------
    def _violate(self, message: str) -> None:
        self.violations.append(f"t={self.deployment.sim.now!r}: {message}")

    def _slot_positions(self) -> List[int]:
        return [sw.flow_state.next_slot
                for sw in self.deployment.switches]

    def _pool_total(self) -> int:
        """Accounted slots: live regions + freed regions + bump gap.

        Every register slot is either inside a live registration's
        region, parked on a freed list, or in the untouched gap between
        the two bump pointers — so this sum is conserved across
        reserve/release and any drift means a leak or double-release.
        """
        controller = self.deployment.controller
        pool = controller.pool
        live = 0
        seen = set()
        for registration in controller._registrations.values():
            for config in registration.configs:
                if not config.has_switch:
                    continue
                key = (config.value_region.base, config.value_region.size)
                if key in seen:
                    continue
                seen.add(key)
                live += config.value_region.size + config.counter_region.size
        freed = sum(r.size for r in pool._freed_values) + \
            sum(r.size for r in pool._freed_counters)
        gap = pool._counter_next - pool._value_next
        return live + freed + gap
