"""Measurement helpers: counters, time series, rate meters, percentiles."""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "TimeSeries",
    "RateMeter",
    "LatencyRecorder",
    "percentile",
    "mean",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    frac = rank - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


class Counter:
    """Named integer counters with dict-style access.

    ``add`` sits on the per-packet hot path (several calls per hop), so
    the class is slotted and the increment avoids a ``dict.get`` in the
    common already-present-key case.  Bulk drivers that do not read the
    counters should go through
    :meth:`repro.obs.MetricsRegistry.disable_all` rather than disabling
    instances one by one, so enable state cannot desynchronise across
    the deployment (per-instance :meth:`disable` remains for tests).
    """

    __slots__ = ("_counts", "enabled", "__weakref__")

    def __init__(self):
        self._counts: Dict[str, float] = {}
        self.enabled = True

    def add(self, key: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        counts = self._counts
        try:
            counts[key] += amount
        except KeyError:
            counts[key] = amount

    def disable(self) -> None:
        """Stop recording (bulk-run fast path); existing counts remain."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def __getitem__(self, key: str) -> float:
        return self._counts.get(key, 0)

    def get(self, key: str, default: float = 0) -> float:
        return self._counts.get(key, default)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self._counts!r})"


class TimeSeries:
    """Append-only (time, value) samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def window_mean(self, start: float, end: float) -> float:
        """Mean of samples whose time lies in [start, end)."""
        selected = [v for t, v in zip(self.times, self.values)
                    if start <= t < end]
        return mean(selected)


class RateMeter:
    """Accumulates byte counts and reports average rates per bucket.

    ``bucket_s`` controls the resolution of :meth:`series` (the
    throughput-over-time curves in Figures 8/9).
    """

    def __init__(self, bucket_s: float = 0.01):
        if bucket_s <= 0:
            raise ValueError("bucket size must be positive")
        self.bucket_s = bucket_s
        self._buckets: Dict[int, float] = {}
        self.total_bytes = 0.0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def record(self, time: float, nbytes: float) -> None:
        index = int(time / self.bucket_s)
        self._buckets[index] = self._buckets.get(index, 0.0) + nbytes
        self.total_bytes += nbytes
        if self.first_time is None:
            self.first_time = time
        self.last_time = time

    def series(self) -> List[Tuple[float, float]]:
        """(bucket start time, average Gbps within the bucket) pairs."""
        result = []
        for index in sorted(self._buckets):
            gbps = self._buckets[index] * 8.0 / self.bucket_s / 1e9
            result.append((index * self.bucket_s, gbps))
        return result

    def average_gbps(self, start: Optional[float] = None,
                     end: Optional[float] = None) -> float:
        """Mean rate between ``start`` and ``end`` (defaults: full span)."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        start = self.first_time if start is None else start
        end = self.last_time if end is None else end
        if end <= start:
            return 0.0
        total = sum(b for i, b in self._buckets.items()
                    if start <= i * self.bucket_s < end)
        return total * 8.0 / (end - start) / 1e9


class LatencyRecorder:
    """Collects latency samples and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self._sorted: List[float] = []

    def record(self, latency_s: float) -> None:
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        insort(self._sorted, latency_s)

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def count(self) -> int:
        return len(self._sorted)

    def mean(self) -> float:
        return mean(self._sorted)

    def p(self, pct: float) -> float:
        return percentile(self._sorted, pct)

    def summary(self) -> Dict[str, float]:
        if not self._sorted:
            return {"count": 0}
        return {
            "count": len(self._sorted),
            "mean": self.mean(),
            "p50": self.p(50),
            "p99": self.p(99),
            "max": self._sorted[-1],
        }
