"""Nodes: the endpoints and midpoints of links.

:class:`Node` is the minimal interface the :class:`~repro.netsim.link.Link`
delivery path needs.  :class:`Host` adds a multi-core CPU service model so
that software packet processing (the host agents, the pure-DPDK baselines)
exhibits a realistic packets-per-second ceiling — the effect that makes
in-network computation win in the paper's evaluation.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional

from repro.obs.tracer import TRACE

from .link import Link
from .simulator import Simulator
from .trace import Counter

__all__ = ["Node", "Host"]


class Node:
    """Base class for anything that can terminate a link."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.egress: Dict[str, Link] = {}
        self.stats = Counter()

    def attach_egress(self, link: Link) -> None:
        """Register an outgoing link, keyed by the peer node's name."""
        peer = getattr(link.dst, "name", str(link.dst))
        self.egress[peer] = link

    def link_to(self, peer_name: str) -> Link:
        try:
            return self.egress[peer_name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no egress link to {peer_name!r}; "
                f"known peers: {sorted(self.egress)}") from None

    def send(self, packet: Any, peer_name: str) -> bool:
        # Per-packet hot path: the counter increment is inlined (one
        # method call per hop adds up at 100k+ packets per run).
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["tx_pkts"] += 1
            except KeyError:
                counts["tx_pkts"] = 1
        link = self.egress.get(peer_name)
        if link is None:
            link = self.link_to(peer_name)   # raises the descriptive error
        return link.send(packet)

    def receive(self, packet: Any, link: Link) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host with a multi-core packet-processing CPU model.

    Every received packet costs ``rx_cpu_cost_s`` seconds on one of
    ``cores`` cores before the registered handler sees it.  Cores are
    modelled as parallel servers; when all are busy the packet waits,
    which produces the pps ceiling that motivates INC offload.

    Setting ``rx_cpu_cost_s`` to 0 makes delivery immediate (useful for
    unit tests that do not care about CPU contention).
    """

    def __init__(self, sim: Simulator, name: str, cores: int = 1,
                 rx_cpu_cost_s: float = 0.0):
        super().__init__(sim, name)
        if cores < 1:
            raise ValueError("a host needs at least one core")
        self.cores = cores
        self.rx_cpu_cost_s = rx_cpu_cost_s
        # Min-heap of the times at which each core becomes free.
        self._core_free: List[float] = [0.0] * cores
        heapify(self._core_free)
        self._handler: Optional[Callable[[Any, Link], None]] = None
        # Fault injection: while paused the host buffers arrivals and
        # flushes them, in order, on resume (a GC / scheduler stall).
        self._paused_until: Optional[float] = None
        self._pause_buffer: List[Any] = []

    def pause(self, duration_s: float) -> None:
        """Stall packet reception for ``duration_s`` from now.

        Overlapping pauses extend each other (the stall ends at the
        latest requested instant).  Transmission is unaffected — only
        the receive path freezes, like a process descheduled mid-poll.
        """
        if duration_s <= 0:
            return
        until = self.sim.now + duration_s
        if self._paused_until is None or until > self._paused_until:
            self._paused_until = until
            self.stats.add("pauses")
            if TRACE.enabled:
                TRACE.instant("host.pause", self.sim.now, self.name,
                              (duration_s,))
            self.sim.schedule_at(until, self._resume, until)

    def _resume(self, when: float) -> None:
        if self._paused_until != when:   # superseded by a longer pause
            return
        self._paused_until = None
        buffered, self._pause_buffer = self._pause_buffer, []
        for packet, link in buffered:
            self.receive(packet, link)

    def set_handler(self, handler: Callable[[Any, Link], None]) -> None:
        """Install the upcall invoked for every processed packet."""
        self._handler = handler

    def receive(self, packet: Any, link: Link) -> None:
        if self._paused_until is not None:
            self._pause_buffer.append((packet, link))
            return
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["rx_pkts"] += 1
            except KeyError:
                counts["rx_pkts"] = 1
        cost = self.rx_cpu_cost_s
        if cost <= 0.0:
            self._dispatch((packet, link))
            return
        core_free = self._core_free
        free_at = heappop(core_free)
        sim = self.sim
        now = sim.now
        start = now if now > free_at else free_at
        done = start + cost
        heappush(core_free, done)
        sim.schedule(done - now, self._dispatch, (packet, link))
        if TRACE.enabled:
            TRACE.record("host.cpu", start, done, self.name)

    def _dispatch(self, pair) -> None:
        packet, link = pair
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["processed_pkts"] += 1
            except KeyError:
                counts["processed_pkts"] = 1
        if self._handler is None:
            stats.add("dropped_no_handler")
            return
        self._handler(packet, link)

    def run_on_core(self, cost_s: float, fn: Callable[[Any], None],
                    arg: Any = None) -> None:
        """Charge ``cost_s`` of core time, then call ``fn(arg)``.

        Used by agents for work that costs more than the per-packet
        baseline (e.g. executing INC primitives in software on the
        fallback path).  Contends for the same cores as packet reception.
        """
        if cost_s <= 0.0:
            fn(arg)
            return
        core_free = self._core_free
        free_at = heappop(core_free)
        sim = self.sim
        now = sim.now
        start = now if now > free_at else free_at
        done = start + cost_s
        heappush(core_free, done)
        sim.schedule(done - now, fn, arg)
        if TRACE.enabled:
            TRACE.record("host.cpu", start, done, self.name)

    def cpu_utilisation_until(self, horizon: float) -> float:
        """Fraction of core-time consumed, assuming no further arrivals."""
        if horizon <= 0:
            return 0.0
        busy = sum(min(t, horizon) for t in self._core_free)
        return busy / (self.cores * horizon)
