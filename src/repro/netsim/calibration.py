"""Calibration constants aligning the simulator with the paper's testbed.

The paper's testbed: two Barefoot Tofino switches (32x100 Gbps), eight
hosts with Mellanox ConnectX-5 100 Gbps NICs and 56-core CPUs, DPDK
agents.  These constants place the simulated numbers in the same order
of magnitude.  Benchmarks must assert *shape* (orderings, ratios,
crossovers), never absolute equality with the paper.

All times are seconds, rates bits/second unless suffixed otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["Calibration", "DEFAULT_CALIBRATION", "scaled"]


@dataclass(frozen=True)
class Calibration:
    """Tunable physical constants for a simulated deployment."""

    # --- links -----------------------------------------------------------
    link_bandwidth_bps: float = 100e9          # 100 Gbps ports
    host_link_delay_s: float = 1.0e-6          # host <-> ToR propagation
    switch_link_delay_s: float = 2.0e-6        # switch <-> switch

    # --- switch ----------------------------------------------------------
    switch_pipeline_delay_s: float = 0.6e-6    # ingress->egress latency
    switch_queue_capacity_pkts: int = 512
    switch_ecn_threshold_pkts: int = 256
    switch_recirculation_delay_s: float = 0.8e-6   # extra trip for recirc

    # --- host CPU --------------------------------------------------------
    # Per-packet cost on a host-agent worker core for plain send/receive
    # (DPDK-class user-level stack with burst RX amortisation).
    host_pkt_cpu_s: float = 0.06e-6
    # Additional per-packet cost when the *server* must execute the INC
    # primitives in software (the fallback path / pure-software baseline).
    server_sw_inc_pkt_cpu_s: float = 1.1e-6
    host_agent_cores: int = 14                 # cores given to the agent
    # Extra fixed cost to traverse the user-space RPC layer once per call.
    rpc_call_overhead_s: float = 4.0e-6

    # --- transport ---------------------------------------------------  ---
    w_max: int = 256                           # paper §5.1
    # The paper's flows are long-lived; benchmarks measure steady state
    # over millisecond windows, so flows start half-open and ramp fast.
    initial_cwnd: int = 128
    min_cwnd: int = 2
    # Aggressive: the flip-bit protocol makes spurious retransmissions
    # harmless (idempotent), so the timeout sits just past the loaded RTT.
    retransmit_timeout_s: float = 20e-6
    ack_every_pkts: int = 1
    aimd_increase: int = 16                    # packets per RTT
    aimd_decrease: float = 0.8                 # gentle multiplicative cut
    kv_pairs_per_packet: int = 32              # paper §5.1 / §6.1
    # How long a recorded ECN mark keeps tainting return packets ("the
    # retransmission packets carry ECN until cleared", §5.1).  Scaled to
    # roughly one queue-drain time plus an RTT so a single congestion
    # event is signalled once per window, not for hundreds of RTTs.
    ecn_freshness_s: float = 10e-6

    # --- switch memory -----------------------------------------------  ---
    memory_segments: int = 32                  # one per kv slot
    segment_registers: int = 40_000            # 40K 32-bit units each
    pipeline_stages: int = 12
    map_stages: int = 8                        # stages used for map access
    register_groups_per_stage: int = 4

    # --- agents ------------------------------------------------------  ---
    flows_per_app: int = 4                     # parallel worker threads (§4)
    # Control-plane register access (PCIe to the switch ASIC driver).
    ctrl_rtt_s: float = 20e-6
    mapping_quarantine_s: float = 5e-3         # evicted-register grace
    ack_batch_pkts: int = 32                   # client ACK coalescing
    ack_batch_delay_s: float = 10e-6
    # Spin interval for fresh-retry (test&set) attempts: locks poll the
    # switch at this pace rather than hammering at the transport RTO.
    fresh_retry_delay_s: float = 200e-6

    # --- misc --------------------------------------------------------  ---
    cache_update_window_s: float = 5e-3        # periodic LRU window
    controller_poll_interval_s: float = 50e-3  # two-level timeout polling
    first_level_timeout_s: float = 200e-3
    second_level_timeout_s: float = 2.0


DEFAULT_CALIBRATION = Calibration()


def scaled(base: Calibration = DEFAULT_CALIBRATION, **overrides) -> Calibration:
    """Return a copy of ``base`` with the given fields replaced.

    >>> c = scaled(link_bandwidth_bps=10e9)
    >>> c.link_bandwidth_bps
    10000000000.0
    """
    return replace(base, **overrides)
