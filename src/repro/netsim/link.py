"""Links, egress queues, and loss models.

A :class:`Link` is a unidirectional channel from one :class:`Node` to
another with a serialization rate, a propagation delay, a bounded
drop-tail queue, and an optional loss model.  :func:`duplex_link` wires
two symmetric directions.

Any object with a ``size_bytes`` attribute can be transmitted.  If the
queue occupancy exceeds the ECN threshold at enqueue time, the packet's
``ecn`` attribute is set (when the object has one), mirroring how the
NetRPC switch marks congestion on queue buildup (paper §5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.obs.tracer import TRACE

from .simulator import Simulator
from .trace import Counter

__all__ = [
    "LossModel",
    "NoLoss",
    "RandomLoss",
    "BurstLoss",
    "ScriptedLoss",
    "Link",
    "duplex_link",
    "ETHERNET_OVERHEAD_BYTES",
]

# Preamble (8) + FCS (4) + inter-frame gap (12): on-the-wire cost added to
# every frame beyond its declared size.
ETHERNET_OVERHEAD_BYTES = 24


class LossModel:
    """Decides whether a packet is dropped on the wire."""

    def drops(self, packet: Any, rng) -> bool:
        raise NotImplementedError


class NoLoss(LossModel):
    def drops(self, packet: Any, rng) -> bool:
        return False


class RandomLoss(LossModel):
    """Independent per-packet loss with probability ``rate``."""

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate

    def drops(self, packet: Any, rng) -> bool:
        return self.rate > 0.0 and rng.random() < self.rate


class BurstLoss(LossModel):
    """Two-state Gilbert-Elliott burst loss.

    ``p_enter`` is the chance of entering the bad state per packet,
    ``p_exit`` the chance of leaving it, and ``bad_rate`` the loss rate
    while in the bad state.
    """

    def __init__(self, p_enter: float, p_exit: float, bad_rate: float = 1.0):
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.bad_rate = bad_rate
        self._bad = False

    def drops(self, packet: Any, rng) -> bool:
        if self._bad:
            if rng.random() < self.p_exit:
                self._bad = False
        elif rng.random() < self.p_enter:
            self._bad = True
        return self._bad and rng.random() < self.bad_rate


class ScriptedLoss(LossModel):
    """Drops exactly the packets whose transmit ordinal is listed.

    Useful in tests that need a deterministic loss pattern.
    """

    def __init__(self, drop_ordinals):
        self.drop_ordinals = set(drop_ordinals)
        self._count = 0

    def drops(self, packet: Any, rng) -> bool:
        ordinal = self._count
        self._count += 1
        return ordinal in self.drop_ordinals


class Link:
    """Unidirectional link with a drop-tail queue and ECN marking.

    Lossless links (the overwhelmingly common case) take a *fused* fast
    path: the transmitter's busy-until time is tracked analytically in
    ``_free_at`` and a packet that finds the transmitter idle costs a
    single scheduled event (its delivery), instead of the classic
    serialization-done + propagation-done pair.  Packets that queue get
    one extra ``_start_next`` event at their serialization start, which
    keeps queue occupancy — and therefore drop-tail and ECN decisions —
    identical to the two-event model at every instant.  Links with a
    loss model installed fall back to the two-event path because the
    loss decision must be drawn from the simulator RNG at serialization
    end.

    **Fused event chains** (DESIGN.md §4.7): once the backlog exceeds
    ``chain_batch_min`` packets, the whole serialize→propagate→deliver
    chain of every queued packet is computed analytically in one pass —
    one delivery callback per packet, zero intermediate events.  Queue
    occupancy seen by later ``send()`` calls stays exact: the drained
    packets' serialization-start times go into a *virtual occupancy*
    deque, and a packet counts as queued until its serialization start
    passes.  The batch path turns itself off automatically whenever the
    intermediate events carry meaning: links with a loss model or a
    ``faults.py`` injector never take it (they are not fused at all),
    and an armed tracer disables it so every serialize/propagate span
    boundary is emitted at its true instant.
    """

    def __init__(self, sim: Simulator, src: Any, dst: Any,
                 bandwidth_bps: float, delay_s: float,
                 queue_capacity_pkts: int = 512,
                 ecn_threshold_pkts: Optional[int] = None,
                 loss: Optional[LossModel] = None,
                 name: str = "",
                 chain_batch_min: int = 2048):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("delay must be >= 0")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.queue_capacity_pkts = queue_capacity_pkts
        self.ecn_threshold_pkts = (ecn_threshold_pkts
                                   if ecn_threshold_pkts is not None
                                   else max(1, queue_capacity_pkts // 8))
        self.name = name or f"{getattr(src, 'name', src)}->" \
                            f"{getattr(dst, 'name', dst)}"
        self.chain_batch_min = chain_batch_min
        self._queue: Deque[Any] = deque()
        self._busy = False          # legacy (lossy) path state
        self._free_at = 0.0         # fused path: transmitter busy until
        self._pop_pending = False   # fused path: _start_next scheduled
        # Batch-fused packets leave _queue early; their serialization
        # start times wait here so occupancy checks stay exact.
        self._virtual_starts: Deque[float] = deque()
        # Precomputed (delivery_time, packet) chain for batch-fused
        # packets; only the head is ever in the scheduler.
        self._batch: Deque[Tuple[float, Any]] = deque()
        self._batch_active = False
        self.stats = Counter()
        self.loss = loss or NoLoss()

    # ------------------------------------------------------------------
    @property
    def loss(self) -> LossModel:
        return self._loss

    @loss.setter
    def loss(self, model: LossModel) -> None:
        # Swap while the link is idle (deployment loss injection happens
        # at setup time); a swap mid-serialization would let the two
        # paths overlap.
        self._loss = model
        self._fused = type(model) is NoLoss

    @property
    def queue_len(self) -> int:
        starts = self._virtual_starts
        if starts:
            now = self.sim.now
            while starts and starts[0] <= now:
                starts.popleft()
            return len(self._queue) + len(starts)
        return len(self._queue)

    def send(self, packet: Any) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns ``False`` if the packet was tail-dropped at the queue.
        """
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["offered_pkts"] += 1
            except KeyError:
                counts["offered_pkts"] = 1
        queue = self._queue
        qlen = len(queue)
        starts = self._virtual_starts
        if starts:
            # Batch-fused packets count as queued until their
            # serialization start passes, so drop-tail and ECN see the
            # same occupancy the per-packet model would.
            now = self.sim.now
            while starts and starts[0] <= now:
                starts.popleft()
            qlen += len(starts)
        if qlen >= self.queue_capacity_pkts:
            stats.add("queue_drops")
            if TRACE.enabled:
                TRACE.instant("link.drop", self.sim.now, self.name,
                              ("queue",))
            return False
        if qlen >= self.ecn_threshold_pkts and hasattr(packet, "ecn"):
            packet.ecn = True
            stats.add("ecn_marks")
            if TRACE.enabled:
                TRACE.instant("link.ecn", self.sim.now, self.name)
        if self._fused:
            sim = self.sim
            now = sim.now
            if not qlen and now >= self._free_at:
                # Idle transmitter: serialization starts immediately and
                # the single event is the delivery itself.  (size_bytes is
                # a caching property; read the cache slot directly.)
                size = getattr(packet, "_size", None) or packet.size_bytes
                wire_bytes = size + ETHERNET_OVERHEAD_BYTES
                free = now + wire_bytes * 8.0 / self.bandwidth_bps
                self._free_at = free
                sim.schedule_at(free + self.delay_s, self._deliver_fused,
                                packet)
                if TRACE.enabled:
                    TRACE.record("link.serialize", now, free, self.name)
                    TRACE.record("link.propagate", free,
                                 free + self.delay_s, self.name)
            else:
                queue.append(packet)
                if not self._pop_pending:
                    self._pop_pending = True
                    sim.schedule_at(self._free_at, self._start_next, None)
            return True
        queue.append(packet)
        if not self._busy:
            self._transmit_next()
        return True

    # -- fused (lossless) path -----------------------------------------
    def _start_next(self, _unused: Any) -> None:
        # Fires at a serialization start (== previous serialization end),
        # the same instant the two-event model pops the queue.  Assigning
        # delivery-event sequence numbers here (not at enqueue) keeps
        # same-timestamp tie-breaking identical to the two-event model;
        # scheduling every queued delivery at enqueue time was measurably
        # faster but reordered equal-time events.
        queue = self._queue
        packet = queue.popleft()
        sim = self.sim
        size = getattr(packet, "_size", None) or packet.size_bytes
        wire_bytes = size + ETHERNET_OVERHEAD_BYTES
        free = sim.now + wire_bytes * 8.0 / self.bandwidth_bps
        self._free_at = free
        sim.schedule_at(free + self.delay_s, self._deliver_fused, packet)
        if TRACE.enabled:
            TRACE.record("link.serialize", sim.now, free, self.name)
            TRACE.record("link.propagate", free, free + self.delay_s,
                         self.name)
        if queue:
            if len(queue) >= self.chain_batch_min and not TRACE.enabled:
                self._drain_batch(free)
            else:
                sim.schedule_at(free, self._start_next, None)
        else:
            self._pop_pending = False

    def _drain_batch(self, free: float) -> None:
        # Deep-backlog chain fusion: the transmitter is committed to
        # serializing the entire backlog back-to-back, so every queued
        # packet's serialize→propagate→deliver chain is determined right
        # now.  Precompute the delivery timestamps (bit-identical to the
        # per-packet path — same accumulation expression), park the
        # serialization-start times in the virtual-occupancy deque, and
        # walk the deliveries as a *chain*: only the head delivery is
        # ever in the scheduler, each delivery scheduling the next.  One
        # event per packet instead of two, and the scheduler's pending
        # set stays O(1) deep instead of O(backlog).
        queue = self._queue
        starts = self._virtual_starts
        batch = self._batch
        bandwidth = self.bandwidth_bps
        delay = self.delay_s
        batched = len(queue)
        while queue:
            packet = queue.popleft()
            starts.append(free)
            size = getattr(packet, "_size", None) or packet.size_bytes
            free = free + (size + ETHERNET_OVERHEAD_BYTES) * 8.0 / bandwidth
            batch.append((free + delay, packet))
        self._free_at = free
        self._pop_pending = False
        if not self._batch_active:
            self._batch_active = True
            when, head = batch.popleft()
            self.sim.schedule_at(when, self._deliver_batched, head)
        stats = self.stats
        if stats.enabled:
            stats.add("chain_batches")
            stats.add("chain_fused_pkts", batched)

    def _deliver_batched(self, packet: Any) -> None:
        self._deliver_fused(packet)
        batch = self._batch
        if batch:
            when, nxt = batch.popleft()
            self.sim.schedule_at(when, self._deliver_batched, nxt)
        else:
            self._batch_active = False

    def _deliver_fused(self, packet: Any) -> None:
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            size = getattr(packet, "_size", None) or packet.size_bytes
            try:
                counts["sent_pkts"] += 1
            except KeyError:
                counts["sent_pkts"] = 1
            try:
                counts["sent_bytes"] += size
            except KeyError:
                counts["sent_bytes"] = size
            try:
                counts["delivered_pkts"] += 1
            except KeyError:
                counts["delivered_pkts"] = 1
        self.dst.receive(packet, self)

    # -- legacy (lossy) path -------------------------------------------
    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        wire_bytes = packet.size_bytes + ETHERNET_OVERHEAD_BYTES
        tx_time = wire_bytes * 8.0 / self.bandwidth_bps
        self.sim.schedule(tx_time, self._tx_done, packet)
        if TRACE.enabled:
            now = self.sim.now
            TRACE.record("link.serialize", now, now + tx_time, self.name)

    def _tx_done(self, packet: Any) -> None:
        self.stats.add("sent_pkts")
        self.stats.add("sent_bytes", packet.size_bytes)
        plan = getattr(self._loss, "plan", None)
        if plan is not None:
            # Fault-model path: the model plans each packet's deliveries
            # as (extra_delay, packet) tuples — empty = dropped, two
            # entries = duplicated, positive extra delay = reordered.
            deliveries = list(plan(packet, self))
            if TRACE.enabled and not deliveries:
                TRACE.instant("link.drop", self.sim.now, self.name,
                              ("wire",))
            for extra, out in deliveries:
                self.sim.schedule(self.delay_s + extra, self._deliver, out)
                if TRACE.enabled:
                    now = self.sim.now
                    TRACE.record("link.propagate", now,
                                 now + self.delay_s + extra, self.name)
        elif self._loss.drops(packet, self.sim.rng):
            self.stats.add("wire_drops")
            if TRACE.enabled:
                TRACE.instant("link.drop", self.sim.now, self.name,
                              ("wire",))
        else:
            self.sim.schedule(self.delay_s, self._deliver, packet)
            if TRACE.enabled:
                now = self.sim.now
                TRACE.record("link.propagate", now, now + self.delay_s,
                             self.name)
        self._transmit_next()

    def _deliver(self, packet: Any) -> None:
        self.stats.add("delivered_pkts")
        self.dst.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.bandwidth_bps / 1e9:g}Gbps>"


def duplex_link(sim: Simulator, a: Any, b: Any, bandwidth_bps: float,
                delay_s: float, **kwargs) -> Tuple[Link, Link]:
    """Create the two directions of a full-duplex link: (a->b, b->a)."""
    forward = Link(sim, a, b, bandwidth_bps, delay_s, **kwargs)
    backward = Link(sim, b, a, bandwidth_bps, delay_s, **kwargs)
    return forward, backward
