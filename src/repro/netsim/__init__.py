"""Discrete-event network simulator substrate for the NetRPC reproduction.

This package replaces the paper's physical testbed (Tofino switches,
100 Gbps NICs, DPDK) with a deterministic, seeded event simulator.  See
DESIGN.md §1 for the substitution rationale.
"""

from .calibration import Calibration, DEFAULT_CALIBRATION, scaled
from .events import AllOf, AnyOf, Event, EventFailed, Interrupt, Timeout
from .faults import (
    ChaosSchedule,
    CompositeFault,
    Corrupt,
    Duplicate,
    FaultModel,
    HostPause,
    InvariantChecker,
    LinkFault,
    LinkFlap,
    Reorder,
    SwitchReboot,
)
from .link import (
    ETHERNET_OVERHEAD_BYTES,
    BurstLoss,
    Link,
    LossModel,
    NoLoss,
    RandomLoss,
    ScriptedLoss,
    duplex_link,
)
from .node import Host, Node
from .simulator import Process, SimulationError, Simulator, WallClockExceeded
from .store import Store, StoreFull
from .topology import (
    Topology,
    chain,
    dumbbell,
    fat_tree,
    fat_tree_structure,
    multi_rack,
    multi_rack_structure,
    star,
)
from .trace import Counter, LatencyRecorder, RateMeter, TimeSeries, mean, percentile

__all__ = [
    "Simulator", "Process", "SimulationError", "WallClockExceeded",
    "Event", "Timeout", "AnyOf", "AllOf", "Interrupt", "EventFailed",
    "Store", "StoreFull",
    "Link", "duplex_link", "LossModel", "NoLoss", "RandomLoss", "BurstLoss",
    "ScriptedLoss", "ETHERNET_OVERHEAD_BYTES",
    "FaultModel", "Reorder", "Duplicate", "Corrupt", "LinkFlap",
    "CompositeFault", "LinkFault", "SwitchReboot", "HostPause",
    "ChaosSchedule", "InvariantChecker",
    "Node", "Host",
    "Topology", "star", "dumbbell", "chain",
    "multi_rack_structure", "fat_tree_structure", "multi_rack", "fat_tree",
    "Counter", "TimeSeries", "RateMeter", "LatencyRecorder",
    "mean", "percentile",
    "Calibration", "DEFAULT_CALIBRATION", "scaled",
]
