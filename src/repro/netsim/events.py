"""Event primitives for the discrete-event simulator.

The simulator follows a SimPy-like model: *processes* are Python
generators that ``yield`` :class:`Event` objects and are resumed when the
event triggers.  Events are triggered either explicitly
(:meth:`Event.succeed` / :meth:`Event.fail`) or by the simulator clock
(:class:`Timeout`).

Everything here is deliberately independent of networking so the same
loop can drive switches, host agents, and application processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .simulator import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "EventFailed",
]


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value given to
    :meth:`~repro.netsim.simulator.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class EventFailed(Exception):
    """Raised inside a process when a yielded event failed."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts *pending*, becomes *triggered* exactly once, and then
    invokes its callbacks in registration order.  Callbacks added after
    triggering are invoked immediately (this keeps ``yield`` on an
    already-completed event race-free).
    """

    __slots__ = ("sim", "callbacks", "_triggered", "_ok", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._triggered = False
        self._ok = True
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError("event has already been triggered")
        self._triggered = True
        self._ok = True
        self.value = value
        self._dispatch()
        return self

    def fail(self, cause: Any = None) -> "Event":
        """Trigger the event as failed; waiting processes see an exception."""
        if self._triggered:
            raise RuntimeError("event has already been triggered")
        self._triggered = True
        self._ok = False
        self.value = cause
        self._dispatch()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._triggered:
            callback(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after ``delay`` simulated seconds.

    Backed by a cancellable scheduler timer: :meth:`cancel` is O(1)
    lazy cancellation (the schedule entry is blanked in place, never
    popped or dispatched as a tombstone), so timeout-race patterns —
    retransmission timers, watchdogs racing an ack — cost nothing at
    dispatch time for the losing branch.
    """

    __slots__ = ("delay", "_handle")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._handle = sim.call_later(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        if not self._triggered:
            self.succeed(value)

    def cancel(self) -> bool:
        """Prevent the timeout from firing; True if this call did it.

        A no-op (returning ``False``) once the timeout has triggered.
        Waiting processes are *not* resumed — a cancelled timeout simply
        never fires, so only cancel timeouts nothing is left waiting on
        (e.g. the losing side of an :class:`AnyOf` race).
        """
        if self._triggered:
            return False
        return self._handle.cancel()


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        if not self.events:
            raise ValueError("condition requires at least one event")
        self._remaining = len(self.events)
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict:
        return {e: e.value for e in self.events if e.triggered}


class AnyOf(_Condition):
    """Triggers when the first child event triggers.

    ``value`` is a dict of the events that have triggered so far, mapping
    event to its value.  If the first child fails the condition fails.
    """

    __slots__ = ()

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._results())
        else:
            self.fail(event.value)


class AllOf(_Condition):
    """Triggers when every child event has triggered.

    Fails as soon as any child fails.
    """

    __slots__ = ()

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())
