"""Key-distribution generators for aggregation and caching workloads.

The paper's AsyncAgtr/KeyValue experiments (Figures 12 and 13) stress
the switch-memory cache with skewed key popularity; Zipf-distributed
keys are the standard model for that skew.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterator, List

__all__ = ["ZipfGenerator", "UniformKeys", "key_loop"]


class ZipfGenerator:
    """Samples keys 0..n-1 with Zipf(s) popularity.

    Uses inverse-CDF sampling over the precomputed harmonic weights, so
    sampling is O(log n) and exact.
    """

    def __init__(self, n: int, s: float = 1.0, seed: int = 0,
                 prefix: str = "key"):
        if n < 1:
            raise ValueError("need at least one key")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.n = n
        self.s = s
        self.prefix = prefix
        self.rng = random.Random(seed)
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = 0.0
        self._cdf: List[float] = []
        for w in weights:
            total += w
            self._cdf.append(total)
        self._total = total

    def sample_index(self) -> int:
        u = self.rng.random() * self._total
        return bisect.bisect_left(self._cdf, u)

    def sample(self) -> str:
        return f"{self.prefix}-{self.sample_index()}"

    def stream(self, count: int) -> Iterator[str]:
        for _ in range(count):
            yield self.sample()

    def hot_set(self, fraction: float) -> List[str]:
        """The most popular keys holding ``fraction`` of the probability."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        target = fraction * self._total
        cut = bisect.bisect_left(self._cdf, target) + 1
        return [f"{self.prefix}-{i}" for i in range(min(cut, self.n))]


class UniformKeys:
    """Uniformly random keys from a fixed universe."""

    def __init__(self, n: int, seed: int = 0, prefix: str = "key"):
        if n < 1:
            raise ValueError("need at least one key")
        self.n = n
        self.prefix = prefix
        self.rng = random.Random(seed)

    def sample(self) -> str:
        return f"{self.prefix}-{self.rng.randrange(self.n)}"

    def stream(self, count: int) -> Iterator[str]:
        for _ in range(count):
            yield self.sample()


def key_loop(n: int, repeats: int, prefix: str = "key") -> Iterator[str]:
    """Loop over n distinct keys ``repeats`` times (the §6.6 workload)."""
    for _ in range(repeats):
        for index in range(n):
            yield f"{prefix}-{index}"
