"""Workload generators substituting the paper's datasets (Table 3).

ImageNet -> model-shaped synthetic gradients; Yelp -> Zipfian synthetic
corpus; CAIDA traces -> heavy-tailed synthetic flow traces; plus generic
key-distribution helpers.  Each generator reproduces the statistics the
evaluation actually exercises (tensor sizes, key skew, flow-size tail).
"""

from .keys import UniformKeys, ZipfGenerator, key_loop
from .models import MODELS, ModelProfile, synthetic_gradient
from .text import SyntheticCorpus, word_count
from .traces import FlowRecord, SyntheticTrace

__all__ = [
    "ZipfGenerator", "UniformKeys", "key_loop",
    "ModelProfile", "MODELS", "synthetic_gradient",
    "SyntheticCorpus", "word_count",
    "FlowRecord", "SyntheticTrace",
]
