"""Synthetic packet traces for the network-monitoring workload.

Substitutes the CAIDA anonymized internet traces (paper Table 3): flow
sizes follow the heavy-tailed distribution measured on backbone links
(a few elephant flows carry most packets, many mice carry a handful),
which is the property flow-counting/monitoring systems are evaluated
against.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from collections import Counter
from typing import Dict, Iterator, List, NamedTuple

__all__ = ["FlowRecord", "SyntheticTrace"]


class FlowRecord(NamedTuple):
    """One packet observation: a five-tuple-ish flow id and a size.

    A NamedTuple rather than a frozen dataclass: one record is created
    per monitored packet, and frozen-dataclass construction pays an
    ``object.__setattr__`` per field.
    """

    flow_id: str
    size_bytes: int


class SyntheticTrace:
    """Heavy-tailed flow trace generator (CAIDA stand-in).

    ``n_flows`` distinct flows; flow popularity is Pareto-distributed so
    the top ~1% of flows carry roughly half the packets, mirroring
    backbone traces.
    """

    def __init__(self, n_flows: int = 10_000, alpha: float = 1.2,
                 seed: int = 0):
        if n_flows < 1:
            raise ValueError("need at least one flow")
        self.n_flows = n_flows
        self.rng = random.Random(seed)
        weights = [(1.0 / (rank ** alpha)) for rank in range(1, n_flows + 1)]
        total = sum(weights)
        self._weights = [w / total for w in weights]
        self._flow_ids = [self._make_flow_id(i) for i in range(n_flows)]
        self._cum: List[float] = []
        acc = 0.0
        for w in self._weights:
            acc += w
            self._cum.append(acc)

    def _make_flow_id(self, index: int) -> str:
        rng = random.Random(index * 2654435761 % 2**32)
        src = ".".join(str(rng.randrange(256)) for _ in range(4))
        dst = ".".join(str(rng.randrange(256)) for _ in range(4))
        return f"{src}:{rng.randrange(65536)}->{dst}:{rng.randrange(65536)}"

    def packets(self, count: int) -> Iterator[FlowRecord]:
        # Hot generator (one record per monitored packet); bindings are
        # hoisted, and the RNG draw order (uniform, then size choice) is
        # part of the deterministic-trace contract.
        rng_random = self.rng.random
        getrandbits = self.rng.getrandbits
        cum = self._cum
        flow_ids = self._flow_ids
        last = self.n_flows - 1
        sizes = (64, 128, 256, 512, 1024, 1500)
        for _ in range(count):
            index = bisect_left(cum, rng_random())
            # Inlined ``rng.choice(sizes)``: rejection-sample 3 bits until
            # < 6, the exact draw pattern of Random._randbelow, so the
            # generated stream matches the pre-inline trace bit for bit.
            size_index = getrandbits(3)
            while size_index > 5:
                size_index = getrandbits(3)
            yield FlowRecord(flow_ids[index if index < last else last],
                             sizes[size_index])

    def exact_counts(self, records) -> Dict[str, int]:
        """Ground-truth per-flow packet counts for accuracy checks."""
        return dict(Counter(record.flow_id for record in records))
