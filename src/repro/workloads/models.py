"""DNN model profiles for the distributed-training workload (Figure 6).

Substitutes the paper's GPU testbed: instead of computing real gradients
on ImageNet, each model is characterised by its parameter count and its
per-iteration compute time on the paper's hardware class (RTX 2080 Ti,
batch 32).  Training speed then depends on the communication/computation
overlap, which is exactly what the paper's Figure 6 measures — VGG16 is
communication-bound (INC wins big), ResNet50 is compute-bound (all
systems tie), matching §6.3's observations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ModelProfile", "MODELS", "synthetic_gradient"]


@dataclass(frozen=True)
class ModelProfile:
    """Communication/computation profile of one DNN."""

    name: str
    parameters: int            # gradient elements per iteration
    compute_s: float           # forward+backward time per iteration
    samples_per_iteration: int = 32

    @property
    def gradient_bytes(self) -> int:
        return self.parameters * 4

    def comm_to_comp_ratio(self, bandwidth_bps: float) -> float:
        """Ideal-network communication time over computation time."""
        comm = self.gradient_bytes * 8 / bandwidth_bps
        return comm / self.compute_s


# Parameter counts are the canonical model sizes; compute times follow
# the relative throughputs reported for 2080 Ti-class GPUs.
MODELS: Dict[str, ModelProfile] = {
    "VGG16": ModelProfile("VGG16", parameters=138_000_000,
                          compute_s=0.105),
    "AlexNet": ModelProfile("AlexNet", parameters=61_000_000,
                            compute_s=0.028),
    "ResNet50": ModelProfile("ResNet50", parameters=25_600_000,
                             compute_s=0.145),
}


def synthetic_gradient(size: int, seed: int = 0, scale: float = 1e-3
                       ) -> List[float]:
    """A gradient-shaped vector: small, zero-centred values."""
    rng = random.Random(seed)
    return [rng.gauss(0.0, scale) for _ in range(size)]
