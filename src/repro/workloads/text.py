"""Synthetic text corpus for the WordCount (AsyncAgtr) workload.

Substitutes the paper's Yelp dataset: reviews are generated from a
Zipf-distributed vocabulary, which matches the heavy-tailed word
frequency statistics (Zipf's law) that make word counting an
interesting caching workload.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from .keys import ZipfGenerator

__all__ = ["SyntheticCorpus", "word_count"]

_SYLLABLES = ["ba", "co", "di", "fu", "ge", "hi", "jo", "ku", "la", "me",
              "no", "pa", "qui", "ro", "su", "ta", "ve", "wo", "xe", "zu"]


def _make_vocabulary(size: int, seed: int) -> List[str]:
    rng = random.Random(seed)
    vocab = set()
    while len(vocab) < size:
        word = "".join(rng.choice(_SYLLABLES)
                       for _ in range(rng.randint(2, 4)))
        vocab.add(word)
    return sorted(vocab)


class SyntheticCorpus:
    """Generates review-like documents with Zipfian word frequencies."""

    def __init__(self, vocabulary_size: int = 5000, zipf_s: float = 1.1,
                 words_per_doc: int = 80, seed: int = 0):
        if vocabulary_size < 1 or words_per_doc < 1:
            raise ValueError("vocabulary and document sizes must be >= 1")
        self.vocabulary = _make_vocabulary(vocabulary_size, seed)
        self.words_per_doc = words_per_doc
        self._sampler = ZipfGenerator(vocabulary_size, s=zipf_s, seed=seed)
        self.rng = random.Random(seed + 1)

    def document(self) -> str:
        words = [self.vocabulary[self._sampler.sample_index()]
                 for _ in range(self.words_per_doc)]
        return " ".join(words)

    def documents(self, count: int) -> Iterator[str]:
        for _ in range(count):
            yield self.document()


def word_count(documents) -> Dict[str, int]:
    """Reference (local, exact) word count for validating the INC result."""
    counts: Dict[str, int] = {}
    for document in documents:
        for word in document.split():
            counts[word] = counts.get(word, 0) + 1
    return counts
