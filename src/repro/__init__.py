"""NetRPC reproduction: in-network computation in remote procedure calls.

A faithful Python implementation of *NetRPC* (NSDI 2023) over a
discrete-event dataplane simulator.  See DESIGN.md for the architecture
and EXPERIMENTS.md for the paper-vs-measured evaluation.
"""

from . import control, core, inc, netsim, obs, protocol, switchsim

__version__ = "1.0.0"

__all__ = ["core", "inc", "switchsim", "netsim", "control", "obs",
           "protocol", "__version__"]
