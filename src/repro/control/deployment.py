"""Deployment builders: assemble a full NetRPC dataplane in one call.

These mirror the paper's testbed shapes (§6.1): a single-rack star and
the dumbbell of two switches with hosts on each side, plus an N-switch
chain for the multi-switch experiment (§6.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.inc import ClientAgent, ServerAgent
from repro.netsim import (
    Calibration,
    DEFAULT_CALIBRATION,
    Host,
    LossModel,
    Simulator,
    Topology,
)
from repro.netsim.topology import chain as chain_topo
from repro.netsim.topology import dumbbell as dumbbell_topo
from repro.netsim.topology import star as star_topo
from repro.obs import MetricsRegistry
from repro.switchsim import NetRPCSwitch

from .controller import Controller

__all__ = ["Deployment", "build_rack", "build_dumbbell", "build_chain"]

LossFactory = Callable[[], LossModel]


@dataclass
class Deployment:
    """A wired-up simulation: switches, hosts, agents, controller."""

    sim: Simulator
    cal: Calibration
    topology: Topology
    switches: List[NetRPCSwitch]
    clients: List[Host]
    servers: List[Host]
    client_agents: Dict[str, ClientAgent]
    server_agents: Dict[str, ServerAgent]
    controller: Controller
    metrics: Optional[MetricsRegistry] = None

    def client_agent(self, index: int = 0) -> ClientAgent:
        return self.client_agents[self.clients[index].name]

    def server_agent(self, index: int = 0) -> ServerAgent:
        return self.server_agents[self.servers[index].name]

    @property
    def server_name(self) -> str:
        return self.servers[0].name

    @property
    def client_names(self) -> List[str]:
        return [h.name for h in self.clients]


def _make_host(sim: Simulator, name: str, cal: Calibration) -> Host:
    return Host(sim, name, cores=cal.host_agent_cores,
                rx_cpu_cost_s=cal.host_pkt_cpu_s)


def _loss(factory: Optional[LossFactory]) -> Optional[LossModel]:
    return factory() if factory is not None else None


def build_rack(n_clients: int, n_servers: int = 1,
               cal: Calibration = DEFAULT_CALIBRATION, seed: int = 0,
               loss_factory: Optional[LossFactory] = None) -> Deployment:
    """One switch, all hosts directly attached (2-to-1 microbenchmarks)."""
    sim = Simulator(seed=seed)
    switch = NetRPCSwitch(sim, "sw0", cal=cal)
    clients = [_make_host(sim, f"c{i}", cal) for i in range(n_clients)]
    servers = [_make_host(sim, f"s{i}", cal) for i in range(n_servers)]
    topo = star_topo(sim, switch, clients + servers, cal=cal,
                     loss=_loss(loss_factory))
    # Fresh loss models per link when a factory is given (stateful models
    # must not be shared between links).
    if loss_factory is not None:
        for link in topo.links.values():
            link.loss = loss_factory()
    return _finish(sim, cal, topo, [switch], clients, servers)


def build_dumbbell(n_left: int, n_right: int,
                   cal: Calibration = DEFAULT_CALIBRATION, seed: int = 0,
                   loss_factory: Optional[LossFactory] = None) -> Deployment:
    """The paper's testbed: clients behind sw0, servers behind sw1."""
    sim = Simulator(seed=seed)
    sw0 = NetRPCSwitch(sim, "sw0", cal=cal, phys_base=0)
    sw1 = NetRPCSwitch(sim, "sw1", cal=cal,
                       phys_base=sw0.registers.capacity)
    clients = [_make_host(sim, f"c{i}", cal) for i in range(n_left)]
    servers = [_make_host(sim, f"s{i}", cal) for i in range(n_right)]
    topo = dumbbell_topo(sim, sw0, sw1, clients, servers, cal=cal,
                         loss=_loss(loss_factory))
    if loss_factory is not None:
        for link in topo.links.values():
            link.loss = loss_factory()
    for host in clients:
        sw1.add_route(host.name, "sw0")
    for host in servers:
        sw0.add_route(host.name, "sw1")
    return _finish(sim, cal, topo, [sw0, sw1], clients, servers)


def build_chain(n_switches: int, n_clients: int, n_servers: int = 1,
                cal: Calibration = DEFAULT_CALIBRATION, seed: int = 0
                ) -> Deployment:
    """N chained switches: clients at the head, servers at the tail (§6.6)."""
    if n_switches < 1:
        raise ValueError("need at least one switch")
    sim = Simulator(seed=seed)
    switches = []
    base = 0
    for index in range(n_switches):
        switch = NetRPCSwitch(sim, f"sw{index}", cal=cal, phys_base=base)
        base += switch.registers.capacity
        switches.append(switch)
    if n_switches > 1:
        topo = chain_topo(sim, switches, cal=cal)
    else:
        topo = Topology(sim)
        topo.add_node(switches[0])
    clients = [_make_host(sim, f"c{i}", cal) for i in range(n_clients)]
    servers = [_make_host(sim, f"s{i}", cal) for i in range(n_servers)]
    for host in clients:
        topo.connect(host, switches[0], cal.link_bandwidth_bps,
                     cal.host_link_delay_s,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    for host in servers:
        topo.connect(host, switches[-1], cal.link_bandwidth_bps,
                     cal.host_link_delay_s,
                     queue_capacity_pkts=cal.switch_queue_capacity_pkts,
                     ecn_threshold_pkts=cal.switch_ecn_threshold_pkts)
    # Static routes along the chain.
    for index, switch in enumerate(switches):
        for host in clients:
            if index > 0:
                switch.add_route(host.name, switches[index - 1].name)
        for host in servers:
            if index < n_switches - 1:
                switch.add_route(host.name, switches[index + 1].name)
    return _finish(sim, cal, topo, switches, clients, servers)


def _finish(sim: Simulator, cal: Calibration, topo: Topology,
            switches: List[NetRPCSwitch], clients: List[Host],
            servers: List[Host]) -> Deployment:
    client_agents = {}
    for host in clients:
        tor = next(iter(host.egress))
        client_agents[host.name] = ClientAgent(sim, host, tor, cal=cal)
    server_agents = {}
    for host in servers:
        tor = next(iter(host.egress))
        server_agents[host.name] = ServerAgent(sim, host, tor, cal=cal)
    controller = Controller(sim, switches, cal=cal)
    for agent in client_agents.values():
        controller.attach_client_agent(agent)
    for agent in server_agents.values():
        controller.attach_server_agent(agent)
    metrics = _build_registry(sim, topo, switches, client_agents,
                              server_agents, controller)
    return Deployment(sim=sim, cal=cal, topology=topo, switches=switches,
                      clients=clients, servers=servers,
                      client_agents=client_agents,
                      server_agents=server_agents, controller=controller,
                      metrics=metrics)


def _build_registry(sim: Simulator, topo: Topology,
                    switches: List[NetRPCSwitch],
                    client_agents: Dict[str, ClientAgent],
                    server_agents: Dict[str, ServerAgent],
                    controller: Controller) -> MetricsRegistry:
    """One namespaced registry spanning every instrument in the build.

    The registry holds strong references; it lives exactly as long as
    the :class:`Deployment` that owns it, so registration never extends
    an instrument's lifetime.
    """
    reg = MetricsRegistry("deployment")
    reg.register("sim", sim,
                 snapshot=lambda s: {"events": s._sequence, "now": s.now})
    for link in topo.links.values():
        reg.register(f"link.{link.name}", link.stats)
    for switch in switches:
        reg.register(f"switch.{switch.name}", switch.stats)
        reg.register(f"pipeline.{switch.name}", switch.pipeline.stats)
    for name, agent in client_agents.items():
        reg.register(f"client.{name}", agent.host.stats)
        reg.register(f"client.{name}.agent", agent,
                     snapshot=lambda a: dict(a.stats))
        reg.register(f"client.{name}.flows", agent,
                     snapshot=_flow_snapshot)
    for name, agent in server_agents.items():
        reg.register(f"server.{name}", agent.host.stats)
        reg.register(f"server.{name}.agent", agent,
                     snapshot=lambda a: dict(a.stats))
        reg.register(f"server.{name}.flows", agent,
                     snapshot=_flow_snapshot)
    reg.register("control.audit", controller.audit)
    return reg


def _flow_snapshot(agent) -> Dict[str, float]:
    """Aggregate transport/congestion counters across an agent's flows."""
    total: Dict[str, float] = {}
    for flow in agent.all_flows():
        for key, value in flow.stats.items():
            total[key] = total.get(key, 0) + value
        for key, value in flow.cc.stats.items():
            total[f"cc.{key}"] = total.get(f"cc.{key}", 0) + value
    total["cwnd"] = sum(f.cc.cwnd for f in agent.all_flows())
    return total
