"""The system-wide NetRPC controller (paper Figure 1, §3.2, §5.2.2).

One controller process manages the whole deployment:

* application registration and name lookup: assigns GAIDs, reserves
  switch memory (FCFS, as in the paper), installs admission entries on
  every switch at runtime — the switch program itself never restarts;
* reliable-flow slot allocation: SRRT slots are kept consistent across
  all switches on the path so a flow's flip-bit state exists everywhere;
* graceful degradation: when no switch memory is available the
  application is registered in software-only mode ("fallback on network
  fabrics without INC support", §5.2.1);
* the two-level timeout that reclaims switch memory leaked by crashed
  hosts (§5.2.2) lives in :mod:`repro.control.timeout`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.inc import AppConfig, ClientAgent, MemoryRegion, ServerAgent
from repro.netsim import Calibration, Counter, DEFAULT_CALIBRATION, Simulator
from repro.obs.tracer import TRACE
from repro.protocol import RIPProgram
from repro.switchsim import AppEntry, NetRPCSwitch

__all__ = ["Controller", "Registration", "MemoryPool"]


class MemoryPool:
    """FCFS reservation over the combined register space of all switches.

    Values grow from the bottom of the global physical space; CntFwd
    counter regions grow from the top of the *edge* switch (they must
    live where forwarding verdicts are made).
    """

    def __init__(self, total: int, edge_base: int, edge_capacity: int):
        self.total = total
        self._value_next = 0
        self._counter_next = edge_base + edge_capacity
        self._counter_floor = edge_base
        # Regions returned by deregistered applications, reusable by
        # later registrations (best-fit).
        self._freed_values: List[MemoryRegion] = []
        self._freed_counters: List[MemoryRegion] = []

    @staticmethod
    def _best_fit(freed: List[MemoryRegion], size: int
                  ) -> Optional[MemoryRegion]:
        candidates = [r for r in freed if r.size >= size]
        if not candidates:
            return None
        region = min(candidates, key=lambda r: r.size)
        freed.remove(region)
        if region.size > size:
            freed.append(MemoryRegion(region.base + size,
                                      region.size - size))
        return MemoryRegion(region.base, size)

    def reserve_values(self, size: int) -> Optional[MemoryRegion]:
        reused = self._best_fit(self._freed_values, size)
        if reused is not None:
            return reused
        if self._value_next + size > min(self.total, self._counter_next):
            return None
        region = MemoryRegion(self._value_next, size)
        self._value_next += size
        return region

    def reserve_counters(self, size: int) -> Optional[MemoryRegion]:
        reused = self._best_fit(self._freed_counters, size)
        if reused is not None:
            return reused
        base = self._counter_next - size
        if base < max(self._counter_floor, self._value_next):
            return None
        self._counter_next = base
        return MemoryRegion(base, size)

    def reserve_values_on_edge(self, size: int) -> Optional[MemoryRegion]:
        """Value region constrained to the edge switch.

        Map-keyed counting applications (test&set locks, per-key votes)
        use their value registers as CntFwd accumulators, and forwarding
        verdicts are made only at the server-edge switch — so those
        registers must live there.
        """
        return self.reserve_counters(size)

    def release(self, region: MemoryRegion, counters: bool = False) -> None:
        """Return a deregistered application's reservation to the pool."""
        if region.size == 0:
            return
        (self._freed_counters if counters
         else self._freed_values).append(region)

    @property
    def free_values(self) -> int:
        reusable = sum(r.size for r in self._freed_values)
        return max(0, min(self.total, self._counter_next)
                   - self._value_next) + reusable


@dataclass
class Registration:
    """The controller's record of one running application."""

    app_name: str
    configs: List[AppConfig]
    server: str
    clients: Tuple[str, ...]
    first_timeout_fired: bool = False

    @property
    def gaids(self) -> List[int]:
        return [c.gaid for c in self.configs]


class Controller:
    """Registration, name lookup, and runtime switch configuration."""

    def __init__(self, sim: Simulator, switches: Sequence[NetRPCSwitch],
                 cal: Calibration = DEFAULT_CALIBRATION):
        if not switches:
            raise ValueError("a deployment needs at least one switch")
        self.sim = sim
        self.switches = list(switches)
        self.cal = cal
        edge = self.switches[-1]
        total = sum(sw.registers.capacity for sw in self.switches)
        self.pool = MemoryPool(total, edge.phys_base,
                               edge.registers.capacity)
        self._gaids = itertools.count(1)
        self._registrations: Dict[str, Registration] = {}
        self._client_agents: Dict[str, ClientAgent] = {}
        self._server_agents: Dict[str, ServerAgent] = {}
        # GAID -> installed multicast members, kept so the failover path
        # can re-install admission entries verbatim after a switch loses
        # its dataplane state (mcast_groups may differ from clients).
        self._installed_members: Dict[int, Tuple[str, ...]] = {}
        # Failover audit trail: counters plus an ordered event log of
        # (what, when, switch, entries_reinstalled, flows_resynced)
        # tuples — both picklable, so sweep workers can ship them back.
        self.audit = Counter()
        self.audit_log: List[tuple] = []

    def managed_switch_names(self) -> Tuple[str, ...]:
        """Names of the switches this controller configures, in path order.

        Shard planning (:mod:`repro.shard.placement`) consumes this to
        decide which shard must host the control plane: the controller
        reconfigures its switches synchronously (same-simulator method
        calls), so every managed switch has to live in the controller's
        own shard.
        """
        return tuple(sw.name for sw in self.switches)

    # ------------------------------------------------------------------
    # agent registry (hosts announce their agents at startup)
    # ------------------------------------------------------------------
    def attach_client_agent(self, agent: ClientAgent) -> None:
        self._client_agents[agent.host.name] = agent

    def attach_server_agent(self, agent: ServerAgent) -> None:
        self._server_agents[agent.host.name] = agent

    # ------------------------------------------------------------------
    # registration / name lookup
    # ------------------------------------------------------------------
    def register(self, programs: Sequence[RIPProgram], server: str,
                 clients: Sequence[str], value_slots: int,
                 counter_slots: int = 0, linear=False,
                 cache_policy: str = "netrpc", cc_enabled: bool = True,
                 flows_per_host: int = 0,
                 software_only: bool = False,
                 mcast_groups: Optional[Sequence[Optional[Sequence[str]]]]
                 = None, cc_mode: str = "aimd") -> List[AppConfig]:
        """Register one application (all its RPC methods share state).

        Returns one :class:`AppConfig` per program, in order.  ``linear``
        is a bool or a per-program sequence of bools (array-addressed
        methods and map-addressed methods can share one app).  If switch
        memory is exhausted the app still registers, in software-only
        mode.
        """
        if not programs:
            raise ValueError("register() needs at least one RIP program")
        app_name = programs[0].app_name
        if any(p.app_name != app_name for p in programs):
            raise ValueError("all programs of a registration must share "
                             "one AppName")
        if app_name in self._registrations:
            raise ValueError(f"application {app_name!r} already registered")
        if server not in self._server_agents:
            raise KeyError(f"no server agent on host {server!r}")
        for client in clients:
            if client not in self._client_agents:
                raise KeyError(f"no client agent on host {client!r}")

        if isinstance(linear, (list, tuple)):
            all_linear = all(linear)
        else:
            all_linear = bool(linear)
        # Fp accumulators hold ordered encodings, so they can never
        # double as CntFwd counters: a counting fp program needs the
        # linear layout's dedicated side-counter region.
        for program in programs:
            if program.agg.is_float and program.cntfwd.counts \
                    and not all_linear:
                raise ValueError(
                    f"program {program.app_name!r}: agg={program.agg.value} "
                    f"with a counting CntFwd requires linear addressing "
                    f"(fp registers cannot serve as counters)")
        # Map-keyed counting apps count on their value registers, which
        # must live where CntFwd verdicts are made (the edge switch).
        needs_edge_values = any(p.cntfwd.counts for p in programs) \
            and not all_linear
        if software_only:
            value_region = counter_region = None
        elif needs_edge_values:
            value_region = self.pool.reserve_values_on_edge(value_slots) \
                if value_slots else MemoryRegion(0, 0)
            counter_region = self.pool.reserve_counters(counter_slots) \
                if counter_slots else MemoryRegion(0, 0)
        else:
            value_region = self.pool.reserve_values(value_slots) \
                if value_slots else MemoryRegion(0, 0)
            counter_region = self.pool.reserve_counters(counter_slots) \
                if counter_slots else MemoryRegion(0, 0)
        has_switch = value_region is not None and counter_region is not None
        if not has_switch:
            value_region = MemoryRegion(0, 0)
            counter_region = MemoryRegion(0, 0)

        flows = flows_per_host or self.cal.flows_per_app
        if isinstance(linear, (list, tuple)):
            linear_flags = list(linear)
            if len(linear_flags) != len(programs):
                raise ValueError("one linear flag per program required")
        else:
            linear_flags = [bool(linear)] * len(programs)
        configs = []
        for program, linear_flag in zip(programs, linear_flags):
            config = AppConfig(
                gaid=next(self._gaids), program=program, server=server,
                clients=tuple(clients), value_region=value_region,
                counter_region=counter_region, linear=linear_flag,
                cache_policy=cache_policy, cc_enabled=cc_enabled,
                cc_mode=cc_mode, flows_per_host=flows,
                has_switch=has_switch)
            configs.append(config)

        groups = list(mcast_groups) if mcast_groups is not None \
            else [None] * len(configs)
        if len(groups) != len(configs):
            raise ValueError("one mcast group (or None) per program")
        self._install_switch_entries(configs, server, tuple(clients),
                                     groups)
        self._wire_agents(configs, server, tuple(clients), flows)
        self._registrations[app_name] = Registration(
            app_name=app_name, configs=configs, server=server,
            clients=tuple(clients))
        return configs

    def lookup(self, app_name: str) -> Registration:
        try:
            return self._registrations[app_name]
        except KeyError:
            raise KeyError(f"unknown application {app_name!r}") from None

    def registered_apps(self) -> List[str]:
        return sorted(self._registrations)

    # ------------------------------------------------------------------
    def _install_switch_entries(self, configs: List[AppConfig], server: str,
                                clients: Tuple[str, ...],
                                groups: Sequence[Optional[Sequence[str]]]
                                ) -> None:
        edge = self.switches[-1]
        for config, group in zip(configs, groups):
            if not config.has_switch:
                continue
            members = tuple(group) if group is not None else clients
            self._installed_members[config.gaid] = members
            for switch in self.switches:
                switch.install_app(AppEntry(
                    gaid=config.gaid, program=config.program, server=server,
                    clients=members, edge=switch is edge))

    def _allocate_slot(self) -> int:
        """One SRRT slot, consistent across every switch on the path."""
        slots = {switch.allocate_flow_slot() for switch in self.switches}
        if len(slots) != 1:  # pragma: no cover - defensive
            raise RuntimeError("switch SRRT allocators diverged")
        return slots.pop()

    def _wire_agents(self, configs: List[AppConfig], server: str,
                     clients: Tuple[str, ...], flows: int) -> None:
        client_slots = {c: [self._allocate_slot() for _ in range(flows)]
                        for c in clients}
        mcast_slots = [self._allocate_slot() for _ in range(flows)]
        unicast_slots = {c: self._allocate_slot() for c in clients}
        for config in configs:
            for client in clients:
                self._client_agents[client].register_app(
                    config, client_slots[client])
            self._server_agents[server].register_app(
                config, self.switches, mcast_slots, unicast_slots)

    # ------------------------------------------------------------------
    def deregister(self, app_name: str) -> None:
        """Remove an application: switch entries gone, memory reclaimed.

        The server agent keeps the application's data (the second-level
        timeout decides its fate, §5.2.2); the registers return to the
        pool for future registrations.
        """
        registration = self._registrations.pop(app_name)
        released = set()
        for config in registration.configs:
            if not config.has_switch:
                continue
            self._installed_members.pop(config.gaid, None)
            for switch in self.switches:
                switch.remove_app(config.gaid)
            key = (config.value_region.base, config.value_region.size)
            if key not in released:
                released.add(key)
                self.pool.release(config.value_region)
                self.pool.release(config.counter_region, counters=True)

    # ------------------------------------------------------------------
    def handle_switch_reboot(self, switch: NetRPCSwitch) -> None:
        """Failover: restore one rebooted switch's dataplane state.

        Invoked (after a detection/control delay) when a switch lost its
        volatile state: admission entries are re-installed verbatim, and
        every live sender's flip-bit slot is rebuilt from the transport's
        own window state so in-flight retransmissions classify as fresh —
        matching the registers they feed, which the same reboot wiped
        (§5.2.2 failover).  ``last_seen`` is stamped *now* so the re-
        installed entries do not instantly trip the first-level timeout.
        """
        now = self.sim.now
        edge = self.switches[-1]
        entries = 0
        for registration in self._registrations.values():
            for config in registration.configs:
                if not config.has_switch or config.gaid in switch.admission:
                    continue
                members = self._installed_members.get(
                    config.gaid, registration.clients)
                switch.install_app(AppEntry(
                    gaid=config.gaid, program=config.program,
                    server=registration.server, clients=members,
                    edge=switch is edge, last_seen=now))
                entries += 1
        agents = list(self._client_agents.values()) + \
            list(self._server_agents.values())
        flows = 0
        for agent in agents:
            for flow in agent.all_flows():
                if flow.srrt >= 0:
                    switch.flow_state.restore(flow.srrt,
                                              flow.flip_resync_bits())
                    flows += 1
                    if TRACE.enabled:
                        TRACE.instant("inc.resync", now, switch.name,
                                      (flow.srrt,))
        audit = self.audit
        audit.add("failovers")
        audit.add("entries_reinstalled", entries)
        audit.add("flows_resynced", flows)
        self.audit_log.append(("failover", now, switch.name, entries, flows))
        if TRACE.enabled:
            TRACE.instant("control.failover", now, switch.name,
                          (entries, flows))

    # ------------------------------------------------------------------
    def poll_switch_timestamps(self) -> Dict[int, float]:
        """Merged last-seen time per GAID across switches."""
        merged: Dict[int, float] = {}
        for switch in self.switches:
            for gaid, stamp in switch.poll_timestamps().items():
                merged[gaid] = max(merged.get(gaid, 0.0), stamp)
        return merged

    def server_agent_for(self, app_name: str) -> ServerAgent:
        registration = self.lookup(app_name)
        return self._server_agents[registration.server]
