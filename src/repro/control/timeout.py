"""The two-level timeout that prevents switch memory leaks (paper §5.2.2).

The controller polls each switch for per-GAID last-seen timestamps.  A
stale timestamp triggers the *first-level* timeout: the server agent
retrieves the application's INC map from the switch (registers are
small and precious, so this happens quickly).  If the application stays
silent past the *second-level* timeout, the server agent hands the
saved data to the user stub — or drops it when the stub is gone.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Simulator

from .controller import Controller

__all__ = ["TimeoutMonitor"]


class TimeoutMonitor:
    """Polls switches and drives the two timeout levels."""

    def __init__(self, sim: Simulator, controller: Controller,
                 cal: Calibration = DEFAULT_CALIBRATION,
                 on_expire: Optional[Callable[[str, dict], None]] = None):
        self.sim = sim
        self.controller = controller
        self.cal = cal
        self.on_expire = on_expire
        self.events: list = []                 # (time, level, app_name)
        self._first_fired_at: Dict[str, float] = {}
        self._expired: set = set()
        # The poll loop is a repeating cancellable timer, not a
        # generator process: one scheduler entry per poll instead of a
        # Timeout event + process resume pair, and stop() is an O(1)
        # lazy cancellation rather than an interrupt.
        self._timer = sim.call_later(cal.controller_poll_interval_s,
                                     self._tick, None)

    def _tick(self, _unused) -> None:
        self._poll_once()
        self._timer = self.sim.call_later(
            self.cal.controller_poll_interval_s, self._tick, None)

    def stop(self) -> None:
        """Cancel the poll loop; the monitor never fires again."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _poll_once(self) -> None:
        now = self.sim.now
        stamps = self.controller.poll_switch_timestamps()
        for app_name in self.controller.registered_apps():
            if app_name in self._expired:
                continue
            registration = self.controller.lookup(app_name)
            last_seen = max((stamps.get(g, 0.0) for g in registration.gaids),
                            default=0.0)
            first_at = self._first_fired_at.get(app_name)
            if first_at is None:
                if now - last_seen >= self.cal.first_level_timeout_s:
                    self._fire_first(app_name, now)
            else:
                if last_seen > first_at:
                    # The app spoke again; re-arm the first level.
                    del self._first_fired_at[app_name]
                elif now - first_at >= self.cal.second_level_timeout_s:
                    self._fire_second(app_name, now)

    def _fire_first(self, app_name: str, now: float) -> None:
        agent = self.controller.server_agent_for(app_name)
        retrieved = agent.retrieve_app(app_name)
        self._first_fired_at[app_name] = now
        self.events.append((now, 1, app_name, retrieved))

    def _fire_second(self, app_name: str, now: float) -> None:
        agent = self.controller.server_agent_for(app_name)
        saved = agent.expire_app(app_name)
        self._expired.add(app_name)
        self.events.append((now, 2, app_name, len(saved)))
        if self.on_expire is not None:
            self.on_expire(app_name, saved)

    def first_level_fired(self, app_name: str) -> bool:
        return app_name in self._first_fired_at or app_name in self._expired

    def second_level_fired(self, app_name: str) -> bool:
        return app_name in self._expired
