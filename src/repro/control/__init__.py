"""Control plane: the NetRPC controller, timeouts, and deployment builders."""

from .controller import Controller, MemoryPool, Registration
from .deployment import Deployment, build_chain, build_dumbbell, build_rack
from .timeout import TimeoutMonitor

__all__ = [
    "Controller", "MemoryPool", "Registration",
    "Deployment", "build_rack", "build_dumbbell", "build_chain",
    "TimeoutMonitor",
]
