"""Worker-side capture of observability state for the shard merge.

Sharded runs (``repro.shard.runner``) execute each shard's simulator in
a forked worker, so the process-wide :data:`~repro.obs.tracer.TRACE`
ring and any worker :class:`~repro.obs.registry.MetricsRegistry` live
(and would die) in the child.  This module defines what a worker ships
back over the control channel at run end:

* :class:`ShardCapture` — one shard's surviving flight-recorder records
  (epoch already rewritten to the shard's merged-trace ``pid`` lane),
  its per-kind span census, the worker ring's total/dropped counters,
  and the shard registry's nested metrics snapshot;
* :class:`ShardObs` — the coordinator-side container the merge exporter
  consumes: per-shard captures plus the per-round barrier telemetry and
  transport totals only the coordinator can see.

Records go over the wire in the fixed-width-codec spirit of
``repro.shard.codec``: one packed struct per record (lane, interned
kind/where ids, flags, start, end) with the kind/where string tables
shipped once per capture and the rare ``args`` tuples as a sparse
``(index, args)`` exception list — no per-record pickling.

Capture is observe-only by construction: bucketing, lane rewriting and
encoding all happen *after* ``Simulator.run`` has finished the last
round, touch no simulator state, and draw from no RNG, so a traced
sharded run stays bit-identical to an untraced one (the soundness
argument is spelled out in DESIGN.md §4.11).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .tracer import FlightRecorder, Record, TRACE

__all__ = ["ShardCapture", "ShardObs", "capture_shards",
           "encode_records", "decode_records", "shard_lane"]

# lane (u32), kind id (u16), where id (u16), flags (u8), start, end
_REC = struct.Struct("<IHHBdd")
_FLAG_END = 1            # record has an end timestamp (span, not instant)
_MAX_INTERN = 0xFFFF


def shard_lane(shard_id: int) -> int:
    """Merged-trace ``pid`` for a shard (lane 0 is the coordinator)."""
    return shard_id + 1


def encode_records(records: List[Record]) -> Dict[str, Any]:
    """Pack records into one fixed-width blob + interned string tables.

    ``args`` tuples are rare (only flow-stitch and taxonomy-named spans
    carry them), so they ride a sparse ``(record index, args)`` list
    instead of widening every record.  Falls back to the raw list if a
    capture somehow interns more than 2**16 distinct strings.
    """
    kinds: Dict[str, int] = {}
    wheres: Dict[str, int] = {}
    blob = bytearray(_REC.size * len(records))
    args_exc: List[Tuple[int, tuple]] = []
    offset = 0
    for i, (lane, kind, start, end, where, args) in enumerate(records):
        kid = kinds.setdefault(kind, len(kinds))
        wid = wheres.setdefault(where, len(wheres))
        if kid > _MAX_INTERN or wid > _MAX_INTERN:
            return {"n": len(records), "raw": list(records)}
        flags = 0
        end_f = 0.0
        if end is not None:
            flags |= _FLAG_END
            end_f = end
        if args is not None:
            args_exc.append((i, args))
        _REC.pack_into(blob, offset, lane, kid, wid, flags, start, end_f)
        offset += _REC.size
    return {"n": len(records), "blob": bytes(blob),
            "kinds": list(kinds), "wheres": list(wheres),
            "args": args_exc}


def decode_records(wire: Dict[str, Any]) -> List[Record]:
    raw = wire.get("raw")
    if raw is not None:
        return [tuple(rec) for rec in raw]
    kinds = wire["kinds"]
    wheres = wire["wheres"]
    args_of = dict(wire["args"])
    out: List[Record] = []
    for i, (lane, kid, wid, flags, start, end_f) in enumerate(
            _REC.iter_unpack(wire["blob"])):
        end = end_f if flags & _FLAG_END else None
        out.append((lane, kinds[kid], start, end, wheres[wid],
                    args_of.get(i)))
    return out


@dataclass
class ShardCapture:
    """One shard's observability state, as shipped by its worker.

    ``records`` carry the shard's merged-trace lane in the epoch slot
    (``shard_lane(shard_id)``), normalized at capture time so a capture
    is byte-equal no matter which pool/transport produced it.  ``total``
    counts this shard's surviving records; ``dropped`` is the *worker
    ring's* eviction count (shared by co-resident shards — nonzero means
    censuses under-report and span/count cross-checks go best-effort).
    ``metrics`` is the shard registry's ``snapshot_nested()``; worker
    registries hold only deterministic values (simulated clocks, event
    and frame counts — never wall time), so it too is pool-invariant.
    """

    shard_id: int
    lane: int
    records: List[Record] = field(default_factory=list)
    span_counts: Dict[str, int] = field(default_factory=dict)
    total: int = 0
    dropped: int = 0
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {"shard_id": self.shard_id, "lane": self.lane,
                "records": encode_records(self.records),
                "span_counts": dict(self.span_counts),
                "total": self.total, "dropped": self.dropped,
                "metrics": self.metrics}

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "ShardCapture":
        return cls(shard_id=wire["shard_id"], lane=wire["lane"],
                   records=decode_records(wire["records"]),
                   span_counts=dict(wire["span_counts"]),
                   total=wire["total"], dropped=wire["dropped"],
                   metrics=wire["metrics"])


@dataclass
class ShardObs:
    """Everything the merge exporter needs from one sharded run.

    ``rounds`` is the coordinator's per-barrier telemetry log (clocks
    before the round, granted horizons, earliest-action bases, messages
    moved, frames/bytes shipped, cumulative skips/spills) — the
    coordinator-side view no per-process tracer can record.  ``shards``
    maps shard id to its wall/clock summary and ``transport`` holds the
    run-level interconnect totals.
    """

    captures: Dict[int, ShardCapture] = field(default_factory=dict)
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    shards: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    transport: Dict[str, Any] = field(default_factory=dict)

    @property
    def dropped_records(self) -> int:
        """Worst worker-ring eviction count (0 = every census exact)."""
        return max((cap.dropped for cap in self.captures.values()),
                   default=0)

    @property
    def total_records(self) -> int:
        return sum(len(cap.records) for cap in self.captures.values())


def capture_shards(epoch_of: Dict[int, int],
                   recorder: Optional[FlightRecorder] = None,
                   metrics_of: Optional[Dict[int, Dict[str, Dict]]] = None,
                   ) -> Dict[int, ShardCapture]:
    """Bucket a recorder's surviving records into per-shard captures.

    ``epoch_of`` maps shard id -> the tracer epoch that shard's
    ``Simulator`` opened in *this* process (workers=1 shares one ring
    across every shard; forked workers each hold their resident subset).
    Epochs not owned by any listed shard (reference runs, earlier
    experiments) are ignored; each record's epoch is rewritten to the
    shard's stable merged-trace lane so captures compare byte-equal
    across pools and transports.
    """
    if recorder is None:
        recorder = TRACE
    shard_of_epoch = {epoch: sid for sid, epoch in epoch_of.items()
                      if epoch > 0}
    buckets: Dict[int, List[Record]] = {sid: [] for sid in epoch_of}
    for epoch, bucket in recorder.records_by_epoch().items():
        sid = shard_of_epoch.get(epoch)
        if sid is None:
            continue
        lane = shard_lane(sid)
        dst = buckets[sid]
        for _epoch, kind, start, end, where, args in bucket:
            dst.append((lane, kind, start, end, where, args))
    out: Dict[int, ShardCapture] = {}
    dropped = recorder.dropped
    for sid in sorted(buckets):
        records = buckets[sid]
        counts: Dict[str, int] = {}
        for rec in records:
            kind = rec[1]
            counts[kind] = counts.get(kind, 0) + 1
        out[sid] = ShardCapture(
            shard_id=sid, lane=shard_lane(sid), records=records,
            span_counts=counts, total=len(records), dropped=dropped,
            metrics=(metrics_of or {}).get(sid, {}))
    return out
