"""One namespaced registry over the repo's ad-hoc metric instruments.

Before this module, every layer owned loose ``Counter`` / ``TimeSeries``
/ ``RateMeter`` / ``LatencyRecorder`` instances (plus plain stats
dicts on the agents), each enabled/disabled independently — two bulk
drivers that disabled different subsets would silently diverge.  A
:class:`MetricsRegistry` subsumes them:

* ``register(name, obj)`` files any instrument under a dotted name
  (``"link.c0->sw0"``, ``"pipeline.sw0"``, ``"control.audit"``);
  duplicate names get a ``#N`` suffix instead of clobbering;
* ``snapshot()`` / ``diff()`` flatten everything into one
  ``{"entry.key": value}`` dict for judging and export;
* ``disable_all()`` / ``enable_all()`` route the bulk on/off switch
  through one place, so enable state cannot desynchronise across
  instances (the registry re-applies its state to late registrations).

Lifetime: the registry holds strong references to its instruments (they
are owned by the same deployment and die together); the module-level
:data:`_ALL` set holds only *weak* references to registries, so a
finished deployment is garbage-collected normally.  While a traced run
is collecting (:func:`keep_registries`), registries are additionally
retained — bounded by :data:`KEEP_LIMIT`, older ones frozen to a final
snapshot — so the end-of-run metrics dump can see deployments that
would otherwise be dead by export time.

Duck-typed snapshots keep this module import-free of the instrument
classes (no cycles): anything with ``as_dict``/``summary``/
``average_gbps``/``window_mean`` — or a ``snapshot`` callable passed at
registration — participates.
"""

from __future__ import annotations

import itertools
import json
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "all_registries",
    "disable_all_metrics",
    "enable_all_metrics",
    "set_default_enabled",
    "keep_registries",
    "collected_snapshots",
    "KEEP_LIMIT",
]

_IDS = itertools.count()
_ALL: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()
_DEFAULT_ENABLED = True

# Traced-run collection: strong refs to the most recent registries plus
# frozen snapshots of evicted ones (bounded memory for long sweeps).
KEEP_LIMIT = 64
_KEPT: Optional[List["MetricsRegistry"]] = None
_FROZEN: List[Tuple[str, Dict[str, float]]] = []


def _auto_snapshot(obj: Any) -> Dict[str, Any]:
    """Best-effort flat view of one instrument (duck-typed dispatch)."""
    as_dict = getattr(obj, "as_dict", None)
    if as_dict is not None:                       # Counter
        return as_dict()
    summary = getattr(obj, "summary", None)
    if summary is not None:                       # LatencyRecorder
        return summary()
    if hasattr(obj, "average_gbps"):              # RateMeter
        return {"total_bytes": obj.total_bytes,
                "average_gbps": obj.average_gbps()}
    if hasattr(obj, "window_mean"):               # TimeSeries
        last = obj.last()
        out: Dict[str, Any] = {"samples": len(obj)}
        if last is not None:
            out["last_t"], out["last_v"] = last
        return out
    if isinstance(obj, dict):
        return dict(obj)
    stats = getattr(obj, "stats", None)
    if stats is not None:                         # nodes, agents, flows
        return _auto_snapshot(stats)
    raise TypeError(f"no snapshot strategy for {type(obj).__name__}; "
                    f"pass snapshot= explicitly")


def _has_strategy(obj: Any) -> bool:
    """Whether :func:`_auto_snapshot` can handle ``obj`` (fail fast at
    registration, not at export time)."""
    if isinstance(obj, dict):
        return True
    if any(hasattr(obj, attr) for attr in
           ("as_dict", "summary", "average_gbps", "window_mean")):
        return True
    stats = getattr(obj, "stats", None)
    return stats is not None and _has_strategy(stats)


class MetricsRegistry:
    """Namespaced collection of metric instruments with one on/off state."""

    def __init__(self, name: str = ""):
        self.name = f"{name or 'registry'}-{next(_IDS)}"
        self.enabled = _DEFAULT_ENABLED
        # name -> (instrument, snapshot_fn)
        self._entries: Dict[str, Tuple[Any, Callable[[Any], Dict]]] = {}
        _ALL.add(self)
        if _KEPT is not None:
            _KEPT.append(self)
            while len(_KEPT) > KEEP_LIMIT:
                old = _KEPT.pop(0)
                _FROZEN.append((old.name, old.snapshot()))

    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any,
                 snapshot: Optional[Callable[[Any], Dict]] = None) -> Any:
        """File ``obj`` under ``name``; returns ``obj`` for chaining.

        The registry's current enabled state is applied immediately, so
        an instrument registered after ``disable_all()`` cannot stay
        enabled by accident (the desync this module exists to prevent).
        """
        if snapshot is None and not _has_strategy(obj):
            raise TypeError(f"no snapshot strategy for "
                            f"{type(obj).__name__}; pass snapshot= "
                            f"explicitly")
        unique, n = name, 1
        while unique in self._entries:
            n += 1
            unique = f"{name}#{n}"
        self._entries[unique] = (obj, snapshot or _auto_snapshot)
        self._apply_state(obj)
        return obj

    def names(self) -> List[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # ------------------------------------------------------------------
    # the single bulk on/off switch (satellite: no per-instance desync)
    # ------------------------------------------------------------------
    def _apply_state(self, obj: Any) -> None:
        method = getattr(obj, "enable" if self.enabled else "disable", None)
        if method is not None:
            method()

    def disable_all(self) -> None:
        """Turn every registered instrument off (bulk-run fast path)."""
        self.enabled = False
        for obj, _snap in self._entries.values():
            self._apply_state(obj)

    def enable_all(self) -> None:
        self.enabled = True
        for obj, _snap in self._entries.values():
            self._apply_state(obj)

    # ------------------------------------------------------------------
    # snapshot / diff / export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Flat ``{"entry.key": value}`` view of every instrument."""
        out: Dict[str, Any] = {}
        for name, (obj, snap) in self._entries.items():
            for key, value in snap(obj).items():
                out[f"{name}.{key}"] = value
        return out

    def snapshot_nested(self) -> Dict[str, Dict[str, Any]]:
        """Per-entry view (one dict per instrument), for JSONL export."""
        return {name: dict(snap(obj))
                for name, (obj, snap) in self._entries.items()}

    @staticmethod
    def diff(before: Dict[str, Any], after: Dict[str, Any]
             ) -> Dict[str, Any]:
        """Numeric deltas between two snapshots (changed keys only).

        Keys present on one side only appear verbatim under ``+key`` /
        ``-key`` so a diff never silently hides a metric appearing or
        vanishing between the two snapshots.
        """
        out: Dict[str, Any] = {}
        for key, value in after.items():
            if key not in before:
                out[f"+{key}"] = value
            elif isinstance(value, (int, float)) and \
                    isinstance(before[key], (int, float)):
                if value != before[key]:
                    out[key] = value - before[key]
            elif value != before[key]:
                out[key] = (before[key], value)
        for key, value in before.items():
            if key not in after:
                out[f"-{key}"] = value
        return out

    def export_jsonl(self, path) -> int:
        """Write one JSON line per instrument; returns the line count."""
        lines = 0
        with open(path, "w") as fh:
            for name, values in self.snapshot_nested().items():
                fh.write(json.dumps({"registry": self.name, "metric": name,
                                     "values": values}, sort_keys=True,
                                    default=str) + "\n")
                lines += 1
        return lines


# ---------------------------------------------------------------------------
# module-level helpers over every live registry
# ---------------------------------------------------------------------------
def all_registries() -> List[MetricsRegistry]:
    """Every live registry, oldest first (deterministic by creation id)."""
    return sorted(_ALL, key=lambda r: int(r.name.rsplit("-", 1)[1]))


def disable_all_metrics() -> int:
    """``disable_all()`` on every live registry; returns how many."""
    regs = all_registries()
    for reg in regs:
        reg.disable_all()
    return len(regs)


def enable_all_metrics() -> int:
    regs = all_registries()
    for reg in regs:
        reg.enable_all()
    return len(regs)


def set_default_enabled(enabled: bool) -> None:
    """Whether *future* registries start enabled.

    The profile/bulk drivers set this False before building deployments
    so every instrument a deployment registers is born disabled through
    the same single switch.
    """
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = enabled


def keep_registries(keep: bool) -> None:
    """Toggle traced-run collection of registries for the metrics dump."""
    global _KEPT
    if keep:
        if _KEPT is None:
            _KEPT = []
            _FROZEN.clear()
    else:
        _KEPT = None
        _FROZEN.clear()


def collected_snapshots() -> List[Tuple[str, Dict[str, Dict[str, Any]]]]:
    """(registry name, per-entry snapshot) for everything collected.

    Frozen (evicted) registries contribute their final flat snapshot
    under a single ``"frozen"`` entry; live collected registries are
    snapshotted now.
    """
    out: List[Tuple[str, Dict[str, Dict[str, Any]]]] = []
    for name, flat in _FROZEN:
        out.append((name, {"frozen": dict(flat)}))
    seen = set(name for name, _ in out)
    live = list(_KEPT) if _KEPT is not None else []
    for reg in live + [r for r in all_registries() if r not in (live or [])]:
        if reg.name in seen:
            continue
        seen.add(reg.name)
        out.append((reg.name, reg.snapshot_nested()))
    return out
