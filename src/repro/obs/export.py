"""Exporters: Chrome/Perfetto trace-event JSON, metrics JSONL, validator.

The trace export follows the Chrome trace-event format (the JSON object
form with a ``traceEvents`` list), which Perfetto's UI loads directly:

* duration spans become ``"ph": "X"`` (complete) events with ``ts`` and
  ``dur`` in *microseconds* of simulated time;
* instants become ``"ph": "i"`` events with thread scope;
* each run epoch maps to a ``pid`` (its own process lane in the UI)
  and each ``where`` track to a ``tid``, with ``"M"`` metadata events
  naming both.

Events are emitted sorted by ``(pid, ts, tid)`` so the validator's
monotonicity check is a property of the *exporter*, not of record
insertion order (spans recorded at completion, like ``client.task``,
start earlier than the records around them).

``validate_chrome_trace`` is the schema check CI runs against a traced
``exp_micro``: monotonic non-negative timestamps per process lane,
non-negative durations, balanced ``B``/``E`` stacks (trivially — this
exporter only emits complete events), and span↔metrics count
consistency against the recorder's own per-kind counters (exact when
nothing was evicted from the ring).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .registry import collected_snapshots
from .tracer import FlightRecorder

__all__ = [
    "chrome_trace",
    "append_record_events",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "load_trace",
    "load_metrics_jsonl",
    "validate_chrome_trace",
    "ARG_NAMES",
    "EVENT_SORT_KEY",
]

# Positional arg tuples in trace records are compact on the hot path;
# the exporter names them here so the JSON (and Perfetto's args pane)
# stays self-describing.
ARG_NAMES: Dict[str, tuple] = {
    "switch.pipeline": ("gaid", "action", "retx"),
    "switch.unadmitted": ("gaid",),
    "switch.recirculate": ("gaid",),
    "regs.kernel": ("op", "pairs"),
    "link.drop": ("cause",),
    "flow.tx": ("flow", "seq"),
    "flow.retx": ("flow", "seq", "cause"),
    "flow.ack": ("flow", "seq"),
    "flow.abandon": ("flow", "seq"),
    "cc.window": ("flow", "cwnd"),
    "cc.decrease": ("cwnd",),
    "server.rx": ("gaid", "seq"),
    "server.gate": ("gaid", "seq"),
    "host.pause": ("duration_s",),
    "control.failover": ("entries", "flows"),
    "inc.resync": ("srrt",),
    "client.task": ("task",),
    # shard-boundary spans (merged sharded traces, DESIGN.md §4.11)
    "link.serialize": ("flow", "seq"),
    "boundary.deliver": ("flow", "seq"),
    "barrier.round": ("round", "base_s", "moved"),
}

_US = 1e6   # simulated seconds -> trace microseconds


def _args_dict(kind: str, args: Optional[tuple]) -> Optional[Dict]:
    if args is None:
        return None
    names = ARG_NAMES.get(kind)
    if names is None or len(names) != len(args):
        return {"args": list(args)}
    return dict(zip(names, args))


# Metadata first, then (pid, ts, tid): the validator's monotonicity
# contract and a stable on-disk ordering for diffing two dumps.  The
# shard merge exporter sorts with the same key so single-process and
# merged traces diff alike.
def EVENT_SORT_KEY(event: Dict[str, Any]) -> tuple:
    return (event["ph"] != "M", event["pid"], event["ts"], event["tid"])


def append_record_events(events: List[Dict[str, Any]], records,
                         tids: Dict[tuple, int]) -> set:
    """Emit span/instant events for raw records into ``events``.

    This is the exporter's epoch→pid lane mapping: each record's epoch
    *is* its ``pid`` (one process lane per simulator run — or, in the
    shard merge, per shard lane) and each ``(pid, where)`` pair gets a
    ``tid`` with a ``thread_name`` metadata event on first sighting.
    ``tids`` is shared across calls so a caller can add its own lanes
    (the merge exporter's coordinator tracks) without tid collisions.
    Returns the set of pids seen.
    """
    pids = set()
    for epoch, kind, start, end, where, args in records:
        pid = epoch
        key = (epoch, where)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "ts": 0,
                           "args": {"name": where}})
        event: Dict[str, Any] = {
            "name": kind,
            "cat": kind.partition(".")[0],
            "pid": pid,
            "tid": tid,
            "ts": start * _US,
        }
        if end is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = max(0.0, (end - start) * _US)
        extra = _args_dict(kind, args)
        if extra is not None:
            event["args"] = extra
        events.append(event)
        pids.add(pid)
    return pids


def chrome_trace(recorder: FlightRecorder) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object for one recorder."""
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}
    pids = append_record_events(events, recorder.records(), tids)
    for pid in sorted(pids):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "ts": 0,
                       "args": {"name": f"run epoch {pid}"}})
    events.sort(key=EVENT_SORT_KEY)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "span_counts": dict(recorder.counts),
            "total_records": recorder.total,
            "dropped_records": recorder.dropped,
            "capacity": recorder.capacity,
            "time_unit": "us of simulated time",
        },
    }


def write_chrome_trace(recorder: FlightRecorder, path) -> Dict[str, Any]:
    trace = chrome_trace(recorder)
    with open(path, "w") as fh:
        json.dump(trace, fh, sort_keys=True)
    return trace


def write_metrics_jsonl(path, recorder: Optional[FlightRecorder] = None
                        ) -> int:
    """Flat metrics dump: one JSON line per registered instrument.

    Includes every collected/live :class:`MetricsRegistry` plus (when a
    recorder is given) the flight recorder's own per-kind span counters
    — the line the validator cross-checks against the trace.
    """
    lines = 0
    with open(path, "w") as fh:
        if recorder is not None:
            fh.write(json.dumps({
                "registry": "flight-recorder", "metric": "spans",
                "values": dict(recorder.counts)}, sort_keys=True) + "\n")
            fh.write(json.dumps({
                "registry": "flight-recorder", "metric": "recorder",
                "values": {"total_records": recorder.total,
                           "dropped_records": recorder.dropped,
                           "capacity": recorder.capacity}},
                sort_keys=True) + "\n")
            lines += 2
        for reg_name, entries in collected_snapshots():
            for metric, values in entries.items():
                fh.write(json.dumps({"registry": reg_name, "metric": metric,
                                     "values": values}, sort_keys=True,
                                    default=str) + "\n")
                lines += 1
    return lines


def load_trace(path) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def load_metrics_jsonl(path) -> List[Dict[str, Any]]:
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# schema validation (the CI tier-2 gate)
# ---------------------------------------------------------------------------
def validate_chrome_trace(trace: Dict[str, Any],
                          metrics: Optional[List[Dict[str, Any]]] = None
                          ) -> List[str]:
    """Return a list of schema violations (empty = valid).

    Checks: structural shape, non-negative and per-``pid``-monotonic
    timestamps, non-negative durations, balanced begin/end stacks,
    flow-event (``ph: "s"/"f"``) id pairing — every flow id must have
    at least one start and one finish endpoint — and span↔metrics count
    consistency (against ``otherData.span_counts`` and, when given, the
    metrics JSONL's ``flight-recorder/spans`` line).
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    other = trace.get("otherData", {})

    last_ts: Dict[int, float] = {}
    stacks: Dict[tuple, List[str]] = {}
    name_counts: Dict[str, int] = {}
    flow_ends: Dict[Any, List[int]] = {}     # id -> [starts, finishes]
    for index, event in enumerate(events):
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                problems.append(f"event {index}: missing {field!r}")
                break
        else:
            ph, ts, pid = event["ph"], event["ts"], event["pid"]
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {index}: bad ts {ts!r}")
                continue
            if ph == "M":
                continue
            if ts < last_ts.get(pid, 0.0):
                problems.append(f"event {index}: ts {ts} not monotonic "
                                f"within pid {pid}")
            last_ts[pid] = ts
            name_counts[event["name"]] = \
                name_counts.get(event["name"], 0) + 1
            if ph == "X":
                dur = event.get("dur")
                if not isinstance(dur, (int, float)) or dur < 0:
                    problems.append(f"event {index}: X without valid dur")
            elif ph == "B":
                stacks.setdefault((pid, event["tid"]), []) \
                    .append(event["name"])
            elif ph == "E":
                stack = stacks.get((pid, event["tid"]), [])
                if not stack:
                    problems.append(f"event {index}: E without B")
                elif stack.pop() != event["name"]:
                    problems.append(f"event {index}: E name mismatch")
            elif ph in ("s", "f", "t"):
                flow_id = event.get("id")
                if flow_id is None:
                    problems.append(f"event {index}: flow event "
                                    f"without id")
                else:
                    ends = flow_ends.setdefault(flow_id, [0, 0])
                    if ph == "s":
                        ends[0] += 1
                    elif ph == "f":
                        ends[1] += 1
            elif ph == "C":
                if not isinstance(event.get("args"), dict):
                    problems.append(f"event {index}: counter without "
                                    f"args dict")
            elif ph not in ("i", "I", "M"):
                problems.append(f"event {index}: unknown ph {ph!r}")
    for (pid, tid), stack in stacks.items():
        if stack:
            problems.append(f"unbalanced B spans on pid {pid} tid {tid}: "
                            f"{stack}")
    for flow_id, (n_start, n_finish) in flow_ends.items():
        if n_start == 0 or n_finish == 0:
            problems.append(f"flow id {flow_id!r} unpaired "
                            f"(s={n_start}, f={n_finish})")

    span_counts = other.get("span_counts")
    if isinstance(span_counts, dict):
        dropped = other.get("dropped_records", 0)
        for kind, count in span_counts.items():
            emitted = name_counts.get(kind, 0)
            if dropped == 0 and emitted != count:
                problems.append(f"span/metrics mismatch for {kind!r}: "
                                f"{emitted} events vs counter {count}")
            elif emitted > count:
                problems.append(f"{kind!r}: more events ({emitted}) than "
                                f"ever recorded ({count})")
        for name in name_counts:
            if name not in span_counts:
                problems.append(f"event name {name!r} absent from "
                                f"otherData.span_counts")

    if metrics is not None:
        spans_line = next((m for m in metrics
                           if m.get("registry") == "flight-recorder"
                           and m.get("metric") == "spans"), None)
        if spans_line is None:
            problems.append("metrics dump lacks flight-recorder/spans line")
        elif isinstance(span_counts, dict) and \
                spans_line.get("values") != span_counts:
            problems.append("metrics flight-recorder/spans disagrees with "
                            "trace otherData.span_counts")
    return problems
