"""Merge per-shard captures into one Chrome/Perfetto timeline.

One sharded run becomes one trace file with a process lane per shard
(``pid = shard_id + 1``, reusing the exporter's epoch→pid mapping — a
shard capture's records already carry their lane in the epoch slot)
plus a coordinator lane at ``pid 0`` holding what no per-process tracer
can see:

* **barrier-round spans** — for every round and shard, one ``"X"`` span
  from the shard's clock at the barrier to the horizon the coordinator
  granted it, with the earliest-action base and messages-moved count in
  the args pane: the compute-vs-barrier-wait structure of the run in
  simulated time;
* **counter tracks** — ``"C"`` events per round for the transport
  (frames, bytes, cumulative shm spills) and synchronization (messages
  moved, cumulative ``horizon_rounds_skipped``);
* **cross-shard flow stitching** — Perfetto flow events (``ph: "s"`` /
  ``"f"``) keyed on ``(cut link, flow, seq)`` linking each egress
  ``link.serialize`` span in the sending shard to its
  ``boundary.deliver`` instant in the receiving shard, so a packet can
  be followed across the process-lane boundary in the UI.

``otherData`` carries the merged span census (cross-checked by
``validate_chrome_trace``), per-shard summaries, and the transport
totals that ``tools/trace_report.py shards`` renders.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .capture import ShardCapture, ShardObs
from .export import EVENT_SORT_KEY, append_record_events

__all__ = ["merged_chrome_trace", "write_merged_trace",
           "write_merged_metrics_jsonl", "stitch_flow_pairs",
           "COORDINATOR_PID", "FLOW_EGRESS_KIND", "FLOW_INGRESS_KIND"]

COORDINATOR_PID = 0
FLOW_EGRESS_KIND = "link.serialize"
FLOW_INGRESS_KIND = "boundary.deliver"
_US = 1e6


def stitch_flow_pairs(captures: Dict[int, ShardCapture]
                      ) -> List[Tuple[tuple, tuple, tuple]]:
    """Pair egress serializations with ingress deliveries across lanes.

    The stitch key is ``(cut link name, flow_id, seq)`` — both boundary
    halves share the cut link's name, and ``(flow, seq)`` is unique per
    link since the fabric never re-sends a packet over the same cut.
    Only boundary records carry the ``(flow, seq)`` args tuple, so
    intra-shard ``link.serialize`` spans never enter the key space.
    Returns ``[(key, (egress lane, where, ts_s), (ingress lane, where,
    ts_s))]`` sorted by key; pairs whose halves share a lane (possible
    only if a capture were self-referential) are skipped.
    """
    egress: Dict[tuple, Tuple[int, str, float]] = {}
    ingress: Dict[tuple, Tuple[int, str, float]] = {}
    for cap in captures.values():
        for lane, kind, start, _end, where, args in cap.records:
            if args is None or len(args) != 2:
                continue
            if kind == FLOW_EGRESS_KIND:
                egress.setdefault((where,) + tuple(args),
                                  (lane, where, start))
            elif kind == FLOW_INGRESS_KIND:
                ingress.setdefault((where,) + tuple(args),
                                   (lane, where, start))
    pairs = []
    for key in sorted(egress):
        src = egress[key]
        dst = ingress.get(key)
        if dst is None or dst[0] == src[0]:
            continue
        pairs.append((key, src, dst))
    return pairs


def _finite(value) -> Optional[float]:
    """JSON-safe float: non-finite bounds (idle shard: +inf) -> None."""
    if value is None:
        return None
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def merged_chrome_trace(obs: ShardObs) -> Dict[str, Any]:
    """Build one Chrome trace-event JSON object for a sharded run."""
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}

    all_records: List[tuple] = []
    for sid in sorted(obs.captures):
        all_records.extend(obs.captures[sid].records)
    shard_pids = append_record_events(events, all_records, tids)

    def coord_tid(track: str) -> int:
        key = (COORDINATOR_PID, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({"name": "thread_name", "ph": "M",
                           "pid": COORDINATOR_PID, "tid": tid, "ts": 0,
                           "args": {"name": track}})
        return tid

    # -- coordinator lane: barrier-round spans + counter tracks --------
    for entry in obs.rounds:
        round_no = entry["round"]
        clocks = entry["clocks"]
        horizons = entry["horizons"]
        bases = entry["bases"]
        for sid, (clock, horizon) in enumerate(zip(clocks, horizons)):
            if horizon <= clock:
                continue
            events.append({
                "name": "barrier.round", "cat": "barrier",
                "ph": "X", "pid": COORDINATOR_PID,
                "tid": coord_tid(f"barrier shard {sid}"),
                "ts": clock * _US,
                "dur": (horizon - clock) * _US,
                "args": {"round": round_no,
                         "base_s": _finite(bases[sid]),
                         "moved": entry["moved"]},
            })
        ts = max(horizons) * _US
        events.append({
            "name": "transport", "ph": "C", "cat": "transport",
            "pid": COORDINATOR_PID, "tid": coord_tid("transport"),
            "ts": ts,
            "args": {"frames": entry["frames"],
                     "bytes": entry["bytes"],
                     "shm_spills": entry["spills"]},
        })
        events.append({
            "name": "sync", "ph": "C", "cat": "barrier",
            "pid": COORDINATOR_PID, "tid": coord_tid("sync"),
            "ts": ts,
            "args": {"moved": entry["moved"],
                     "horizon_rounds_skipped": entry["skipped"]},
        })

    # -- cross-shard packet stitching ----------------------------------
    pairs = stitch_flow_pairs(obs.captures)
    for flow_id, (key, src, dst) in enumerate(pairs):
        link, flow, seq = key
        args = {"link": link, "flow": flow, "seq": seq}
        src_lane, src_where, src_ts = src
        dst_lane, dst_where, dst_ts = dst
        events.append({
            "name": "xshard.flow", "cat": "xshard", "ph": "s",
            "id": flow_id, "pid": src_lane,
            "tid": tids[(src_lane, src_where)],
            "ts": src_ts * _US, "args": args,
        })
        events.append({
            "name": "xshard.flow", "cat": "xshard", "ph": "f",
            "bp": "e", "id": flow_id, "pid": dst_lane,
            "tid": tids[(dst_lane, dst_where)],
            "ts": dst_ts * _US, "args": args,
        })

    # -- process lanes -------------------------------------------------
    pids = set(shard_pids)
    if obs.rounds:
        pids.add(COORDINATOR_PID)
    for pid in sorted(pids):
        name = "coordinator" if pid == COORDINATOR_PID \
            else f"shard {pid - 1}"
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "ts": 0, "args": {"name": name}})

    events.sort(key=EVENT_SORT_KEY)

    span_counts: Dict[str, int] = {}
    for event in events:
        if event["ph"] != "M":
            name = event["name"]
            span_counts[name] = span_counts.get(name, 0) + 1
    shard_summaries = {
        str(sid): dict(summary) for sid, summary in
        sorted(obs.shards.items())}
    for sid, cap in sorted(obs.captures.items()):
        shard_summaries.setdefault(str(sid), {})["records"] = \
            len(cap.records)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "span_counts": span_counts,
            "total_records": obs.total_records,
            "dropped_records": obs.dropped_records,
            "time_unit": "us of simulated time",
            "shards": shard_summaries,
            "transport": dict(obs.transport),
            "rounds": len(obs.rounds),
            "flow_pairs": len(pairs),
        },
    }


def write_merged_metrics_jsonl(path, obs: ShardObs,
                               span_counts: Dict[str, int]) -> int:
    """Metrics JSONL companion for a merged trace.

    Leads with the ``flight-recorder/spans`` line the validator
    cross-checks (here: the *merged* census, including coordinator
    events), then one line per shard registry entry and the
    coordinator's per-shard/transport summaries.
    """
    lines = 0
    with open(path, "w") as fh:
        def emit(registry: str, metric: str, values: Dict) -> None:
            nonlocal lines
            fh.write(json.dumps({"registry": registry, "metric": metric,
                                 "values": values}, sort_keys=True,
                                default=str) + "\n")
            lines += 1

        emit("flight-recorder", "spans", dict(span_counts))
        emit("flight-recorder", "recorder",
             {"total_records": obs.total_records,
              "dropped_records": obs.dropped_records})
        for sid, cap in sorted(obs.captures.items()):
            for metric, values in cap.metrics.items():
                emit(f"shard{sid}", metric, values)
        for sid, summary in sorted(obs.shards.items()):
            emit("coordinator", f"shard{sid}.sync", dict(summary))
        emit("coordinator", "transport", dict(obs.transport))
    return lines


def write_merged_trace(obs: ShardObs, trace_path,
                       metrics_path=None) -> Tuple[Path, Path]:
    """Write the merged Perfetto JSON + metrics JSONL for one run."""
    trace_path = Path(trace_path)
    if metrics_path is None:
        metrics_path = trace_path.with_suffix(".metrics.jsonl")
    metrics_path = Path(metrics_path)
    trace = merged_chrome_trace(obs)
    with open(trace_path, "w") as fh:
        json.dump(trace, fh, sort_keys=True)
    write_merged_metrics_jsonl(metrics_path, obs,
                               trace["otherData"]["span_counts"])
    return trace_path, metrics_path
