"""The flight recorder: per-packet lifecycle spans in a bounded ring.

Every layer of the simulated dataplane (links, hosts, the switch
pipeline, the reliable transport, the controller) records what it is
doing *when tracing is enabled* — as compact tuples pushed into a
fixed-capacity ring buffer, the flight-recorder pattern: cheap enough
to leave armed for a whole experiment, bounded so a pathological run
cannot eat the heap, and always holding the most recent window of
activity when something goes wrong.

Zero-overhead-when-disabled contract
------------------------------------
The process-wide singleton :data:`TRACE` is consulted on hot paths as

    if TRACE.enabled:
        TRACE.record(...)

so the disabled path costs exactly one attribute load and a falsy
branch per site.  Recording never schedules simulator events and never
draws from any RNG: enabling tracing changes *nothing* about a run
except wall time — every golden determinism pin (event counts, chaos
fingerprints, sweep merges) holds bit-identically with tracing on.

Record shape
------------
Each record is a tuple ``(epoch, kind, start, end, where, args)``:

* ``epoch`` — ordinal of the simulator the record belongs to (several
  sequential runs share one process; each ``Simulator`` bumps the epoch
  when tracing is on, so timestamps never interleave across runs);
* ``kind`` — dotted span name, e.g. ``"link.serialize"`` (the span
  taxonomy is documented in DESIGN.md §"Observability");
* ``start`` / ``end`` — simulated seconds; ``end is None`` marks an
  instant event rather than a duration span;
* ``where`` — the component track (link/host/switch/flow name);
* ``args`` — a small tuple of span-specific values, or ``None``.

This module deliberately imports nothing from the rest of the package
so every layer can import it without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["FlightRecorder", "TRACE", "DEFAULT_CAPACITY"]

# 2**18 records ~= a few seconds of a fast=True experiment; at six
# machine words per tuple the armed recorder tops out around 20 MB.
DEFAULT_CAPACITY = 1 << 18

Record = Tuple[int, str, float, Optional[float], str, Optional[tuple]]


class FlightRecorder:
    """Bounded ring buffer of trace records with a process-wide switch."""

    __slots__ = ("enabled", "capacity", "epoch", "total", "counts",
                 "_buf", "_next", "__weakref__")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.enabled = False
        self.capacity = capacity
        self.epoch = 0
        self.total = 0
        self.counts: Dict[str, int] = {}
        self._buf: List[Optional[Record]] = []
        self._next = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, capacity: Optional[int] = None) -> None:
        """Arm the recorder (fresh buffer; previous records discarded)."""
        if capacity is not None:
            if capacity < 1:
                raise ValueError("capacity must be >= 1")
            self.capacity = capacity
        self._buf = [None] * self.capacity
        self._next = 0
        self.total = 0
        self.epoch = 0
        self.counts = {}
        self.enabled = True

    def stop(self) -> None:
        """Disarm; recorded data stays readable for export."""
        self.enabled = False

    def clear(self) -> None:
        """Drop all records and release the buffer."""
        self.enabled = False
        self._buf = []
        self._next = 0
        self.total = 0
        self.epoch = 0
        self.counts = {}

    def begin_epoch(self) -> int:
        """Advance the run epoch (called by each new ``Simulator``)."""
        self.epoch += 1
        return self.epoch

    # ------------------------------------------------------------------
    # recording (hot path only when enabled)
    # ------------------------------------------------------------------
    def record(self, kind: str, start: float, end: Optional[float],
               where: str, args: Optional[tuple] = None) -> None:
        """Push one span/instant record; oldest record evicted when full."""
        buf = self._buf
        if not buf:           # record() before start(): arm lazily
            self.start()
            buf = self._buf
        i = self._next
        buf[i] = (self.epoch, kind, start, end, where, args)
        i += 1
        self._next = 0 if i == self.capacity else i
        self.total += 1
        counts = self.counts
        try:
            counts[kind] += 1
        except KeyError:
            counts[kind] = 1

    def instant(self, kind: str, when: float, where: str,
                args: Optional[tuple] = None) -> None:
        self.record(kind, when, None, where, args)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Records evicted by ring wrap-around (oldest-first)."""
        return max(0, self.total - self.capacity)

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def records(self) -> List[Record]:
        """Surviving records in insertion order (oldest first)."""
        if self.total < self.capacity:
            return list(self._buf[:self._next])
        return list(self._buf[self._next:]) + list(self._buf[:self._next])

    def count(self, kind: str) -> int:
        """Total records of ``kind`` ever pushed (including evicted)."""
        return self.counts.get(kind, 0)

    def records_by_epoch(self) -> Dict[int, List[Record]]:
        """Surviving records bucketed by epoch, insertion order kept.

        Epochs are the exporter's ``pid`` lanes; shard capture uses this
        to attribute a worker ring shared by co-resident shards back to
        the shard whose ``Simulator`` opened each epoch.
        """
        out: Dict[int, List[Record]] = {}
        for rec in self.records():
            out.setdefault(rec[0], []).append(rec)
        return out


#: The process-wide recorder every instrumentation site consults.
TRACE = FlightRecorder()
