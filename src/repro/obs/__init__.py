"""Simulation-native observability: flight recorder, metrics registry,
Perfetto export.

Quick use::

    from repro.obs import run_traced
    result = run_traced(exp_micro.run, "trace.json", fast=True)
    # -> trace.json (open in https://ui.perfetto.dev)
    # -> trace.metrics.jsonl (one line per registered instrument)

or manually::

    from repro.obs import TRACE, start_trace, stop_trace, export_trace
    start_trace()
    ... run something ...
    stop_trace()
    export_trace("trace.json")
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from .capture import (
    ShardCapture,
    ShardObs,
    capture_shards,
    shard_lane,
)
from .export import (
    ARG_NAMES,
    append_record_events,
    chrome_trace,
    load_metrics_jsonl,
    load_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .merge import (
    merged_chrome_trace,
    stitch_flow_pairs,
    write_merged_trace,
)
from .registry import (
    KEEP_LIMIT,
    MetricsRegistry,
    all_registries,
    collected_snapshots,
    disable_all_metrics,
    enable_all_metrics,
    keep_registries,
    set_default_enabled,
)
from .tracer import DEFAULT_CAPACITY, TRACE, FlightRecorder

__all__ = [
    "TRACE", "FlightRecorder", "DEFAULT_CAPACITY",
    "MetricsRegistry", "all_registries", "disable_all_metrics",
    "enable_all_metrics", "set_default_enabled", "keep_registries",
    "collected_snapshots", "KEEP_LIMIT",
    "chrome_trace", "write_chrome_trace", "write_metrics_jsonl",
    "load_trace", "load_metrics_jsonl", "validate_chrome_trace",
    "ARG_NAMES", "append_record_events",
    "ShardCapture", "ShardObs", "capture_shards", "shard_lane",
    "merged_chrome_trace", "stitch_flow_pairs", "write_merged_trace",
    "start_trace", "stop_trace", "export_trace", "run_traced",
    "metrics_path_for",
]


def start_trace(capacity: Optional[int] = None) -> None:
    """Arm the process-wide flight recorder and registry collection."""
    keep_registries(True)
    TRACE.start(capacity)


def stop_trace() -> None:
    """Disarm recording (data stays readable until the next start)."""
    TRACE.stop()


def metrics_path_for(trace_path) -> Path:
    path = Path(trace_path)
    return path.with_suffix(".metrics.jsonl")


def export_trace(trace_path, metrics_path=None) -> Tuple[Path, Path]:
    """Write the Perfetto JSON + metrics JSONL for the current recorder."""
    trace_path = Path(trace_path)
    metrics_path = Path(metrics_path) if metrics_path is not None \
        else metrics_path_for(trace_path)
    write_chrome_trace(TRACE, trace_path)
    write_metrics_jsonl(metrics_path, recorder=TRACE)
    return trace_path, metrics_path


def run_traced(fn: Callable[..., Any], trace_path,
               metrics_path=None, capacity: Optional[int] = None,
               **kwargs) -> Any:
    """Run ``fn(**kwargs)`` with tracing on; export next to the output.

    Tracing is disarmed and registry collection released afterwards even
    if the run raises; the export happens only on success.
    """
    start_trace(capacity)
    try:
        result = fn(**kwargs)
        stop_trace()
        export_trace(trace_path, metrics_path)
        return result
    finally:
        stop_trace()
        keep_registries(False)
