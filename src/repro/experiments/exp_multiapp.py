"""Table 7: concurrent application throughput and latency.

One dataplane (same switch, hosts, links) runs 1, 4, or 20 application
instances spanning all four INC types.  The paper's finding: the
bandwidth-heavy apps keep their combined goodput as instances multiply,
and the small (latency-type) apps see only a mild latency increase —
successful resource sharing without switch reboots.
"""

from __future__ import annotations

from typing import Dict, List

from repro.control import build_rack
from repro.inc import Task

from .common import (
    CAL,
    async_programs,
    format_table,
    sync_program,
    vote_program,
)

__all__ = ["run"]


def _register_instance(deployment, index: int, kinds: List[str]) -> dict:
    """Register one instance of each app kind; returns config handles."""
    handles = {}
    if "sync" in kinds:
        (handles["sync"],) = deployment.controller.register(
            [sync_program(2, app_name=f"SYNC-{index}")], server="s0",
            clients=["c0", "c1"], value_slots=65_536, counter_slots=4096,
            linear=True)
    if "async" in kinds:
        handles["async"], _ = deployment.controller.register(
            async_programs(f"ASYNC-{index}"), server="s0",
            clients=["c0", "c1"], value_slots=16_384)
    if "keyvalue" in kinds:
        handles["keyvalue"], handles["kv_query"] = \
            deployment.controller.register(
                async_programs(f"KV-{index}"), server="s0",
                clients=["c0", "c1"], value_slots=8192)
    if "vote" in kinds:
        (handles["vote"],) = deployment.controller.register(
            [vote_program(2, app_name=f"VOTE-{index}")], server="s0",
            clients=["c0", "c1"], value_slots=2048, counter_slots=2048,
            linear=True)
    return handles


def _drive(deployment, instances: List[dict], duration_s: float) -> dict:
    """Run all registered instances concurrently; collect metrics."""
    sim = deployment.sim
    metrics = {"sync_pairs": 0, "async_pairs": 0,
               "kv_latencies": [], "vote_latencies": []}

    def sync_source(config):
        round_no = 0
        round_values = 32_768
        while sim.now < duration_s:
            events = [deployment.client_agent(i).submit(
                Task(app=config, round=round_no,
                     items=[(j, i + 1) for j in range(round_values)],
                     expect_result=True))
                for i in range(2)]
            for event in events:
                yield event
            metrics["sync_pairs"] += round_values
            round_no += 1

    def async_source(config, tag):
        batch = 0
        inflight = []
        while sim.now < duration_s:
            items = [(f"{tag}-{(batch * 512 + j) % 2048}", 1)
                     for j in range(512)]
            inflight.append(deployment.client_agent(batch % 2).submit(
                Task(app=config, items=items, expect_result=False)))
            metrics["async_pairs"] += 512
            batch += 1
            if len(inflight) >= 8:
                yield inflight.pop(0)
        for event in inflight:
            yield event

    def keyvalue_source(write_cfg, query_cfg, tag):
        # Warm one counter, then measure read latency repeatedly.
        yield deployment.client_agent(0).submit(
            Task(app=write_cfg, items=[(f"{tag}-hot", 1)],
                 expect_result=False))
        while sim.now < duration_s:
            start = sim.now
            yield deployment.client_agent(0).submit(
                Task(app=query_cfg, items=[(f"{tag}-hot", 0)],
                     expect_result=True))
            metrics["kv_latencies"].append(sim.now - start)
            yield sim.timeout(20e-6)

    def vote_source(config):
        round_no = 0
        while sim.now < duration_s:
            start = sim.now
            events = [deployment.client_agent(i).submit(
                Task(app=config, round=round_no, items=[(round_no, 1)],
                     expect_result=True, indexed=True))
                for i in range(2)]
            for event in events:
                yield event
            metrics["vote_latencies"].append(sim.now - start)
            round_no += 1
            yield sim.timeout(20e-6)

    processes = []
    for index, handles in enumerate(instances):
        if "sync" in handles:
            processes.append(sim.process(sync_source(handles["sync"]),
                                         name=f"sync-{index}"))
        if "async" in handles:
            processes.append(sim.process(
                async_source(handles["async"], f"a{index}"),
                name=f"async-{index}"))
        if "keyvalue" in handles:
            processes.append(sim.process(
                keyvalue_source(handles["keyvalue"], handles["kv_query"],
                                f"k{index}"),
                name=f"kv-{index}"))
        if "vote" in handles:
            processes.append(sim.process(vote_source(handles["vote"]),
                                         name=f"vote-{index}"))
    sim.run_until(sim.all_of(processes), limit=duration_s * 50)
    elapsed = sim.now
    return {
        "sync_gbps": metrics["sync_pairs"] * 32 / duration_s / 1e9,
        "async_gbps": metrics["async_pairs"] * 64 / duration_s / 1e9,
        "kv_delay_us": 1e6 * (sum(metrics["kv_latencies"])
                              / len(metrics["kv_latencies"]))
        if metrics["kv_latencies"] else 0.0,
        "vote_delay_us": 1e6 * (sum(metrics["vote_latencies"])
                                / len(metrics["vote_latencies"]))
        if metrics["vote_latencies"] else 0.0,
    }


def run(duration_s: float = 1e-3, seed: int = 0) -> dict:
    """Regenerate Table 7 (1APP / 4APP / 4APPx5)."""
    scenarios = {}

    deployment = build_rack(2, 1, cal=CAL, seed=seed)
    scenarios["1APP"] = _drive(
        deployment, [_register_instance(deployment, 0, ["sync"])],
        duration_s)
    # The single-app async/latency rows come from dedicated single runs.
    deployment = build_rack(2, 1, cal=CAL, seed=seed)
    solo_rest = _drive(
        deployment,
        [_register_instance(deployment, 0, ["async", "keyvalue", "vote"])],
        duration_s)
    scenarios["1APP"].update(
        {k: solo_rest[k] for k in ("async_gbps", "kv_delay_us",
                                   "vote_delay_us")})

    deployment = build_rack(2, 1, cal=CAL, seed=seed)
    scenarios["4APP"] = _drive(
        deployment,
        [_register_instance(deployment, 0,
                            ["sync", "async", "keyvalue", "vote"])],
        duration_s)

    deployment = build_rack(2, 1, cal=CAL, seed=seed)
    instances = [_register_instance(deployment, i,
                                    ["sync", "async", "keyvalue", "vote"])
                 for i in range(5)]
    scenarios["4APPx5"] = _drive(deployment, instances, duration_s)

    rows = []
    for metric, key, unit in (
            ("Sync goodput", "sync_gbps", "Gbps"),
            ("Async goodput", "async_gbps", "Gbps"),
            ("KeyValue delay", "kv_delay_us", "us"),
            ("Agreement delay", "vote_delay_us", "us")):
        rows.append([f"{metric} ({unit})"] +
                    [f"{scenarios[s][key]:.2f}"
                     for s in ("1APP", "4APP", "4APPx5")])
    total_row = ["Goodput sum (Gbps)", "-"]
    for s in ("4APP", "4APPx5"):
        total_row.append(f"{scenarios[s]['sync_gbps'] + scenarios[s]['async_gbps']:.2f}")
    rows.append(total_row)
    table = format_table("Table 7: concurrent applications",
                         ["metric", "1APP", "4APP", "4APPx5"], rows)
    return {"scenarios": scenarios, "table": table}
