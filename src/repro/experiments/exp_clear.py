"""Table 6: the clear-policy latency/memory/throughput trade-off.

2-to-1 SyncAggr under the three Map.clear policies (§5.2.2):

* copy   — highest latency (server detour) but full throughput and 1x
           memory;
* shadow — low latency, 2x memory, lowest throughput (recirculating
           mirror clears);
* lazy   — low latency and full throughput at 0% overflow, degrading as
           the overflow ratio grows.
"""

from __future__ import annotations

from typing import Dict

from repro.protocol import ClearPolicy

from .common import format_table, run_sync_aggregation, sync_chunk_latency

__all__ = ["run"]

_CONFIGS = [
    ("copy", ClearPolicy.COPY, 0.0),
    ("shadow", ClearPolicy.SHADOW, 0.0),
    ("lazy (0%)", ClearPolicy.LAZY, 0.0),
    ("lazy (1%)", ClearPolicy.LAZY, 0.01),
    ("lazy (10%)", ClearPolicy.LAZY, 0.10),
]


def run(fast: bool = True, seed: int = 0) -> dict:
    """Regenerate Table 6."""
    n_values = 64_000 if fast else 256_000
    results: Dict[str, dict] = {}
    for label, policy, overflow in _CONFIGS:
        latency = sync_chunk_latency(clear=policy, overflow_ratio=overflow,
                                     seed=seed)
        goodput = run_sync_aggregation(
            n_values=n_values, clear=policy, overflow_ratio=overflow,
            seed=seed).goodput_gbps
        memory = "2x" if policy is ClearPolicy.SHADOW else "1x"
        results[label] = {"latency_s": latency, "memory": memory,
                          "goodput_gbps": goodput}
    rows = [[label,
             f"{r['latency_s'] * 1e6:.1f} us",
             r["memory"],
             f"{r['goodput_gbps']:.2f} Gbps"]
            for label, r in results.items()]
    table = format_table("Table 6: clear policy impact",
                         ["policy", "latency", "memory", "throughput"],
                         rows)
    return {"results": results, "table": table}
