"""Figures 8 and 9: congestion-control fairness and loss avoidance.

A SyncAggr and an AsyncAggr application share the same dataplane (same
switch, same client hosts, same links).  Figure 8 plots each app's
goodput over time — they must converge quickly and share the bottleneck
fairly.  Figure 9 compares packet-loss ratio over time with congestion
control on and off.
"""

from __future__ import annotations

from typing import Dict, List

from repro.control import build_rack
from repro.inc import Task
from repro.netsim import RateMeter
from repro.sweep import RunSpec, sweep_values

from .common import CAL, async_programs, format_table, sync_program

__all__ = ["run_fairness", "run_cc_loss", "jain_fairness"]


def jain_fairness(shares: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair."""
    if not shares or all(s == 0 for s in shares):
        return 0.0
    return sum(shares) ** 2 / (len(shares) * sum(s * s for s in shares))


def _shared_dataplane(cc_enabled: bool, seed: int, duration_s: float,
                      bucket_s: float):
    """Run SyncAggr + AsyncAggr concurrently on one dataplane."""
    deployment = build_rack(2, 1, cal=CAL, seed=seed)
    sim = deployment.sim
    (sync_cfg,) = deployment.controller.register(
        [sync_program(2, app_name="SYNC")], server="s0",
        clients=["c0", "c1"], value_slots=262_144, counter_slots=16_384,
        linear=True, cc_enabled=cc_enabled)
    async_cfg, _ = deployment.controller.register(
        async_programs("ASYNC"), server="s0", clients=["c0", "c1"],
        value_slots=65_536, cc_enabled=cc_enabled)

    meters = {"sync": RateMeter(bucket_s=bucket_s),
              "async": RateMeter(bucket_s=bucket_s)}
    # Wire bytes per kv pair: linear packets elide keys (192B/32 pairs),
    # keyed packets carry them (~312B/32 pairs).
    for name, app_key, bytes_per_pair in (("sync", "SYNC", 6.0),
                                          ("async", "ASYNC", 9.75)):
        for index in range(2):
            state = deployment.client_agent(index).app_state(app_key)
            state.resolve_listener = (
                lambda pairs, m=meters[name], b=bytes_per_pair:
                m.record(sim.now, pairs * b))

    def sync_source(agent):
        round_no = 0
        while sim.now < duration_s:
            task = Task(app=sync_cfg, round=round_no,
                        items=[(j, 1) for j in range(32_000)],
                        expect_result=True)
            yield agent.submit(task)
            round_no += 1

    def async_source(agent, client_index):
        batch_index = 0
        inflight = []
        while sim.now < duration_s:
            keys = [(f"k{client_index}-{(batch_index * 1024 + j) % 4096}", 1)
                    for j in range(1024)]
            inflight.append(agent.submit(
                Task(app=async_cfg, items=keys, expect_result=False)))
            batch_index += 1
            if len(inflight) >= 8:
                yield inflight.pop(0)
        for event in inflight:
            yield event

    processes = []
    for index in range(2):
        agent = deployment.client_agent(index)
        processes.append(sim.process(sync_source(agent),
                                     name=f"sync-{index}"))
        processes.append(sim.process(async_source(agent, index),
                                     name=f"async-{index}"))
    sim.run_until(sim.all_of(processes), limit=duration_s * 20)
    return deployment, meters


def _fairness_point(duration_s: float, seed: int, bucket_s: float) -> dict:
    """The full Figure 8 measurement as one sweep run (everything it
    returns is plain data; the deployment never leaves the worker)."""
    deployment, meters = _shared_dataplane(True, seed, duration_s, bucket_s)
    # Steady-state window, per shared client uplink (both apps send from
    # the same two hosts; each host's 100G NIC is the contended link).
    start = duration_s / 2
    sync_gbps = meters["sync"].average_gbps(start, duration_s) / 2
    async_gbps = meters["async"].average_gbps(start, duration_s) / 2
    return {"sync_gbps": sync_gbps, "async_gbps": async_gbps,
            "combined_gbps": sync_gbps + async_gbps,
            "fairness": jain_fairness([sync_gbps, async_gbps]),
            "series": {name: meter.series()
                       for name, meter in meters.items()}}


def _cc_loss_point(cc_enabled: bool, duration_s: float, seed: int) -> float:
    """Aggregate packet-loss ratio of one CC arm (one sweep run)."""
    deployment, _ = _shared_dataplane(cc_enabled, seed, duration_s, 1e-4)
    offered = drops = 0
    for link in deployment.topology.links.values():
        stats = link.stats
        offered += stats["offered_pkts"]
        drops += stats["queue_drops"] + stats["wire_drops"]
    return drops / offered if offered else 0.0


def run_fairness(duration_s: float = 2e-3, seed: int = 0,
                 bucket_s: float = 1e-4) -> dict:
    """Regenerate Figure 8: per-app goodput series and fairness."""
    (point,) = sweep_values([RunSpec(
        "repro.experiments.exp_fairness._fairness_point",
        {"duration_s": duration_s, "bucket_s": bucket_s}, seed=seed,
        label="fig8:fairness")])
    sync_gbps, async_gbps = point["sync_gbps"], point["async_gbps"]
    combined, fairness = point["combined_gbps"], point["fairness"]
    series = point["series"]
    rows = [["SyncAggr", f"{sync_gbps:.2f}"],
            ["AsyncAggr", f"{async_gbps:.2f}"],
            ["combined", f"{combined:.2f}"],
            ["link share", f"{combined / 100.0:.0%}"],
            ["Jain fairness", f"{fairness:.3f}"]]
    table = format_table(
        "Figure 8: wire Gbps per shared client uplink",
        ["metric", "Gbps"], rows)
    return {"sync_gbps": sync_gbps, "async_gbps": async_gbps,
            "combined_gbps": combined, "fairness": fairness,
            "series": series, "table": table}


def run_cc_loss(duration_s: float = 1.5e-3, seed: int = 0) -> dict:
    """Regenerate Figure 9: loss ratio with and without CC."""
    arms = (("with-cc", True), ("without-cc", False))
    specs = [RunSpec("repro.experiments.exp_fairness._cc_loss_point",
                     {"cc_enabled": cc_enabled, "duration_s": duration_s},
                     seed=seed, label=f"fig9:{label}")
             for label, cc_enabled in arms]
    out: Dict[str, float] = dict(zip((label for label, _ in arms),
                                     sweep_values(specs)))
    rows = [[label, f"{ratio:.3%}"] for label, ratio in out.items()]
    reduction = (1 - out["with-cc"] / out["without-cc"]) \
        if out["without-cc"] else 0.0
    rows.append(["loss reduction", f"{reduction:.0%}"])
    table = format_table("Figure 9: packet loss with/without CC",
                         ["setting", "loss ratio"], rows)
    return {"loss": out, "reduction": reduction, "table": table}
