"""Experiment harnesses regenerating every table and figure of §6.

One module per paper artifact; `benchmarks/` wraps these for
pytest-benchmark and EXPERIMENTS.md records paper-vs-measured values.
"""

from . import (
    exp_cache,
    exp_clear,
    exp_fairness,
    exp_fattree,
    exp_loc,
    exp_loss,
    exp_micro,
    exp_multiapp,
    exp_overflow,
    exp_paxos,
    exp_training,
    exp_twoswitch,
)
from .common import (
    run_async_aggregation,
    run_sync_aggregation,
    sync_chunk_latency,
    voting_delay,
)

__all__ = [
    "exp_loc", "exp_training", "exp_paxos", "exp_micro", "exp_fairness",
    "exp_loss", "exp_overflow", "exp_clear", "exp_cache", "exp_multiapp",
    "exp_twoswitch", "exp_fattree",
    "run_sync_aggregation", "run_async_aggregation", "sync_chunk_latency",
    "voting_delay",
]
