"""Figure 6: deep-learning training speed per worker.

Methodology: measure each system's steady-state aggregation goodput on
the simulated dataplane, then compose per-model training speed as
``batch / (compute_time + gradient_bits / goodput)`` — the PushPull
iteration structure of the paper's BytePS-based deployment (no
compute/communication overlap, as in §6.3's setup).  The DNN profiles
substitute the GPU testbed (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import build_aggregation_job
from repro.sweep import RunSpec, sweep_values
from repro.workloads import MODELS

from .common import CAL, format_table, run_sync_aggregation

__all__ = ["run", "SYSTEMS"]

SYSTEMS = ("NetRPC", "ATP", "SwitchML", "BytePS")


def _system_goodput(system: str, n_workers: int, chunks: int) -> float:
    """Steady-state aggregation goodput of one system (one sweep run)."""
    if system == "NetRPC":
        return run_sync_aggregation(n_clients=min(n_workers, 4),
                                    n_values=chunks * 32).goodput_gbps
    job = build_aggregation_job(system.lower(),
                                n_workers=min(n_workers, 4),
                                total_chunks=chunks, cal=CAL)
    return job.run()


def measure_goodputs(n_workers: int = 8, fast: bool = True
                     ) -> Dict[str, float]:
    """Per-sender aggregation goodput (Gbps) for each system."""
    chunks = 2000 if fast else 8000
    specs = [RunSpec("repro.experiments.exp_training._system_goodput",
                     {"system": system, "n_workers": n_workers,
                      "chunks": chunks}, label=f"fig6:{system}")
             for system in SYSTEMS]
    return dict(zip(SYSTEMS, sweep_values(specs)))


def training_speed(model_name: str, goodput_gbps: float) -> float:
    """images/s/worker for a model at a given aggregation goodput."""
    model = MODELS[model_name]
    comm_s = model.gradient_bytes * 8 / (goodput_gbps * 1e9)
    return model.samples_per_iteration / (model.compute_s + comm_s)


def run(fast: bool = True) -> dict:
    """Regenerate Figure 6; returns {model: {system: images/s}}."""
    goodputs = measure_goodputs(fast=fast)
    speeds: Dict[str, Dict[str, float]] = {}
    for model_name in ("VGG16", "AlexNet", "ResNet50"):
        speeds[model_name] = {
            system: training_speed(model_name, goodputs[system])
            for system in SYSTEMS}
    rows = [[model] + [f"{speeds[model][s]:.1f}" for s in SYSTEMS]
            for model in speeds]
    table = format_table("Figure 6: training speed (images/s/worker)",
                         ["model", *SYSTEMS], rows)
    return {"speeds": speeds, "goodputs": goodputs, "table": table}
