"""Figure 6: deep-learning training speed per worker — and beyond it,
seeded convergence trajectories over the fp/quantized INC ops.

Methodology for Figure 6: measure each system's steady-state aggregation
goodput on the simulated dataplane, then compose per-model training
speed as ``batch / (compute_time + gradient_bits / goodput)`` — the
PushPull iteration structure of the paper's BytePS-based deployment (no
compute/communication overlap, as in §6.3's setup).  The DNN profiles
substitute the GPU testbed (see DESIGN.md).

The convergence extension (DESIGN.md §4.8) goes past the paper's
throughput-only evaluation: :func:`convergence_trajectory` runs a seeded
SGD job whose gradient all-reduce flows through the real deployment
under each aggregation mode (table-fp, int8 block quantization,
coordinated top-k) and returns the loss curve, with the exact host-side
float64 reduction as the reference.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import build_aggregation_job
from repro.sweep import RunSpec, sweep_values
from repro.workloads import MODELS

from .common import CAL, format_table, run_sync_aggregation

__all__ = ["run", "run_convergence", "convergence_trajectory", "SYSTEMS"]

SYSTEMS = ("NetRPC", "ATP", "SwitchML", "BytePS")


def _system_goodput(system: str, n_workers: int, chunks: int) -> float:
    """Steady-state aggregation goodput of one system (one sweep run)."""
    if system == "NetRPC":
        return run_sync_aggregation(n_clients=min(n_workers, 4),
                                    n_values=chunks * 32).goodput_gbps
    job = build_aggregation_job(system.lower(),
                                n_workers=min(n_workers, 4),
                                total_chunks=chunks, cal=CAL)
    return job.run()


def measure_goodputs(n_workers: int = 8, fast: bool = True
                     ) -> Dict[str, float]:
    """Per-sender aggregation goodput (Gbps) for each system."""
    chunks = 2000 if fast else 8000
    specs = [RunSpec("repro.experiments.exp_training._system_goodput",
                     {"system": system, "n_workers": n_workers,
                      "chunks": chunks}, label=f"fig6:{system}")
             for system in SYSTEMS]
    return dict(zip(SYSTEMS, sweep_values(specs)))


def training_speed(model_name: str, goodput_gbps: float) -> float:
    """images/s/worker for a model at a given aggregation goodput."""
    model = MODELS[model_name]
    comm_s = model.gradient_bytes * 8 / (goodput_gbps * 1e9)
    return model.samples_per_iteration / (model.compute_s + comm_s)


# ---------------------------------------------------------------------------
# convergence trajectories (fp / quantized INC vs exact host reduction)
# ---------------------------------------------------------------------------
def convergence_trajectory(mode: str, workers: int = 2, dim: int = 64,
                           rounds: int = 12, seed: int = 7,
                           samples: int = 16, lr: float = 0.05,
                           topk: int = 16) -> List[float]:
    """Loss curve of one seeded convergence run (sweep-importable).

    Pure function of its arguments: the deployment, the dataset, and
    the SGD loop are all derived from ``seed``, so the same call is
    bit-identical across processes (the sweep workers=1 vs 2 contract).
    """
    from repro.apps import ConvergenceJob
    from repro.control import build_rack

    deployment = None
    if mode != "exact":
        deployment = build_rack(workers, 1, cal=CAL, seed=seed)
    job = ConvergenceJob(deployment, mode, workers=workers, dim=dim,
                         samples=samples, seed=seed, lr=lr, topk=topk)
    return job.run(rounds=rounds).losses


def run_convergence(fast: bool = True, seed: int = 7) -> dict:
    """Loss trajectories for every aggregation mode, via the sweep pool."""
    from repro.apps import CONVERGENCE_MODES

    rounds = 8 if fast else 16
    dim = 64 if fast else 128
    specs = [RunSpec("repro.experiments.exp_training.convergence_trajectory",
                     {"mode": mode, "workers": 2, "dim": dim,
                      "rounds": rounds, "seed": seed},
                     label=f"conv:{mode}")
             for mode in CONVERGENCE_MODES]
    curves = dict(zip(CONVERGENCE_MODES, sweep_values(specs)))
    rows = [[mode, f"{curve[0]:.4f}", f"{curve[-1]:.6f}"]
            for mode, curve in curves.items()]
    table = format_table(
        "Convergence: loss after first/last round (seeded SGD, dim="
        f"{dim}, {rounds} rounds)",
        ["mode", "initial", "final"], rows)
    return {"curves": curves, "table": table, "rounds": rounds, "dim": dim}


def run(fast: bool = True) -> dict:
    """Regenerate Figure 6; returns {model: {system: images/s}}."""
    goodputs = measure_goodputs(fast=fast)
    speeds: Dict[str, Dict[str, float]] = {}
    for model_name in ("VGG16", "AlexNet", "ResNet50"):
        speeds[model_name] = {
            system: training_speed(model_name, goodputs[system])
            for system in SYSTEMS}
    rows = [[model] + [f"{speeds[model][s]:.1f}" for s in SYSTEMS]
            for model in speeds]
    table = format_table("Figure 6: training speed (images/s/worker)",
                         ["model", *SYSTEMS], rows)
    return {"speeds": speeds, "goodputs": goodputs, "table": table}
