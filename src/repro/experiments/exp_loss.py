"""Figure 10: packet loss rate vs normalized throughput.

NetRPC, ATP, and SwitchML under injected random loss.  All three must
stay correct (verified by the test suite); the figure compares how
gracefully throughput degrades.  NetRPC's out-of-order selective ACKs
and ECN-only congestion interpretation give it the flattest curve; ATP
reacts to timeouts; SwitchML's in-order slot pool head-of-line blocks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import build_aggregation_job
from repro.netsim import RandomLoss
from repro.sweep import RunSpec, sweep_values

from .common import CAL, format_table, run_sync_aggregation

__all__ = ["run", "LOSS_RATES", "SYSTEMS"]

LOSS_RATES = (0.0, 0.001, 0.005, 0.01)
SYSTEMS = ("NetRPC", "ATP", "SwitchML")


def _netrpc(loss: float, n_values: int, seed: int) -> float:
    return run_sync_aggregation(n_values=n_values, loss=loss,
                                seed=seed).goodput_gbps


def _baseline(kind: str, loss: float, chunks: int, seed: int) -> float:
    loss_factory = (lambda: RandomLoss(loss)) if loss else None
    job = build_aggregation_job(kind, n_workers=2, total_chunks=chunks,
                                cal=CAL, seed=seed,
                                loss_factory=loss_factory)
    return job.run(limit=240.0)


def _loss_cell(system: str, loss: float, n_values: int, seed: int) -> float:
    """One (system, loss-rate) grid cell — a pure function of its args,
    executed in a sweep worker."""
    if system == "NetRPC":
        return _netrpc(loss, n_values, seed)
    return _baseline(system.lower(), loss, n_values // 32, seed)


def run(fast: bool = True, seed: int = 5) -> dict:
    """Regenerate Figure 10; returns absolute and normalized curves."""
    n_values = 64_000 if fast else 128_000
    specs = [RunSpec("repro.experiments.exp_loss._loss_cell",
                     {"system": system, "loss": loss,
                      "n_values": n_values, "seed": seed},
                     label=f"fig10:{system}@{loss:.3%}")
             for loss in LOSS_RATES for system in SYSTEMS]
    cells = sweep_values(specs)
    absolute: Dict[str, List[float]] = {system: [] for system in SYSTEMS}
    for position, value in enumerate(cells):
        absolute[SYSTEMS[position % len(SYSTEMS)]].append(value)
    normalized = {system: [v / curve[0] for v in curve]
                  for system, curve in absolute.items()}
    rows = []
    for index, loss in enumerate(LOSS_RATES):
        rows.append([f"{loss:.3%}"] +
                    [f"{absolute[s][index]:.1f} ({normalized[s][index]:.2f})"
                     for s in ("NetRPC", "ATP", "SwitchML")])
    table = format_table(
        "Figure 10: loss rate vs goodput Gbps (normalized)",
        ["loss", "NetRPC", "ATP", "SwitchML"], rows)
    return {"absolute": absolute, "normalized": normalized,
            "loss_rates": LOSS_RATES, "table": table}
