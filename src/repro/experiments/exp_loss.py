"""Figure 10: packet loss rate vs normalized throughput.

NetRPC, ATP, and SwitchML under injected random loss.  All three must
stay correct (verified by the test suite); the figure compares how
gracefully throughput degrades.  NetRPC's out-of-order selective ACKs
and ECN-only congestion interpretation give it the flattest curve; ATP
reacts to timeouts; SwitchML's in-order slot pool head-of-line blocks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import build_aggregation_job
from repro.netsim import RandomLoss

from .common import CAL, format_table, run_sync_aggregation

__all__ = ["run", "LOSS_RATES"]

LOSS_RATES = (0.0, 0.001, 0.005, 0.01)


def _netrpc(loss: float, n_values: int, seed: int) -> float:
    return run_sync_aggregation(n_values=n_values, loss=loss,
                                seed=seed).goodput_gbps


def _baseline(kind: str, loss: float, chunks: int, seed: int) -> float:
    loss_factory = (lambda: RandomLoss(loss)) if loss else None
    job = build_aggregation_job(kind, n_workers=2, total_chunks=chunks,
                                cal=CAL, seed=seed,
                                loss_factory=loss_factory)
    return job.run(limit=240.0)


def run(fast: bool = True, seed: int = 5) -> dict:
    """Regenerate Figure 10; returns absolute and normalized curves."""
    n_values = 64_000 if fast else 128_000
    chunks = n_values // 32
    absolute: Dict[str, List[float]] = {"NetRPC": [], "ATP": [],
                                        "SwitchML": []}
    for loss in LOSS_RATES:
        absolute["NetRPC"].append(_netrpc(loss, n_values, seed))
        absolute["ATP"].append(_baseline("atp", loss, chunks, seed))
        absolute["SwitchML"].append(_baseline("switchml", loss, chunks,
                                              seed))
    normalized = {system: [v / curve[0] for v in curve]
                  for system, curve in absolute.items()}
    rows = []
    for index, loss in enumerate(LOSS_RATES):
        rows.append([f"{loss:.3%}"] +
                    [f"{absolute[s][index]:.1f} ({normalized[s][index]:.2f})"
                     for s in ("NetRPC", "ATP", "SwitchML")])
    table = format_table(
        "Figure 10: loss rate vs goodput Gbps (normalized)",
        ["loss", "NetRPC", "ATP", "SwitchML"], rows)
    return {"absolute": absolute, "normalized": normalized,
            "loss_rates": LOSS_RATES, "table": table}
