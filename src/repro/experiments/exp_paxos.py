"""Figure 7: end-to-end Paxos throughput and 99th-percentile latency.

Four systems on identical host profiles: NetRPC (switch vote counting,
software acceptors), P4xos (switch acceptors, per-replica 2b messages
at learners), DPDK paxos, and libpaxos.  The host profile makes
consensus-message processing the bottleneck, as on the paper's testbed.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import PaxosCluster
from repro.baselines import P4xosCluster, SoftwarePaxosCluster
from repro.control import build_rack
from repro.netsim import scaled

from .common import format_table

__all__ = ["run", "PAXOS_CAL"]

# Consensus endpoints process messages at ~1.5us on two dedicated cores
# (the paper's learner daemons), which sets the throughput ceilings.
PAXOS_CAL = scaled(host_pkt_cpu_s=1.5e-6, host_agent_cores=2)


_LATENCY_GAP_S = 50e-6   # paced probe load for the latency measurement


def _netrpc_run(n_instances: int, window: int, seed: int,
                gap_s: float = 0.0):
    deployment = build_rack(7, 1, cal=PAXOS_CAL, seed=seed)
    cluster = PaxosCluster(deployment, proposers=["c0", "c1"],
                           acceptors=["c2", "c3"],
                           learners=["c4", "c5", "c6"])
    return cluster.run(n_instances, window=window, gap_s=gap_s)


def _baseline_run(label: str, n_instances: int, window: int, seed: int,
                  gap_s: float = 0.0):
    if label == "P4xos":
        return P4xosCluster(cal=PAXOS_CAL, seed=seed).run(
            n_instances, window=window, gap_s=gap_s)
    dpdk = label == "DPDK paxos"
    return SoftwarePaxosCluster(dpdk=dpdk, cal=PAXOS_CAL, seed=seed).run(
        n_instances, window=window, gap_s=gap_s)


def run(n_instances: int = 6000, window: int = 64, seed: int = 0) -> dict:
    """Regenerate Figure 7.

    Throughput is measured at saturation (deep proposal windows);
    latency in a separate moderate-load run (window 2), as the paper's
    testbed harness does.
    """
    results: Dict[str, dict] = {}
    latency_instances = max(200, n_instances // 10)

    saturated = _netrpc_run(n_instances, window, seed)
    light = _netrpc_run(latency_instances, 2, seed + 1,
                        gap_s=_LATENCY_GAP_S)
    results["NetRPC"] = {"throughput": saturated.throughput_msgs_per_s,
                         "p99": light.latency.p(99),
                         "decided": len(saturated.decided)}
    for label in ("P4xos", "DPDK paxos", "libpaxos"):
        saturated = _baseline_run(label, n_instances, window, seed)
        light = _baseline_run(label, latency_instances, 2, seed + 1,
                              gap_s=_LATENCY_GAP_S)
        results[label] = {"throughput": saturated.throughput_msgs_per_s,
                          "p99": light.latency.p(99),
                          "decided": len(saturated.decided)}

    rows = [[name,
             f"{r['throughput'] / 1e3:.0f} K/s",
             f"{r['p99'] * 1e6:.1f} us",
             r["decided"]]
            for name, r in results.items()]
    table = format_table("Figure 7: Paxos throughput and p99 latency",
                         ["system", "throughput", "p99", "decided"], rows)
    return {"results": results, "table": table}
