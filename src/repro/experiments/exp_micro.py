"""Table 5: microbenchmarks on basic INC functions.

Five rows: SyncAgtr goodput, AsyncAgtr goodput, voting delay, monitoring
delay, and packet-processing capacity — each for NetRPC, the matching
prior INC art (ATP / ASK / P4xos / ElasticSketch), and the pure-DPDK
software baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.apps import FlowMonitor
from repro.baselines import (
    P4xosCluster,
    SketchPacket,
    SketchSwitch,
    build_aggregation_job,
    SoftwarePaxosCluster,
)
from repro.control import build_rack
from repro.netsim import Host, Simulator, star
from repro.workloads import SyntheticTrace

from repro.netsim import scaled

from .common import CAL, format_table, run_async_aggregation, \
    run_sync_aggregation, voting_delay
from .exp_paxos import PAXOS_CAL

__all__ = ["run", "monitor_delay_netrpc", "monitor_delay_sketch"]

_MONITOR_OBSERVATIONS = 48_000
_MONITOR_QUERY_FLOWS = 32

# Monitoring runs against a modest collector box (the paper's setup):
# counting a flow record in software costs real CPU there, which is
# precisely the work the switch absorbs on the INC path.
MON_CAL = scaled(host_agent_cores=4, server_sw_inc_pkt_cpu_s=5e-6)


def monitor_delay_netrpc(software_only: bool = False, seed: int = 0
                         ) -> float:
    """Stream a trace batch and query counters; total elapsed time."""
    deployment = build_rack(2, 1, cal=MON_CAL, seed=seed)
    trace = SyntheticTrace(n_flows=500, seed=seed)
    records = list(trace.packets(_MONITOR_OBSERVATIONS))
    monitor = FlowMonitor(deployment, batch_flows=32)
    if software_only:
        # Emulate the pure-DPDK deployment: agents bypass the switch and
        # the server executes every primitive in software.
        for config in monitor.registered.configs.values():
            config.has_switch = False
    start = deployment.sim.now
    monitor.feed({"c0": records[: len(records) // 2],
                  "c1": records[len(records) // 2:]})
    truth = trace.exact_counts(records)
    top = sorted(truth, key=truth.get, reverse=True)[:_MONITOR_QUERY_FLOWS]
    monitor.query(top)
    return deployment.sim.now - start


def monitor_delay_sketch(seed: int = 0) -> float:
    """The same workload against the ElasticSketch switch."""
    sim = Simulator(seed=seed)
    switch = SketchSwitch(sim, "sw0", cal=MON_CAL)
    monitors = [Host(sim, f"m{i}", cores=MON_CAL.host_agent_cores,
                     rx_cpu_cost_s=MON_CAL.host_pkt_cpu_s)
                for i in range(2)]
    star(sim, switch, monitors, cal=MON_CAL)
    replies = []
    monitors[0].set_handler(lambda p, l: replies.append(p))
    trace = SyntheticTrace(n_flows=500, seed=seed)
    records = list(trace.packets(_MONITOR_OBSERVATIONS))
    start = sim.now
    batch: Dict[str, int] = {}
    sender = 0
    for record in records:
        batch[record.flow_id] = batch.get(record.flow_id, 0) + 1
        if len(batch) >= 32:
            monitors[sender % 2].send(
                SketchPacket(kind="report", src=f"m{sender % 2}",
                             dst="sw0", flows=dict(batch)), "sw0")
            batch = {}
            sender += 1
    if batch:
        monitors[0].send(SketchPacket(kind="report", src="m0", dst="sw0",
                                      flows=batch), "sw0")
    sim.run()
    truth = trace.exact_counts(records)
    top = sorted(truth, key=truth.get, reverse=True)[:_MONITOR_QUERY_FLOWS]
    monitors[0].send(SketchPacket(kind="query", src="m0", dst="sw0",
                                  flows={f: 0 for f in top}), "sw0")
    sim.run()
    assert replies, "sketch query produced no reply"
    return sim.now - start


def run(fast: bool = True) -> dict:
    """Regenerate Table 5; returns row dicts plus the printed table."""
    values = 64_000 if fast else 256_000
    keys = 2048 if fast else 8192

    repeats = 16 if fast else 40
    sync_netrpc = run_sync_aggregation(n_values=values).goodput_gbps
    sync_atp = build_aggregation_job("atp", 2, values // 32, cal=CAL).run()
    sync_dpdk = build_aggregation_job("byteps", 2, values // 32,
                                      cal=CAL).run()

    async_netrpc = run_async_aggregation(distinct_keys=keys,
                                         repeats=repeats)
    async_ask = run_async_aggregation(distinct_keys=keys, repeats=repeats,
                                      cache_policy="hash", app_name="ASK")
    async_dpdk = run_async_aggregation(distinct_keys=keys, repeats=repeats,
                                       software_only=True, app_name="SW")

    vote_netrpc = voting_delay(cal=PAXOS_CAL)
    vote_p4xos = P4xosCluster(cal=PAXOS_CAL).run(
        200, window=2, gap_s=50e-6).latency.mean()
    vote_dpdk = SoftwarePaxosCluster(dpdk=True, cal=PAXOS_CAL).run(
        200, window=2, gap_s=50e-6).latency.mean()

    mon_netrpc = monitor_delay_netrpc()
    mon_sketch = monitor_delay_sketch()
    mon_dpdk = monitor_delay_netrpc(software_only=True, seed=1)

    # Packet processing capacity (Mpps): the switch pipeline is line
    # rate; the DPDK hosts are bounded by per-packet CPU across cores.
    dpdk_mpps = CAL.host_agent_cores / CAL.host_pkt_cpu_s / 1e6

    rows = [
        ["SyncAgtr goodput (Gbps)", f"{sync_netrpc:.2f}",
         f"{sync_atp:.2f} (ATP)", f"{sync_dpdk:.2f}"],
        ["AsyncAgtr goodput (Gbps)", f"{async_netrpc.goodput_gbps:.2f}",
         f"{async_ask.goodput_gbps:.2f} (ASK)",
         f"{async_dpdk.goodput_gbps:.2f}"],
        ["Voting delay (us)", f"{vote_netrpc * 1e6:.1f}",
         f"{vote_p4xos * 1e6:.1f} (P4xos)", f"{vote_dpdk * 1e6:.1f}"],
        ["Monitor delay (ms)", f"{mon_netrpc * 1e3:.2f}",
         f"{mon_sketch * 1e3:.2f} (ElasticSketch)",
         f"{mon_dpdk * 1e3:.2f}"],
        ["Pkt capacity (Mpps)", ">1000", ">1000",
         f"{dpdk_mpps:.1f}"],
    ]
    table = format_table("Table 5: microbenchmarks",
                         ["metric", "NetRPC", "Prior art", "DPDK"], rows)
    return {
        "sync": {"netrpc": sync_netrpc, "atp": sync_atp,
                 "dpdk": sync_dpdk},
        "async": {"netrpc": async_netrpc.goodput_gbps,
                  "ask": async_ask.goodput_gbps,
                  "dpdk": async_dpdk.goodput_gbps},
        "voting_s": {"netrpc": vote_netrpc, "p4xos": vote_p4xos,
                     "dpdk": vote_dpdk},
        "monitor_s": {"netrpc": mon_netrpc, "sketch": mon_sketch,
                      "dpdk": mon_dpdk},
        "table": table,
    }
