"""Figure 13: running NetRPC on one vs two chained switches.

The §6.6 experiment: a MapReduce-style workload loops over N distinct
keys; a cache smaller than N suffers misses.  With two chained switches
the application's value region spans both register files, so the CHR
cliff moves from M to 2M distinct keys and goodput holds up deeper into
the sweep.

Register files are scaled down (`segment_registers`) so the crossover
happens at simulable key counts; the *ratio* of the two cliffs is the
figure's finding.
"""

from __future__ import annotations

from typing import Dict, List

from repro.control import build_chain
from repro.netsim import scaled

from .common import format_table, run_async_aggregation

__all__ = ["run", "TWO_SWITCH_CAL"]

# 32 segments x 512 registers = 16K slots per switch (the paper's 32x40K
# scaled 80x so the key sweep stays simulable).
TWO_SWITCH_CAL = scaled(segment_registers=512,
                        cache_update_window_s=25e-6,
                        mapping_quarantine_s=30e-6)


def run(fast: bool = True, seed: int = 0) -> dict:
    """Regenerate Figure 13: CHR and goodput vs distinct keys."""
    per_switch = 32 * TWO_SWITCH_CAL.segment_registers
    key_counts = [per_switch // 2, per_switch, per_switch * 2]
    if not fast:
        key_counts.append(per_switch * 5 // 2)
    repeats = 4 if fast else 6

    curves: Dict[str, List[dict]] = {"1 switch": [], "2 switches": []}
    for label, n_switches in (("1 switch", 1), ("2 switches", 2)):
        for keys in key_counts:
            deployment = build_chain(n_switches, 1, 1,
                                     cal=TWO_SWITCH_CAL, seed=seed)
            capacity = deployment.controller.pool.free_values - 1024
            result = run_async_aggregation(
                n_clients=1, distinct_keys=keys, repeats=repeats,
                value_slots=capacity, seed=seed, cal=TWO_SWITCH_CAL,
                deployment=deployment, app_name=f"MR-{label}-{keys}",
                limit=600.0)
            curves[label].append({"keys": keys,
                                  "chr": result.cache_hit_ratio,
                                  "goodput": result.goodput_gbps})
    rows = []
    for index, keys in enumerate(key_counts):
        row = [f"{keys / per_switch:.1f}M"]
        for label in ("1 switch", "2 switches"):
            point = curves[label][index]
            row.append(f"{point['chr']:.0%} / {point['goodput']:.2f}")
        rows.append(row)
    table = format_table(
        "Figure 13: distinct keys (in units of one switch's memory M) "
        "vs CHR / goodput Gbps",
        ["keys", "1 switch", "2 switches"], rows)
    return {"curves": curves, "key_counts": key_counts,
            "per_switch_slots": per_switch, "table": table}
