"""Figure 12: cache-policy comparison (CHR and goodput).

An AsyncAgtr workload whose key set exceeds the switch-memory
reservation, under four replacement policies: NetRPC's periodic
counting-LRU, FCFS, hash addressing (ASK/ATP style), and Power-of-N.
The paper's finding: CHR correlates with goodput, and the periodic
update tracks the hot set best under skew.
"""

from __future__ import annotations

from typing import Dict

from repro.netsim import scaled
from repro.sweep import RunSpec, sweep_values

from .common import format_table, run_async_aggregation

__all__ = ["run", "POLICIES", "CACHE_CAL"]

POLICIES = ("netrpc", "fcfs", "hash", "pon")

# The paper's cache-update window spans many millions of packets on a
# second-long run; scaled proportionally to the simulated run length so
# several update windows elapse within the experiment.
CACHE_CAL = scaled(cache_update_window_s=25e-6,
                   mapping_quarantine_s=30e-6)


def _policy_point(policy: str, distinct: int, slots: int, repeats: int,
                  seed: int) -> dict:
    """One cache-policy run (CACHE_CAL is module state, not a kwarg, to
    keep the spec pickle-light)."""
    result = run_async_aggregation(
        distinct_keys=distinct, repeats=repeats, cache_policy=policy,
        value_slots=slots, zipf_s=1.1, seed=seed, phases=3,
        cal=CACHE_CAL, app_name=f"CACHE-{policy}")
    return {"chr": result.cache_hit_ratio,
            "goodput_gbps": result.goodput_gbps}


def run(fast: bool = True, seed: int = 2) -> dict:
    """Regenerate Figure 12.

    The reservation (``value_slots``) holds half the distinct keys, so
    the policy decides which half lives on the switch; keys are Zipf
    distributed so there is a hot set worth tracking.
    """
    distinct = 4096 if fast else 16_384
    slots = distinct // 2
    repeats = 12 if fast else 24
    specs = [RunSpec("repro.experiments.exp_cache._policy_point",
                     {"policy": policy, "distinct": distinct,
                      "slots": slots, "repeats": repeats, "seed": seed},
                     label=f"fig12:{policy}")
             for policy in POLICIES]
    results: Dict[str, dict] = dict(zip(POLICIES, sweep_values(specs)))
    rows = [[policy, f"{r['chr']:.2%}", f"{r['goodput_gbps']:.2f}"]
            for policy, r in results.items()]
    table = format_table("Figure 12: cache policies (CHR / goodput)",
                         ["policy", "CHR", "Gbps"], rows)
    return {"results": results, "table": table}
