"""Figure 12: cache-policy comparison (CHR and goodput).

An AsyncAgtr workload whose key set exceeds the switch-memory
reservation, under four replacement policies: NetRPC's periodic
counting-LRU, FCFS, hash addressing (ASK/ATP style), and Power-of-N.
The paper's finding: CHR correlates with goodput, and the periodic
update tracks the hot set best under skew.
"""

from __future__ import annotations

from typing import Dict

from repro.netsim import scaled

from .common import format_table, run_async_aggregation

__all__ = ["run", "POLICIES", "CACHE_CAL"]

POLICIES = ("netrpc", "fcfs", "hash", "pon")

# The paper's cache-update window spans many millions of packets on a
# second-long run; scaled proportionally to the simulated run length so
# several update windows elapse within the experiment.
CACHE_CAL = scaled(cache_update_window_s=25e-6,
                   mapping_quarantine_s=30e-6)


def run(fast: bool = True, seed: int = 2) -> dict:
    """Regenerate Figure 12.

    The reservation (``value_slots``) holds half the distinct keys, so
    the policy decides which half lives on the switch; keys are Zipf
    distributed so there is a hot set worth tracking.
    """
    distinct = 4096 if fast else 16_384
    slots = distinct // 2
    repeats = 12 if fast else 24
    results: Dict[str, dict] = {}
    for policy in POLICIES:
        result = run_async_aggregation(
            distinct_keys=distinct, repeats=repeats, cache_policy=policy,
            value_slots=slots, zipf_s=1.1, seed=seed, phases=3,
            cal=CACHE_CAL, app_name=f"CACHE-{policy}")
        results[policy] = {"chr": result.cache_hit_ratio,
                           "goodput_gbps": result.goodput_gbps}
    rows = [[policy, f"{r['chr']:.2%}", f"{r['goodput_gbps']:.2f}"]
            for policy, r in results.items()]
    table = format_table("Figure 12: cache policies (CHR / goodput)",
                         ["policy", "CHR", "Gbps"], rows)
    return {"results": results, "table": table}
