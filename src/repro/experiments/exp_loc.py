"""Table 4: lines-of-code comparison, NetRPC vs prior INC arts.

The paper counts the human-written code an application developer
maintains.  In this reproduction:

* **NetRPC endhost** — the user-level application module built on the
  public RPC API (`repro/apps/<app>.py`): proto text, stubs, handlers.
* **NetRPC switch** — the NetFilter JSON lines (the only "switch-side"
  artifact a NetRPC user writes; the paper's 13-26 LoC).
* **Prior-art endhost / switch** — the corresponding baseline
  implementation in `repro/baselines/`, split between its host-side
  protocol machinery and its switch-resident logic, plus the transport
  the baseline must hand-roll (NetRPC users get it from the framework).

Absolute counts differ from the paper's C++/P4 code bases; the claim
under test is the *ratio*: NetRPC applications need a small fraction of
the code, and no switch programming beyond a filter.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Tuple

from repro.apps import monitoring as monitoring_mod
from repro.apps import paxos as paxos_mod
from repro.apps import training as training_mod
from repro.apps import wordcount as wordcount_mod
from repro.apps.monitoring import monitor_filters
from repro.apps.paxos import paxos_filters
from repro.apps.training import gradient_filter
from repro.apps.wordcount import mr_filters
from repro.baselines import aggregation as aggregation_mod
from repro.baselines import paxos as paxos_baseline_mod
from repro.baselines import sketch as sketch_mod

from .common import format_table

__all__ = ["run", "count_loc", "netfilter_loc"]


def count_loc(module) -> int:
    """Non-blank, non-comment source lines of a module."""
    source = inspect.getsource(module)
    count = 0
    in_docstring = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            if '"""' in line:
                in_docstring = False
            continue
        if line.startswith('"""') or line.startswith("r'''") or \
                line.startswith("'''"):
            if line.count('"""') == 1 and line.count("'''") == 0:
                in_docstring = True
            continue
        if line.startswith("#"):
            continue
        count += 1
    return count


def netfilter_loc(filters: Dict[str, str]) -> int:
    """Lines across an app's NetFilter files (the switch-side artifact)."""
    return sum(len([l for l in text.splitlines() if l.strip()])
               for text in filters.values())


# The paper's Table 4: human-written LoC of the handcrafted prior-art
# systems (endhost + switch).  Our baselines are deliberately compact
# *behavioural models*, so the reduction claim is evaluated against the
# real systems' reported complexity, with the model sizes shown for
# transparency.
PAPER_PRIOR_LOC = {
    "SyncAggr": 3394 + 5329,
    "AsyncAggr": 3278 + 4258,
    "KeyValue": 898 + 2360,
    "Agreement": 5441 + 931,
}


def run() -> dict:
    """Regenerate Table 4."""
    apps: List[Tuple[str, object, Dict[str, str], List[object]]] = [
        ("SyncAggr", training_mod, {"agtr.nf": gradient_filter(2)},
         [aggregation_mod]),
        ("AsyncAggr", wordcount_mod, mr_filters(), [aggregation_mod]),
        ("KeyValue", monitoring_mod, monitor_filters(), [sketch_mod]),
        ("Agreement", paxos_mod, paxos_filters(2), [paxos_baseline_mod]),
    ]
    results = {}
    rows = []
    for name, app_module, filters, baseline_modules in apps:
        endhost = count_loc(app_module)
        switch = netfilter_loc(filters)
        model = sum(count_loc(m) for m in baseline_modules)
        paper_prior = PAPER_PRIOR_LOC[name]
        reduction = 1 - (endhost + switch) / paper_prior
        results[name] = {"netrpc_endhost": endhost,
                         "netrpc_switch": switch,
                         "baseline_model": model,
                         "paper_prior": paper_prior,
                         "reduction": reduction}
        rows.append([name, endhost, switch, model, paper_prior,
                     f"{reduction:.0%}"])
    table = format_table(
        "Table 4: LoC — complete NetRPC app vs prior INC art",
        ["app type", "NetRPC endhost", "NetRPC filter",
         "baseline model (sim)", "prior art (paper)", "reduction"], rows)
    return {"results": results, "table": table}
