"""Rack-scale fat-tree forwarding under sharded co-simulation.

The §6-scale NetRPC testbed is a rack of servers behind a Tofino; the
simulated counterpart that stresses the event core is a multi-rack /
fat-tree fabric pushing tens of thousands of flow packets through the
``Link`` transmit model.  This experiment family drives that fabric
through :mod:`repro.shard`: the structure is partitioned at rack
boundaries, each shard runs in its own worker process, and the merged
result is bit-identical to the ``workers=1`` in-process run (and
results-identical to the single-simulator reference).

Scenarios
---------

``rack2`` / ``rack4``
    2 or 4 racks of hosts under ToRs and a small spine tier — the
    partitioner's bread and butter, cheap enough for CI.
``fattree4``
    A k=4 fat tree (16 hosts, 20 switches): multipath ECMP across
    pods, 4 shards (one per pod) plus the core rack.
``rackscale``
    A k=8 fat tree (128 hosts, 80 switches) with tens of thousands of
    flows in non-fast mode — the speedup workload for
    ``benchmarks/runner.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.netsim import scaled
from repro.netsim.topology import fat_tree_structure, multi_rack_structure
from repro.shard import (ShardScenario, partition_structure,
                         rack_chaos_schedule, results_identical, run_sharded,
                         run_unsharded, synth_workload)

from .common import format_table

__all__ = ["run", "SCENARIOS", "FATTREE_CAL", "build_scenario"]

# Cut links are the lookahead: a 10us switch-to-switch propagation delay
# keeps barriers coarse enough that rounds batch useful work, while host
# links keep the default calibration so endpoint timing is untouched.
FATTREE_CAL = scaled(switch_link_delay_s=10e-6)

SCENARIOS: Dict[str, Dict[str, Any]] = {
    "rack2": {"kind": "multi_rack", "n_racks": 2, "hosts_per_rack": 4,
              "n_spines": 1, "n_shards": 2,
              "flows": (60, 240), "until": (1.5e-3, 4e-3)},
    "rack4": {"kind": "multi_rack", "n_racks": 4, "hosts_per_rack": 4,
              "n_spines": 2, "n_shards": 4,
              "flows": (120, 600), "until": (2e-3, 6e-3)},
    "fattree4": {"kind": "fat_tree", "k": 4, "n_shards": 4,
                 "flows": (120, 600), "until": (2e-3, 6e-3)},
    "rackscale": {"kind": "fat_tree", "k": 8, "n_shards": 8,
                  "flows": (2_000, 20_000), "until": (4e-3, 20e-3)},
}


def build_scenario(scenario: str = "rack4", fast: bool = True,
                   seed: int = 0, chaos: bool = False):
    """Build the (ShardScenario, Partition) pair for a named scenario."""
    try:
        spec = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(f"unknown scenario {scenario!r}; choose from "
                         f"{sorted(SCENARIOS)}") from None
    if spec["kind"] == "multi_rack":
        structure = multi_rack_structure(spec["n_racks"],
                                         spec["hosts_per_rack"],
                                         n_spines=spec["n_spines"])
    else:
        structure = fat_tree_structure(spec["k"])
    n_flows = spec["flows"][0] if fast else spec["flows"][1]
    until = spec["until"][0] if fast else spec["until"][1]
    flows = synth_workload(structure, n_flows, seed=seed, t0=0.0,
                           t1=until * 0.6)
    partition = partition_structure(structure, spec["n_shards"],
                                    cal=FATTREE_CAL)
    schedule = None
    if chaos:
        schedule = rack_chaos_schedule(structure, partition.shard_map(),
                                       seed=seed + 1, t0=0.0, t1=until)
    scenario_obj = ShardScenario(structure=structure, flows=flows,
                                 until=until, seed=seed, cal=FATTREE_CAL,
                                 chaos=schedule)
    return scenario_obj, partition


def run(scenario: str = "rack4", fast: bool = True, seed: int = 0,
        workers: Optional[int] = None, chaos: bool = False,
        compare_unsharded: Optional[bool] = None,
        profile_dir: Optional[str] = None,
        trace: Optional[str] = None) -> dict:
    """Run one scenario sharded; optionally diff against the reference.

    ``compare_unsharded`` defaults to True everywhere but ``rackscale``
    (where the single-core reference is the expensive thing the sharding
    exists to avoid).

    ``trace`` names a Perfetto JSON output path: the run executes with
    the flight recorder armed (worker capture + coordinator telemetry,
    DESIGN.md §4.11) and the merged timeline plus its metrics JSONL are
    written there.  Tracing observes only — fingerprints and event
    censuses are bit-identical either way.
    """
    from repro.obs import TRACE, keep_registries
    from repro.obs.merge import write_merged_trace

    scenario_obj, partition = build_scenario(scenario, fast=fast,
                                             seed=seed, chaos=chaos)
    tracing_was_on = TRACE.enabled
    if trace and not tracing_was_on:
        TRACE.start()
    try:
        result = run_sharded(scenario_obj, partition=partition,
                             workers=workers, profile_dir=profile_dir)
    finally:
        if trace and not tracing_was_on:
            TRACE.stop()

    trace_path = metrics_path = None
    if trace:
        trace_path, metrics_path = write_merged_trace(result.obs, trace)
        if not tracing_was_on:
            TRACE.clear()
            keep_registries(False)

    if compare_unsharded is None:
        compare_unsharded = scenario != "rackscale"
    identical = None
    unsharded_events = None
    if compare_unsharded:
        reference = run_unsharded(scenario_obj)
        identical = results_identical(result, reference)
        unsharded_events = reference.events

    rows = [[sid, f"{clock * 1e3:.3f}", events, f"{work * 1e3:.1f}",
             f"{wait * 1e3:.1f}"]
            for sid, (clock, events, work, wait)
            in enumerate(zip(result.shard_clocks, result.events_per_shard,
                             result.work_s, result.barrier_wait_s))]
    table = format_table(
        f"Sharded fat-tree [{scenario}]: {result.n_shards} shards / "
        f"{result.workers} workers, {result.rounds} barriers",
        ["shard", "clock ms", "events", "work ms", "barrier-wait ms"],
        rows)
    return {
        "scenario": scenario,
        "n_shards": result.n_shards,
        "workers": result.workers,
        "cut_links": len(partition.cut_links),
        "lookahead_s": partition.min_lookahead,
        "rounds": result.rounds,
        "total_events": result.total_events,
        "flows_delivered": len(result.flows),
        "fingerprint": result.fingerprint,
        "chaos_fingerprint": result.chaos_fingerprint,
        "results_identical_to_unsharded": identical,
        "unsharded_events": unsharded_events,
        "wall_s": result.wall_s,
        "events_per_sec": result.events_per_sec,
        "barriers_per_sec": result.barriers_per_sec,
        "transport": result.transport,
        "messages_relayed": result.messages_relayed,
        "frames_sent": result.frames_sent,
        "transport_bytes": result.transport_bytes,
        "bytes_per_round": result.bytes_per_round,
        "barriers_per_sim_sec": result.barriers_per_sim_sec,
        "horizon_rounds_skipped": result.horizon_rounds_skipped,
        "shm_spills": result.shm_spills,
        "scheduler_stats": result.scheduler_stats,
        "work_s": result.work_s,
        "barrier_wait_s": result.barrier_wait_s,
        "trace_path": None if trace_path is None else str(trace_path),
        "metrics_path": None if metrics_path is None
        else str(metrics_path),
        "table": table,
    }
