"""Shared measurement harnesses for the paper's evaluation (§6).

Every table/figure benchmark builds on these: synchronous/asynchronous
aggregation goodput, voting and monitoring latency, and small helpers
for reporting.  Absolute numbers come from the calibrated simulator;
benchmarks assert *shape* (orderings, ratios, crossovers), never
equality with the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.control import Deployment, build_rack
from repro.inc import Task
from repro.netsim import (
    Calibration,
    ChaosSchedule,
    InvariantChecker,
    RandomLoss,
    RateMeter,
    SimulationError,
    SwitchReboot,
    scaled,
)
from repro.protocol import (
    INT32_MAX,
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    RIPProgram,
)

__all__ = [
    "CAL",
    "sync_program", "async_programs", "vote_program",
    "SyncResult", "run_sync_aggregation", "sync_chunk_latency",
    "AsyncResult", "run_async_aggregation",
    "voting_delay", "format_table",
    "ChaosRunResult", "run_chaos_sync_round", "chaos_task_values",
    "reboot_schedule_factory", "run_chaos_reboot_round",
]

CAL = scaled()

BIG = INT32_MAX - 10   # a value that overflows when two clients add it


# ---------------------------------------------------------------------------
# program factories (the NetFilters behind each app type)
# ---------------------------------------------------------------------------
def sync_program(n_clients: int, clear: ClearPolicy = ClearPolicy.COPY,
                 app_name: str = "SYNC") -> RIPProgram:
    return RIPProgram(
        app_name=app_name, get_field="r.t", add_to_field="q.t", clear=clear,
        cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=n_clients))


def async_programs(app_name: str = "ASYNC") -> List[RIPProgram]:
    return [
        RIPProgram(app_name=app_name, add_to_field="r.kvs",
                   cntfwd=CntFwdSpec(target=ForwardTarget.SRC)),
        RIPProgram(app_name=app_name, get_field="q.kvs",
                   cntfwd=CntFwdSpec(target=ForwardTarget.SRC)),
    ]


def vote_program(threshold: int, app_name: str = "VOTE") -> RIPProgram:
    return RIPProgram(
        app_name=app_name, get_field="v.kvs", add_to_field="v.kvs",
        cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=threshold))


# ---------------------------------------------------------------------------
# synchronous aggregation
# ---------------------------------------------------------------------------
@dataclass
class SyncResult:
    goodput_gbps: float              # per-sender payload goodput
    elapsed_s: float
    overflow_chunks: int = 0
    retransmits: int = 0
    meter: Optional[RateMeter] = None


def run_sync_aggregation(n_clients: int = 2, n_values: int = 128_000,
                         clear: ClearPolicy = ClearPolicy.COPY,
                         loss: float = 0.0, seed: int = 0,
                         cal: Calibration = CAL, cc_enabled: bool = True,
                         overflow_ratio: float = 0.0,
                         value_slots: int = 262_144,
                         deployment: Optional[Deployment] = None,
                         limit: float = 120.0) -> SyncResult:
    """One SyncAgtr round of ``n_values`` per client; per-sender goodput."""
    if deployment is None:
        loss_factory = (lambda: RandomLoss(loss)) if loss else None
        deployment = build_rack(n_clients, 1, cal=cal, seed=seed,
                                loss_factory=loss_factory)
    (config,) = deployment.controller.register(
        [sync_program(n_clients, clear)], server=deployment.server_name,
        clients=deployment.client_names[:n_clients],
        value_slots=value_slots, counter_slots=16_384, linear=True,
        cc_enabled=cc_enabled)
    start = deployment.sim.now
    # Overflow chunks are drawn once per chunk (not per client): an
    # accumulator only overflows when every contributor carries the
    # near-max value, like a badly scaled gradient coordinate.
    overflow_chunks = set()
    if overflow_ratio > 0:
        import random as _random
        chunk_rng = _random.Random(seed + 77)
        for chunk_start in range(0, n_values, 32):
            if chunk_rng.random() < overflow_ratio:
                overflow_chunks.add(chunk_start)
    events = []
    for index in range(n_clients):
        if overflow_chunks:
            items = []
            for chunk_start in range(0, n_values, 32):
                value = BIG if chunk_start in overflow_chunks else 1
                items.extend((chunk_start + j, value) for j in range(32))
            items = items[:n_values]
        else:
            items = [(j, 1) for j in range(n_values)]
        task = Task(app=config, round=0, items=items, expect_result=True)
        events.append(deployment.client_agent(index).submit(task))
    results = [deployment.sim.run_until(e, limit=start + limit)
               for e in events]
    elapsed = deployment.sim.now - start
    payload_bits = n_values * 4 * 8
    agent0 = deployment.client_agent(0)
    retx = sum(f.stats["retransmits"]
               for f in agent0.app_state(config.program.app_name).flows)
    return SyncResult(
        goodput_gbps=payload_bits / elapsed / 1e9,
        elapsed_s=elapsed,
        overflow_chunks=sum(r.overflow_chunks for r in results),
        retransmits=retx)


def sync_chunk_latency(n_clients: int = 2,
                       clear: ClearPolicy = ClearPolicy.COPY,
                       rounds: int = 20, cal: Calibration = CAL,
                       overflow_ratio: float = 0.0, seed: int = 0) -> float:
    """Mean completion latency of a single 32-value chunk (Table 6)."""
    deployment = build_rack(n_clients, 1, cal=cal, seed=seed)
    (config,) = deployment.controller.register(
        [sync_program(n_clients, clear)], server="s0",
        clients=deployment.client_names[:n_clients],
        value_slots=4096, counter_slots=512, linear=True)
    rng = deployment.sim.rng
    samples = []
    for round_no in range(rounds):
        value = BIG if rng.random() < overflow_ratio else 1
        start = deployment.sim.now
        events = [deployment.client_agent(i).submit(
            Task(app=config, round=round_no,
                 items=[(j, value) for j in range(32)],
                 expect_result=True))
            for i in range(n_clients)]
        for event in events:
            deployment.sim.run_until(event, limit=start + 10.0)
        samples.append(deployment.sim.now - start)
        deployment.sim.run(until=deployment.sim.now + 1e-4)
    return sum(samples) / len(samples)


# ---------------------------------------------------------------------------
# asynchronous (keyed) aggregation
# ---------------------------------------------------------------------------
@dataclass
class AsyncResult:
    goodput_gbps: float
    cache_hit_ratio: float
    elapsed_s: float
    distinct_keys: int


def run_async_aggregation(n_clients: int = 2, distinct_keys: int = 4096,
                          repeats: int = 4, cache_policy: str = "netrpc",
                          value_slots: int = 65_536, seed: int = 0,
                          cal: Calibration = CAL, zipf_s: float = 0.0,
                          software_only: bool = False,
                          deployment: Optional[Deployment] = None,
                          app_name: str = "ASYNC", phases: int = 1,
                          limit: float = 240.0) -> AsyncResult:
    """Loop ``distinct_keys`` keys ``repeats`` times through Map.addTo.

    The §6.6 workload: a cache smaller than the key set suffers misses.
    ``phases > 1`` rotates which keys are hot partway through the stream
    (the dynamic popularity that separates adaptive cache policies from
    FCFS in Figure 12).  Returns per-sender goodput and the
    client-observed cache hit ratio.
    """
    if deployment is None:
        deployment = build_rack(n_clients, 1, cal=cal, seed=seed)
    reduce_cfg, _query_cfg = deployment.controller.register(
        async_programs(app_name), server=deployment.server_name,
        clients=deployment.client_names[:n_clients],
        value_slots=value_slots, cache_policy=cache_policy,
        software_only=software_only)
    total = distinct_keys * repeats
    per_phase = max(1, total // max(1, phases))
    if zipf_s > 0:
        from repro.workloads import ZipfGenerator
        sampler = ZipfGenerator(distinct_keys, s=zipf_s, seed=seed)
        key_stream = []
        for position in range(total):
            phase = min(position // per_phase, phases - 1)
            rank = sampler.sample_index()
            actual = (rank + phase * (distinct_keys // max(1, phases))) \
                % distinct_keys
            key_stream.append(f"key-{actual}")
    else:
        key_stream = [f"key-{i % distinct_keys}" for i in range(total)]

    sim = deployment.sim
    start = sim.now
    mapped_total = 0
    fallback_total = 0

    def collect(event):
        nonlocal mapped_total, fallback_total
        if event.ok and event.value is not None:
            mapped_total += event.value.mapped_pairs
            fallback_total += event.value.fallback_pairs

    def client_proc(agent, keys):
        # Pipeline several outstanding calls (the agent's worker threads
        # drain them concurrently, §4's automatic data parallelism).
        batch, inflight = 1024, []
        for begin in range(0, len(keys), batch):
            task = Task(app=reduce_cfg,
                        items=[(k, 1) for k in keys[begin:begin + batch]],
                        expect_result=False)
            event = agent.submit(task)
            event.add_callback(collect)
            inflight.append(event)
            if len(inflight) >= 8:
                yield inflight.pop(0)
        for event in inflight:
            yield event

    processes = [sim.process(
        client_proc(deployment.client_agent(i), list(key_stream)),
        name=f"async-{i}") for i in range(n_clients)]
    sim.run_until(sim.all_of(processes), limit=start + limit)
    elapsed = sim.now - start
    payload_bits = len(key_stream) * 8 * 8   # key + value per pair
    total = mapped_total + fallback_total
    return AsyncResult(
        goodput_gbps=payload_bits / elapsed / 1e9,
        cache_hit_ratio=mapped_total / total if total else 0.0,
        elapsed_s=elapsed, distinct_keys=distinct_keys)


# ---------------------------------------------------------------------------
# voting latency
# ---------------------------------------------------------------------------
def voting_delay(n_voters: int = 3, rounds: int = 30,
                 cal: Calibration = CAL,
                 software_only: bool = False, seed: int = 0) -> float:
    """Mean time for a voting round to reach all clients (Table 5).

    Ballots are index-addressed (one counter register per round, like
    the Paxos application), so steady-state votes take the pure switch
    path.
    """
    deployment = build_rack(n_voters, 1, cal=cal, seed=seed)
    (config,) = deployment.controller.register(
        [vote_program(n_voters)], server="s0",
        clients=deployment.client_names[:n_voters],
        value_slots=4096, counter_slots=4096, linear=True,
        software_only=software_only)
    sim = deployment.sim
    samples = []
    for round_no in range(rounds):
        start = sim.now
        events = [deployment.client_agent(i).submit(
            Task(app=config, round=round_no, items=[(round_no, 1)],
                 expect_result=True, indexed=True))
            for i in range(n_voters)]
        for event in events:
            sim.run_until(event, limit=start + 10.0)
        samples.append(sim.now - start)
        sim.run(until=sim.now + 1e-4)
    steady = samples[1:] or samples
    return sum(steady) / len(steady)


# ---------------------------------------------------------------------------
# chaos-enabled harness (fault injection + invariant checking)
# ---------------------------------------------------------------------------
@dataclass
class ChaosRunResult:
    """Outcome of one faulted SyncAgtr round, judged against its own
    no-fault baseline: ``ok`` means every client got the bit-identical
    aggregate; otherwise ``failure`` carries the *explicit* error (a
    simulation timeout / give-up) — ``violations`` non-empty is the one
    forbidden outcome, a silent wrong answer or broken invariant."""

    ok: bool
    failure: Optional[str]
    expected: Dict[int, int]
    values: Optional[Dict[int, int]]       # client 0's view (if resolved)
    baseline_elapsed_s: float
    final_time_s: float
    fingerprint: Optional[str]
    violations: List[str]
    residue: int
    switch_stats: Dict[str, float]
    server_stats: Dict[str, float]
    # Failover audit trail (controller-recorded; both picklable so the
    # sweep engine's subprocess workers can ship them back unchanged).
    audit: Dict[str, float] = field(default_factory=dict)
    audit_trail: List[tuple] = field(default_factory=list)


def chaos_task_values(n_clients: int, n_values: int) -> List[List[tuple]]:
    """Deterministic, non-uniform per-client (index, value) items.

    Distinct values per client so a partial aggregate (one client's
    contribution missing or doubled) can never collide with the true
    sum — the property the silent-wrong-answer check rides on.
    """
    return [[(j, ((i + 1) * (j % 13 + 1)) % 97 + 1) for j in range(n_values)]
            for i in range(n_clients)]


def run_chaos_sync_round(n_clients: int = 2, n_values: int = 256,
                         seed: int = 0, chaos_seed: Optional[int] = None,
                         schedule: Optional[ChaosSchedule] = None,
                         schedule_factory: Optional[
                             Callable[[float, Deployment],
                                      ChaosSchedule]] = None,
                         n_link_faults: int = 3, n_switch_reboots: int = 1,
                         n_host_pauses: int = 1,
                         cal: Calibration = CAL, value_slots: int = 8192,
                         counter_slots: int = 1024,
                         limit: float = 2.0) -> ChaosRunResult:
    """One SyncAgtr round under a fault schedule, with invariants checked.

    Runs the identical workload twice: a no-fault baseline (which also
    yields the fault window ``[0.15 T, 0.85 T]`` for random schedules),
    then a chaos run with the schedule installed.  The schedule comes
    from ``schedule`` verbatim, from ``schedule_factory(baseline_elapsed,
    deployment)``, or from ``ChaosSchedule.random(chaos_seed, ...)``.
    """
    per_client = chaos_task_values(n_clients, n_values)
    expected = {j: sum(items[j][1] for items in per_client)
                for j in range(n_values)}

    def _run(deployment, arm):
        controller = deployment.controller
        (config,) = controller.register(
            [sync_program(n_clients)], server=deployment.server_name,
            clients=deployment.client_names[:n_clients],
            value_slots=value_slots, counter_slots=counter_slots,
            linear=True)
        checker = fingerprint = None
        if arm is not None:
            checker, fingerprint = arm(deployment, config)
        sim = deployment.sim
        start = sim.now
        events = [deployment.client_agent(i).submit(
            Task(app=config, round=0, items=per_client[i],
                 expect_result=True))
            for i in range(n_clients)]
        failure = None
        results = []
        for event in events:
            try:
                results.append(sim.run_until(event, limit=start + limit))
            except SimulationError as exc:
                failure = f"explicit failure: {exc}"
                break
        return config, checker, fingerprint, results, failure, \
            sim.now - start

    # -- no-fault baseline ---------------------------------------------
    baseline = build_rack(n_clients, 1, cal=cal, seed=seed)
    _, _, _, base_results, base_failure, base_elapsed = _run(baseline, None)
    if base_failure is not None:   # pragma: no cover - harness sanity
        raise RuntimeError(f"no-fault baseline did not complete: "
                           f"{base_failure}")
    for result in base_results:
        if result.values != expected:   # pragma: no cover - harness sanity
            raise RuntimeError("no-fault baseline diverged from the "
                               "in-memory sum")

    # -- chaos run ------------------------------------------------------
    def arm(deployment, config):
        if schedule is not None:
            plan = schedule
        elif schedule_factory is not None:
            plan = schedule_factory(base_elapsed, deployment)
        else:
            plan = ChaosSchedule.random(
                0 if chaos_seed is None else chaos_seed, deployment,
                t0=0.15 * base_elapsed, t1=0.85 * base_elapsed,
                n_link_faults=n_link_faults,
                n_switch_reboots=n_switch_reboots,
                n_host_pauses=n_host_pauses)
        plan.install(deployment)
        checker = InvariantChecker(deployment)
        # Bounded observation cadence: frequent enough to catch drift
        # mid-round, coarse enough that a timed-out run stays cheap.
        checker.start(max(cal.retransmit_timeout_s, limit / 2000.0))
        return checker, plan.fingerprint()

    deployment = build_rack(n_clients, 1, cal=cal, seed=seed)
    config, checker, fingerprint, results, failure, _ = \
        _run(deployment, arm)

    # Drain in-flight retransmissions/clears before judging quiescent
    # state (bounded: flows idle once every chunk and return is acked).
    sim = deployment.sim
    sim.run(until=sim.now + 100 * cal.retransmit_timeout_s)
    checker.observe()

    values = None
    ok = failure is None and len(results) == n_clients
    for index, result in enumerate(results):
        if index == 0:
            values = result.values
        if not checker.check_result(f"client {index}", expected,
                                    result.values):
            ok = False
    residue = checker.register_residue(config)
    return ChaosRunResult(
        ok=ok, failure=failure, expected=expected, values=values,
        baseline_elapsed_s=base_elapsed, final_time_s=sim.now,
        fingerprint=fingerprint, violations=list(checker.violations),
        residue=residue,
        switch_stats=deployment.switches[0].stats.as_dict(),
        server_stats=dict(deployment.server_agent(0).stats),
        audit=deployment.controller.audit.as_dict(),
        audit_trail=list(deployment.controller.audit_log))


def reboot_schedule_factory(frac: float) -> Callable[[float, Deployment],
                                                     ChaosSchedule]:
    """Schedule factory: reboot the first switch at ``frac`` of the
    no-fault baseline's elapsed time (the acceptance scenario's knob)."""
    def factory(base_elapsed: float,
                deployment: Deployment) -> ChaosSchedule:
        return ChaosSchedule([SwitchReboot(
            switch=deployment.switches[0].name, at=frac * base_elapsed)])
    return factory


def run_chaos_reboot_round(seed: int = 0, frac: float = 0.45,
                           n_clients: int = 2,
                           n_values: int = 256) -> ChaosRunResult:
    """Mid-round switch-reboot acceptance run as a pure function of
    (seed, frac) — importable by sweep workers, unlike the closure the
    schedule factory otherwise would be."""
    return run_chaos_sync_round(
        n_clients=n_clients, n_values=n_values, seed=seed,
        schedule_factory=reboot_schedule_factory(frac))


# ---------------------------------------------------------------------------
# reporting helpers
# ---------------------------------------------------------------------------
def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table used by every benchmark's printed output."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)
