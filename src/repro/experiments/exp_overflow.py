"""Figure 11: arithmetic overflow ratio vs throughput.

SyncAggr with a controlled fraction of chunks carrying near-INT32_MAX
values: the switch clamps, clients replay those chunks raw, and the
server computes the exact result in 64-bit software (§5.2.1).  The
throughput must degrade smoothly with the overflow ratio while the pure
software baseline stays flat (and lower at the INC side's no-overflow
end).
"""

from __future__ import annotations

from typing import List

from repro.baselines import build_aggregation_job

from .common import CAL, format_table, run_sync_aggregation

__all__ = ["run", "OVERFLOW_RATIOS"]

OVERFLOW_RATIOS = (0.0, 0.00001, 0.0001, 0.001, 0.01)


def run(fast: bool = True, seed: int = 3) -> dict:
    """Regenerate Figure 11."""
    n_values = 64_000 if fast else 128_000
    curve: List[float] = []
    overflow_seen: List[int] = []
    for ratio in OVERFLOW_RATIOS:
        result = run_sync_aggregation(n_values=n_values,
                                      overflow_ratio=ratio, seed=seed)
        curve.append(result.goodput_gbps)
        overflow_seen.append(result.overflow_chunks)
    software = build_aggregation_job("byteps", 2, n_values // 32,
                                     cal=CAL).run()
    rows = [[f"{ratio:.3%}", f"{gbps:.2f}", chunks]
            for ratio, gbps, chunks in zip(OVERFLOW_RATIOS, curve,
                                           overflow_seen)]
    rows.append(["software", f"{software:.2f}", "-"])
    table = format_table(
        "Figure 11: overflow ratio vs goodput (Gbps)",
        ["overflow ratio", "NetRPC", "overflow chunks"], rows)
    return {"ratios": OVERFLOW_RATIOS, "goodput": curve,
            "overflow_chunks": overflow_seen, "software": software,
            "table": table}
