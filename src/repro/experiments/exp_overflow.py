"""Figure 11: arithmetic overflow ratio vs throughput.

SyncAggr with a controlled fraction of chunks carrying near-INT32_MAX
values: the switch clamps, clients replay those chunks raw, and the
server computes the exact result in 64-bit software (§5.2.1).  The
throughput must degrade smoothly with the overflow ratio while the pure
software baseline stays flat (and lower at the INC side's no-overflow
end).
"""

from __future__ import annotations

from typing import List

from repro.baselines import build_aggregation_job
from repro.sweep import RunSpec, sweep_values

from .common import CAL, format_table, run_sync_aggregation

__all__ = ["run", "OVERFLOW_RATIOS"]

OVERFLOW_RATIOS = (0.0, 0.00001, 0.0001, 0.001, 0.01)


def _overflow_point(ratio: float, n_values: int, seed: int) -> dict:
    """One overflow-ratio run: goodput plus chunks that clamped."""
    result = run_sync_aggregation(n_values=n_values,
                                  overflow_ratio=ratio, seed=seed)
    return {"goodput_gbps": result.goodput_gbps,
            "overflow_chunks": result.overflow_chunks}


def _software_point(n_values: int) -> float:
    """The flat pure-software baseline at the bottom of Figure 11."""
    return build_aggregation_job("byteps", 2, n_values // 32,
                                 cal=CAL).run()


def run(fast: bool = True, seed: int = 3) -> dict:
    """Regenerate Figure 11."""
    n_values = 64_000 if fast else 128_000
    specs = [RunSpec("repro.experiments.exp_overflow._overflow_point",
                     {"ratio": ratio, "n_values": n_values, "seed": seed},
                     label=f"fig11:{ratio:.3%}")
             for ratio in OVERFLOW_RATIOS]
    specs.append(RunSpec("repro.experiments.exp_overflow._software_point",
                         {"n_values": n_values}, label="fig11:software"))
    *points, software = sweep_values(specs)
    curve: List[float] = [p["goodput_gbps"] for p in points]
    overflow_seen: List[int] = [p["overflow_chunks"] for p in points]
    rows = [[f"{ratio:.3%}", f"{gbps:.2f}", chunks]
            for ratio, gbps, chunks in zip(OVERFLOW_RATIOS, curve,
                                           overflow_seen)]
    rows.append(["software", f"{software:.2f}", "-"])
    table = format_table(
        "Figure 11: overflow ratio vs goodput (Gbps)",
        ["overflow ratio", "NetRPC", "overflow chunks"], rows)
    return {"ratios": OVERFLOW_RATIOS, "goodput": curve,
            "overflow_chunks": overflow_seen, "software": software,
            "table": table}
