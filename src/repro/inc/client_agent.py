"""The per-host client agent (paper §4, §5).

The client agent sits between the RPC layer and the network.  It:

* partitions each task (an RPC call's IEDT stream) into chunks of up to
  32 kv pairs and spreads them across parallel reliable flows — the
  paper's *automatic data parallelism*;
* quantized values arrive from the RPC layer; the agent decides per key
  whether the pair rides the switch path (granted mapping), the server
  path (``is_cross``: unmapped or collided keys), or the overflow
  bypass (``is_of``);
* assembles results from bounced packets, switch multicasts, and server
  return streams, adjusting for the lazy clear policy's baselines;
* detects overflow sentinels and re-executes the affected chunks through
  the server in software (§5.2.1);
* reports per-address use counts each cache-update window so the server
  can run its periodic LRU policy (§5.2.2).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Host, Simulator
from repro.netsim.events import Event
from repro.obs.tracer import TRACE
from repro.protocol import (
    ClearPolicy,
    ForwardTarget,
    KVBlock,
    KVPair,
    KV_PAIRS_PER_PACKET,
    Packet,
    RIPProgram,
)

from .addressing import LogicalSpace
from .app import AppConfig, Task, TaskResult
from .transport import ReliableFlow

__all__ = ["ClientAgent"]

_MISS = object()   # sentinel: key absent from the logical-address memo


class _ChunkState:
    """One in-flight chunk (<= 32 kv pairs) of a task."""

    __slots__ = ("offset", "items", "resolved", "overflowed", "mapped",
                 "awaiting_result")

    def __init__(self, offset: int, items: List[Tuple[Any, int]],
                 mapped: bool, awaiting_result: bool):
        self.offset = offset
        self.items = items
        self.mapped = mapped
        self.awaiting_result = awaiting_result
        self.resolved = False
        self.overflowed = False


class _TaskState:
    def __init__(self, task: Task, done: Event):
        self.task = task
        self.done = done
        self.chunks: Dict[int, _ChunkState] = {}
        self.unresolved = 0
        self.values: Dict[Any, int] = {}
        self.mapped_pairs = 0
        self.fallback_pairs = 0
        self.overflow_chunks = 0
        self.reply_payload: Any = None

    def finish_if_complete(self) -> bool:
        if self.unresolved == 0 and not self.done.triggered:
            result = TaskResult(
                task=self.task, values=self.values,
                overflow_chunks=self.overflow_chunks,
                fallback_pairs=self.fallback_pairs,
                mapped_pairs=self.mapped_pairs,
                payload=self.reply_payload)
            self.done.succeed(result)
        return self.done.triggered


class _AppClientState:
    """Shared per-application state (all RPC methods of the app)."""

    def __init__(self, app_key: str):
        self.app_key = app_key
        self.configs: Dict[int, AppConfig] = {}     # gaid -> config
        self.flows: List[ReliableFlow] = []
        self.next_flow = 0
        self.space = LogicalSpace()
        self.grants: Dict[int, int] = {}            # logical -> physical
        self.logical_to_key: Dict[int, Any] = {}
        self.phys_to_key: Dict[int, Any] = {}
        self.lazy_baseline: Dict[int, int] = {}     # phys addr -> baseline
        self.usage_counts: Dict[int, int] = {}      # logical -> window uses
        self.tasks: Dict[int, _TaskState] = {}
        self.round_chunks: Dict[Tuple[int, int, int], int] = {}
        # (gaid, round, offset) -> task_id, for matching multicast results
        # Application hook: called for every multicast result delivered to
        # this host (threshold-reached votes, broadcasts), letting passive
        # participants (e.g. Paxos learners) observe decisions.
        self.broadcast_handler = None
        # Measurement hook: called as fn(n_pairs) whenever a chunk
        # resolves (used by the benchmarks' goodput meters).
        self.resolve_listener = None

    def pick_flow(self) -> ReliableFlow:
        flow = self.flows[self.next_flow]
        self.next_flow = (self.next_flow + 1) % len(self.flows)
        return flow

    def any_config(self) -> AppConfig:
        return next(iter(self.configs.values()))


class ClientAgent:
    """One agent per client host; serves every application on that host."""

    def __init__(self, sim: Simulator, host: Host, tor: str,
                 cal: Calibration = DEFAULT_CALIBRATION):
        self.sim = sim
        self.host = host
        self.tor = tor                      # name of the top-of-rack switch
        self.cal = cal
        self._apps: Dict[str, _AppClientState] = {}
        self._gaid_to_app: Dict[int, str] = {}
        host.set_handler(self._on_packet)
        self.stats = {"results": 0, "overflow_resends": 0, "acks_rx": 0}
        # Coalesced ACKs for server-originated reliable flows:
        # (gaid, server, flow_id) -> list of seqs awaiting flush.
        self._ack_batch: Dict[Tuple[int, str, int], List[int]] = {}
        self._ack_ecn: Dict[Tuple[int, str, int], bool] = {}

    # ------------------------------------------------------------------
    # registration (driven by the controller)
    # ------------------------------------------------------------------
    def register_app(self, config: AppConfig, srrt_slots: List[int]) -> None:
        """Attach one application method; flows are created on first call.

        ``srrt_slots`` are switch bitmap slots reserved by the controller,
        one per worker flow (the long-term connections of Figure 1).
        """
        key = config.program.app_name
        state = self._apps.get(key)
        if state is None:
            state = _AppClientState(key)
            self._apps[key] = state
        if not state.flows:
            def chunk_still_pending(packet, _state=state):
                tstate = _state.tasks.get(packet.task_id)
                if tstate is None:
                    return False
                chunk = tstate.chunks.get(packet.offset)
                return chunk is not None and not chunk.resolved

            for flow_id, slot in enumerate(srrt_slots):
                flow = ReliableFlow(
                    self.sim, self.host, self.tor, srrt=slot,
                    flow_id=flow_id, cal=self.cal,
                    cc_enabled=config.cc_enabled,
                    cc_mode=config.cc_mode,
                    retry_mode=config.program.retry)
                flow.retry_filter = chunk_still_pending
                state.flows.append(flow)
            self.sim.process(self._report_window_loop(state),
                             name=f"report-{key}-{self.host.name}")
        state.configs[config.gaid] = config
        self._gaid_to_app[config.gaid] = key

    def app_state(self, app_key: str) -> _AppClientState:
        return self._apps[app_key]

    def all_flows(self) -> List[ReliableFlow]:
        """Every reliable flow this agent sends on (failover resync)."""
        flows = []
        for state in self._apps.values():
            flows.extend(state.flows)
        return flows

    def set_broadcast_handler(self, app_key: str, handler) -> None:
        """Install ``handler(pkt)`` for every multicast this host receives."""
        self._apps[app_key].broadcast_handler = handler

    # ------------------------------------------------------------------
    # task submission (called by the RPC layer)
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> Event:
        """Send one task; the returned event succeeds with a TaskResult."""
        config = task.app
        state = self._apps[config.program.app_name]
        done = self.sim.event()
        if TRACE.enabled:
            # Span recorded at completion time; the exporter re-sorts by
            # start timestamp so late recording never breaks monotonicity.
            sim, t0, where = self.sim, self.sim.now, self.host.name
            task_id = task.task_id

            def _trace_done(_event) -> None:
                if TRACE.enabled:
                    TRACE.record("client.task", t0, sim.now, where,
                                 (task_id,))

            done.add_callback(_trace_done)
        tstate = _TaskState(task, done)
        state.tasks[task.task_id] = tstate
        if config.linear and task.items:
            self._send_linear(state, config, tstate)
        else:
            self._send_map(state, config, tstate)
        if not tstate.chunks and task.payload is not None:
            # A plain (non-INC) call: one payload-only packet through the
            # server, resolved by the server stub's reply.
            self._send_plain(state, config, tstate)
        self._maybe_finish(state, tstate)   # empty task completes at once
        return done

    def _send_plain(self, state: _AppClientState, config: AppConfig,
                    tstate: _TaskState) -> None:
        task = tstate.task
        chunk = _ChunkState(0, [], mapped=False, awaiting_result=True)
        tstate.chunks[0] = chunk
        tstate.unresolved += 1
        pkt = self._base_packet(config, task, 0, [])
        pkt.is_cross = True
        state.round_chunks[(config.gaid, task.round, 0)] = task.task_id
        state.pick_flow().enqueue(pkt)

    def _maybe_finish(self, state: _AppClientState,
                      tstate: _TaskState) -> None:
        if tstate.finish_if_complete():
            state.tasks.pop(tstate.task.task_id, None)
            gaids = tuple(state.configs)
            for gaid in gaids:
                for offset in tstate.chunks:
                    state.round_chunks.pop(
                        (gaid, tstate.task.round, offset), None)

    # --- linear (SyncAgtr / index-addressed counters) -------------------
    def _send_linear(self, state: _AppClientState, config: AppConfig,
                     tstate: _TaskState) -> None:
        task = tstate.task
        items = task.items
        # Software-only deployments have no register region; addresses are
        # placeholders (the packets take the is_cross path anyway).
        half = config.active_region_size or 1
        parity = task.round % 2 if config.shadow else 0
        base = config.value_region.base + parity * half
        shadow_offset = 0
        if config.shadow:
            shadow_offset = half if parity == 0 else -half
        # One chunk per sparse index when counting (each packet needs a
        # well-defined counter register), else 32 pairs per packet.
        if task.indexed and config.program.cntfwd.counts:
            chunk_size = 1
        else:
            chunk_size = KV_PAIRS_PER_PACKET
        awaiting = task.expect_result or config.program.cntfwd.counts
        for offset in range(0, len(items), chunk_size):
            chunk_items = items[offset:offset + chunk_size]
            chunk = _ChunkState(offset, chunk_items, mapped=True,
                                awaiting_result=awaiting)
            tstate.chunks[offset] = chunk
            tstate.unresolved += 1
            tstate.mapped_pairs += len(chunk_items)
            # Columns built directly — no per-pair objects on this path.
            indices = [item[0] for item in chunk_items]
            kv = KVBlock.from_columns(
                [base + index % half for index in indices],
                [item[1] for item in chunk_items],
                mapped_mask=-1, keys=indices)
            pkt = self._base_packet(config, task, offset, kv)
            first_index = indices[0]
            if not task.indexed:
                pkt.linear_base = kv.addrs[0]
            pkt.shadow_offset = shadow_offset
            if config.program.cntfwd.counts and config.has_switch:
                pkt.is_cnf = True
                counter_slot = (first_index if task.indexed
                                else first_index // 32)
                pkt.cnt_index = config.counter_addr(counter_slot)
            if not config.has_switch:
                pkt.is_cross = True
            state.round_chunks[(config.gaid, task.round, offset)] = \
                task.task_id
            state.pick_flow().enqueue(pkt)

    # --- map-addressed (AsyncAgtr / KeyValue / Agreement) ----------------
    def _send_map(self, state: _AppClientState, config: AppConfig,
                  tstate: _TaskState) -> None:
        task = tstate.task
        prog = config.program
        if not prog.uses_map and config.has_switch:
            # Pure routing methods (e.g. a CntFwd-to-ALL broadcast): the
            # kv pairs are opaque to the switch, no addressing needed.
            for start in range(0, len(task.items), KV_PAIRS_PER_PACKET):
                self._emit_map_chunk(
                    state, config, tstate,
                    [KVPair(0, value, True, key) for key, value
                     in task.items[start:start + KV_PAIRS_PER_PACKET]],
                    start, cross=False)
            return
        # Classification builds the wire KVPair objects directly (each one
        # ends up in exactly one packet), so emitting a chunk is a slice —
        # no intermediate triples, no second construction pass.
        mapped_pairs: List[KVPair] = []   # addr = granted physical
        cross_pairs: List[KVPair] = []    # addr = logical (0 if collided)
        # Per-item loop over every task (hot): hoist the state lookups and
        # consult the address-space memo directly (one dict probe) so only
        # first-seen keys pay the resolve() call.
        resolve = state.space.resolve
        memo_get = state.space._memo.get
        logical_to_key = state.logical_to_key
        usage_counts = state.usage_counts
        grants_get = state.grants.get
        phys_to_key = state.phys_to_key
        has_switch = config.has_switch
        mapped_append = mapped_pairs.append
        cross_append = cross_pairs.append
        for key, value in task.items:
            logical = memo_get(key, _MISS)
            if logical is _MISS:
                logical = resolve(key)
            if logical is None or not has_switch:
                cross_append(KVPair(0, value, False, key))
                continue
            logical_to_key[logical] = key
            if logical in usage_counts:
                usage_counts[logical] += 1
            else:
                usage_counts[logical] = 1
            phys = grants_get(logical)
            if phys is None:
                cross_append(KVPair(logical, value, False, key))
            else:
                phys_to_key[phys] = key
                mapped_append(KVPair(phys, value, True, key))

        offset = 0
        if prog.cntfwd.counts:
            # Counting applications (locks, votes): one key per packet so
            # each packet has a well-defined counter register.
            for pair in mapped_pairs:
                offset = self._emit_map_chunk(
                    state, config, tstate, [pair], offset,
                    cross=False, cnt_index=pair.addr)
            for pair in cross_pairs:
                offset = self._emit_map_chunk(
                    state, config, tstate, [pair], offset, cross=True)
            return

        # Pack mapped pairs subject to the one-access-per-segment rule:
        # two pairs whose registers share a memory segment cannot ride the
        # same packet (§5.2.2 "implementation on the switch").
        packet_pairs: List[KVPair] = []
        used_segments: set = set()
        mem_segments = self.cal.memory_segments
        for pair in mapped_pairs:
            segment = pair.addr % mem_segments
            if segment in used_segments or \
                    len(packet_pairs) >= KV_PAIRS_PER_PACKET:
                offset = self._emit_map_chunk(state, config, tstate,
                                              packet_pairs, offset,
                                              cross=False)
                packet_pairs, used_segments = [], set()
            packet_pairs.append(pair)
            used_segments.add(segment)
        if packet_pairs:
            offset = self._emit_map_chunk(state, config, tstate,
                                          packet_pairs, offset, cross=False)
        for start in range(0, len(cross_pairs), KV_PAIRS_PER_PACKET):
            offset = self._emit_map_chunk(
                state, config, tstate,
                cross_pairs[start:start + KV_PAIRS_PER_PACKET],
                offset, cross=True)

    def _emit_map_chunk(self, state: _AppClientState, config: AppConfig,
                        tstate: _TaskState,
                        pairs: List[KVPair], offset: int,
                        cross: bool, cnt_index: int = 0) -> int:
        if not pairs:
            return offset
        task = tstate.task
        # Counting applications (locks, votes) complete on the threshold
        # result, never on a bare transport ACK: an absorbed attempt must
        # keep its chunk pending (blocking-lock semantics).
        awaiting = task.expect_result or config.program.cntfwd.counts
        chunk = _ChunkState(offset, [(p.key, p.value) for p in pairs],
                            mapped=not cross, awaiting_result=awaiting)
        tstate.chunks[offset] = chunk
        tstate.unresolved += 1
        if cross:
            tstate.fallback_pairs += len(pairs)
        else:
            tstate.mapped_pairs += len(pairs)
        pkt = self._base_packet(config, task, offset, pairs)
        pkt.is_cross = cross
        if not cross and config.program.cntfwd.counts:
            pkt.is_cnf = True
            pkt.cnt_index = cnt_index
        state.round_chunks[(config.gaid, task.round, offset)] = task.task_id
        state.pick_flow().enqueue(pkt)
        return offset + len(pairs)

    def _base_packet(self, config: AppConfig, task: Task, offset: int,
                     kv: List[KVPair]) -> Packet:
        pkt = Packet(
            gaid=config.gaid, src=self.host.name, dst=config.server,
            kv=kv, task_id=task.task_id, offset=offset,
            task_total=len(task.items), round=task.round,
            payload=task.payload if offset == 0 else None,
            payload_bytes=task.payload_bytes if offset == 0 else 0)
        pkt.select_all_slots()
        return pkt

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet, _link) -> None:
        app_key = self._gaid_to_app.get(pkt.gaid)
        if app_key is None:
            return
        state = self._apps[app_key]
        config = state.configs[pkt.gaid]
        self._apply_grants(state, pkt)
        if pkt.is_ack:
            self._on_server_ack(state, pkt)
            return
        if pkt.is_mcast and state.broadcast_handler is not None:
            state.broadcast_handler(pkt)
        if pkt.is_sa:
            self._on_server_reply(state, config, pkt)
            return
        if pkt.is_mcast:
            self._on_switch_multicast(state, config, pkt)
            return
        if pkt.src == self.host.name:
            self._on_own_bounce(state, config, pkt)

    def _apply_grants(self, state: _AppClientState, pkt: Packet) -> None:
        for logical, phys in pkt.grants:
            state.grants[logical] = phys
            key = state.logical_to_key.get(logical)
            if key is not None:
                state.phys_to_key[phys] = key
        for logical in pkt.revokes:
            phys = state.grants.pop(logical, None)
            if phys is not None:
                state.phys_to_key.pop(phys, None)
                state.lazy_baseline.pop(phys, None)

    def _on_server_ack(self, state: _AppClientState, pkt: Packet) -> None:
        self.stats["acks_rx"] += 1
        flow = state.flows[pkt.ack_flow]
        for seq in pkt.acks:
            original = flow.ack(seq, ecn=pkt.ecn_echo)
            if original is not None:
                self._chunk_acked(state, original, values=None)

    def _on_server_reply(self, state: _AppClientState, config: AppConfig,
                         pkt: Packet) -> None:
        # Acknowledge the server's reliable flow (coalesced, §4's worker
        # threads batch outbound ACKs to amortise per-packet cost).
        self._queue_ack(config, pkt)
        # A reply may also acknowledge our own outstanding packets.
        if pkt.acks:
            flow = state.flows[pkt.ack_flow]
            for seq in pkt.acks:
                original = flow.ack(seq, ecn=pkt.ecn_echo)
                if original is not None and not pkt.kv:
                    self._chunk_acked(state, original, values=None)
        if pkt.kv or pkt.is_clr or pkt.payload is not None:
            corrected = not pkt.is_of and pkt.is_mcast
            self._record_result(state, config, pkt,
                                from_server=True, corrected=corrected)

    def _on_switch_multicast(self, state: _AppClientState, config: AppConfig,
                             pkt: Packet) -> None:
        self._record_result(state, config, pkt, from_server=False)

    # ------------------------------------------------------------------
    def _queue_ack(self, config: AppConfig, pkt: Packet) -> None:
        key = (pkt.gaid, config.server, pkt.flow_id)
        batch = self._ack_batch.get(key)
        if batch is None:
            batch = self._ack_batch[key] = []
            self.sim.schedule(self.cal.ack_batch_delay_s,
                              self._flush_acks, key)
        batch.append(pkt.seq)
        if pkt.ecn:
            self._ack_ecn[key] = True
        if len(batch) >= self.cal.ack_batch_pkts:
            self._flush_acks(key)

    def _flush_acks(self, key: Tuple[int, str, int]) -> None:
        batch = self._ack_batch.pop(key, None)
        if not batch:
            return
        gaid, server, flow_id = key
        ack = Packet(gaid=gaid, src=self.host.name, dst=server,
                     is_ack=True, acks=tuple(batch), ack_flow=flow_id,
                     ecn=self._ack_ecn.pop(key, False))
        self.host.send(ack, self.tor)

    def _on_own_bounce(self, state: _AppClientState, config: AppConfig,
                       pkt: Packet) -> None:
        flow = state.flows[pkt.flow_id]
        # A bounced packet carries its own uplink mark plus the switch's
        # recorded data-path state; both concern this flow's direction.
        flow.ack(pkt.seq, ecn=pkt.ecn or pkt.ecn_echo)
        self._record_result(state, config, pkt, from_server=False)

    # ------------------------------------------------------------------
    def _record_result(self, state: _AppClientState, config: AppConfig,
                       pkt: Packet, from_server: bool,
                       corrected: bool = False) -> None:
        # Our own packets (bounces, server unicasts) carry the exact task
        # id; only cross-client multicast results need the (round, offset)
        # correlation, where the trigger sender's task id differs.
        if pkt.task_id in state.tasks:
            task_id = pkt.task_id
        else:
            task_id = state.round_chunks.get(
                (pkt.gaid, pkt.round, pkt.offset), pkt.task_id)
        tstate = state.tasks.get(task_id)
        if tstate is None:
            return
        if from_server and pkt.payload is not None:
            tstate.reply_payload = pkt.payload
        chunk = tstate.chunks.get(pkt.offset)
        if chunk is None or chunk.resolved:
            return
        # Our own pending packet for this chunk is implicitly acknowledged
        # by the round result (threshold-reached forward, §5.1).  The
        # congestion signal for our flows is the switch echo, plus the
        # uplink mark when the result is another client's bounced data
        # packet (shared uplink direction) — never the server's downlink.
        ecn_signal = pkt.ecn_echo or (pkt.ecn and not pkt.is_sa)
        for flow in state.flows:
            if flow.ack_chunk((tstate.task.task_id, pkt.offset),
                              ecn=ecn_signal):
                break

        if pkt.is_of and not corrected:
            # Overflow sentinel: give up this result and re-execute the
            # chunk through the server in software (§5.2.1).
            if not chunk.overflowed:
                chunk.overflowed = True
                tstate.overflow_chunks += 1
                self._resend_overflow(state, config, tstate, chunk)
            return

        values = self._extract_values(state, config, tstate, chunk, pkt,
                                      corrected=corrected)
        self._resolve_chunk(state, config, tstate, chunk, values)

    def _extract_values(self, state: _AppClientState, config: AppConfig,
                        tstate: _TaskState, chunk: _ChunkState, pkt: Packet,
                        corrected: bool) -> Dict[Any, int]:
        lazy = config.program.clear is ClearPolicy.LAZY
        block = pkt.kv
        keys = block.keys
        values = block.values
        mapped_mask = block.mapped_mask
        lazy_adjust = lazy and config.has_switch and mapped_mask
        if not lazy_adjust and keys is not None and None not in keys:
            # Fast path (the common linear/keyed result): every slot has
            # an explicit key and no baseline adjustment applies, so the
            # whole block folds in one C-level zip.  Duplicate keys keep
            # last-slot-wins ordering, same as the loop below.
            return dict(zip(keys, values))
        out: Dict[Any, int] = {}
        addrs = block.addrs
        phys_to_key = state.phys_to_key
        linear = config.linear
        offset = pkt.offset
        for slot in range(len(values)):
            key = keys[slot] if keys is not None else None
            mapped = mapped_mask >> slot & 1
            if key is None:
                if mapped:
                    key = phys_to_key.get(addrs[slot])
                if key is None:
                    if not linear:
                        continue
                    key = offset + slot
            value = values[slot]
            if lazy_adjust and mapped:
                addr = addrs[slot]
                if corrected:
                    state.lazy_baseline[addr] = 0
                else:
                    baseline = state.lazy_baseline.get(addr, 0)
                    state.lazy_baseline[addr] = value
                    value = value - baseline
            out[key] = value
        return out

    def _resolve_chunk(self, state: _AppClientState, config: AppConfig,
                       tstate: _TaskState, chunk: _ChunkState,
                       values: Optional[Dict[Any, int]]) -> None:
        if chunk.resolved:
            return
        if chunk.awaiting_result:
            if values is None:
                return  # ACKed but still waiting for data
            tstate.values.update(values)
        chunk.resolved = True
        tstate.unresolved -= 1
        self.stats["results"] += 1
        if state.resolve_listener is not None:
            state.resolve_listener(len(chunk.items))
        self._maybe_finish(state, tstate)

    def _chunk_acked(self, state: _AppClientState, original: Packet,
                     values: Optional[Dict[Any, int]]) -> None:
        tstate = state.tasks.get(original.task_id)
        if tstate is None:
            return
        chunk = tstate.chunks.get(original.offset)
        if chunk is None:
            return
        config = state.configs[original.gaid]
        if not chunk.awaiting_result:
            self._resolve_chunk(state, config, tstate, chunk, None)
        elif values:
            self._resolve_chunk(state, config, tstate, chunk, values)

    # ------------------------------------------------------------------
    def _resend_overflow(self, state: _AppClientState, config: AppConfig,
                         tstate: _TaskState, chunk: _ChunkState) -> None:
        """Replay a chunk's raw data through the server (§5.2.1)."""
        self.stats["overflow_resends"] += 1
        items = chunk.items
        kv = KVBlock.from_columns(
            [0] * len(items), [value for _, value in items],
            mapped_mask=0, keys=[key for key, _ in items])
        pkt = Packet(
            gaid=config.gaid, src=self.host.name, dst=config.server,
            kv=kv, is_of=True, is_cross=True,
            task_id=tstate.task.task_id,
            offset=chunk.offset, task_total=len(tstate.task.items),
            round=tstate.task.round)
        pkt.select_all_slots()
        state.pick_flow().enqueue(pkt)

    # ------------------------------------------------------------------
    def _report_window_loop(self, state: _AppClientState):
        """Periodically ship use counts to the server (periodic LRU)."""
        while True:
            yield self.sim.timeout(self.cal.cache_update_window_s)
            if not state.usage_counts:
                continue
            config = state.any_config()
            if config.linear or not config.has_switch:
                state.usage_counts = {}
                continue
            counts, state.usage_counts = state.usage_counts, {}
            pkt = Packet(
                gaid=config.gaid, src=self.host.name, dst=config.server,
                is_cross=True, payload=("usage-report", counts),
                payload_bytes=8 * len(counts))
            self.host.send(pkt, self.tor)
