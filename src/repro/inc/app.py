"""Per-application deployment descriptor shared by agents and controller.

An :class:`AppConfig` is produced by the controller at registration time
(paper Figure 1): it binds the user's RIP program to a GAID, the switch
memory reservation, the participant host names, and the operating-mode
knobs.  Client and server agents both hold the same config object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Tuple

from repro.protocol import (
    DEFAULT_FMAX_CODEC,
    DEFAULT_FP_CODEC,
    AggOp,
    ClearPolicy,
    Quantizer,
    RIPProgram,
)

from .memory import MemoryRegion

__all__ = ["AppConfig", "Task", "TaskResult"]

_task_ids = itertools.count(1)


@dataclass
class AppConfig:
    """Everything both ends need to run one application's INC channel."""

    gaid: int
    program: RIPProgram
    server: str                        # server host name
    clients: Tuple[str, ...]           # client host names
    value_region: MemoryRegion         # switch registers for map values
    counter_region: MemoryRegion       # switch registers for CntFwd counters
    linear: bool = False               # SyncAgtr circular-buffer addressing
    cache_policy: str = "netrpc"
    cc_enabled: bool = True
    cc_mode: str = "aimd"              # or "dctcp" (§7 future-work mode)
    flows_per_host: int = 4
    has_switch: bool = True            # False = pure software fallback

    def __post_init__(self):
        if self.linear and self.value_region.size % 32 != 0:
            raise ValueError("linear regions must be multiples of 32")

    @property
    def quantizer(self) -> Quantizer:
        return Quantizer(self.program.precision)

    @property
    def codec(self):
        """The value codec for this app's wire format.

        Fp aggregations carry ordered fp encodings — the shared table-fp
        codec for agg=fadd, its biased variant for agg=fmax (a cleared
        register must sit below every value there).  Everything else
        keeps the paper's fixed-point :class:`Quantizer`.  All three
        expose the same ``encode(float) -> (int, bool)`` /
        ``decode(int) -> float`` surface the RPC layer codes against.
        """
        if self.program.agg is AggOp.FMAX:
            return DEFAULT_FMAX_CODEC
        if self.program.agg is AggOp.FADD:
            return DEFAULT_FP_CODEC
        return Quantizer(self.program.precision)

    @property
    def shadow(self) -> bool:
        return self.program.clear is ClearPolicy.SHADOW

    @property
    def active_region_size(self) -> int:
        """Usable value slots; shadow double-buffering halves the region."""
        return self.value_region.size // 2 if self.shadow \
            else self.value_region.size

    def counter_addr(self, chunk_number: int) -> int:
        """Physical address of the CntFwd counter for a chunk/round slot."""
        if self.counter_region.size == 0:
            raise ValueError(f"app {self.program.app_name} reserved no "
                             f"counter region")
        return self.counter_region.base + \
            chunk_number % self.counter_region.size


@dataclass
class Task:
    """One data stream handed to a client agent (an RPC call's arguments).

    ``items`` is a list of ``(key, value)`` pairs with already-quantized
    int32 values; for linear (SyncAgtr) tasks the keys are array indices
    and must be dense from 0.
    """

    app: AppConfig
    items: list                        # [(key_or_index, int32), ...]
    round: int = 0
    expect_result: bool = True         # the call reads values back
    payload: object = None
    payload_bytes: int = 0
    # Linear apps: False = a dense array indexed from 0 (SyncAgtr
    # gradients); True = sparse integer indices (e.g. one vote counter
    # per consensus instance).
    indexed: bool = False
    task_id: int = field(default_factory=lambda: next(_task_ids))

    def __post_init__(self):
        if self.app.linear and not self.indexed:
            for position, (index, _value) in enumerate(self.items):
                if index != position:
                    raise ValueError(
                        "linear tasks must be dense arrays indexed from 0 "
                        "(set indexed=True for sparse index addressing)")
        if self.app.linear and self.indexed:
            for index, _value in self.items:
                if not isinstance(index, int) or index < 0:
                    raise ValueError("indexed tasks need non-negative "
                                     "integer indices")


@dataclass
class TaskResult:
    """Outcome of a completed task, delivered via the task's done event."""

    task: Task
    values: dict                       # key -> int32 result (if expected)
    overflow_chunks: int = 0           # chunks corrected in software
    fallback_pairs: int = 0            # pairs that took the server path
    mapped_pairs: int = 0              # pairs processed on the switch
    payload: object = None             # opaque reply payload (non-INC data)

    @property
    def cache_hit_ratio(self) -> float:
        total = self.fallback_pairs + self.mapped_pairs
        return self.mapped_pairs / total if total else 0.0
