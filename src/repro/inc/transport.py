"""Reliable flows: the sender half of the flip-bit protocol (paper §5.1).

A :class:`ReliableFlow` corresponds to one sending worker thread holding
a long-term connection with the switch: it owns an SRRT slot (the
switch-side bit array), assigns sequence numbers and flip bits, enforces
the window invariant that makes the protocol idempotent (packet *i* of
window *t* goes out only after packet *i* of window *t-1* is ACKed),
runs the AIMD controller, and retransmits on timeout.

ACKs are *selective*: any returning packet (server ACK, switch bounce,
or a threshold-reached multicast matched by chunk id) acknowledges its
sequence number out of order — the behaviour the paper credits for
NetRPC's graceful degradation under loss (Figure 10).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Host, Simulator
from repro.obs.tracer import TRACE
from repro.protocol import Packet, RetryMode

from .congestion import make_controller

__all__ = ["ReliableFlow"]

_INF = float("inf")


class _PendingEntry:
    __slots__ = ("packet", "attempts", "deadline", "sent_at",
                 "_kv_values", "_is_of", "_ecn")

    def __init__(self, packet: Packet, deadline: float, sent_at: float):
        self.packet = packet
        self.attempts = 1
        self.deadline = deadline
        self.sent_at = sent_at
        # First transmissions put this very object on the wire, and the
        # switch pipeline rewrites it in place (Map.get / Stream.modify
        # overwrite kv.value; overflow and ECN set flags).  Snapshot the
        # payload so a retransmission resends what the application wrote,
        # not whatever register state the first trip read back — a
        # reboot-resynced switch classifies that retransmission as fresh
        # and would otherwise re-add a partial aggregate.  The value
        # column is one buffer copy each way.
        self._kv_values = packet.kv.values[:]
        self._is_of = packet.is_of
        self._ecn = packet.ecn

    def restore_payload(self) -> None:
        pkt = self.packet
        pkt.kv.values[:] = self._kv_values
        pkt.is_of = self._is_of
        pkt.ecn = self._ecn


class ReliableFlow:
    """One reliable, congestion-controlled packet stream."""

    MAX_ATTEMPTS = 50

    def __init__(self, sim: Simulator, host: Host, next_hop: str, srrt: int,
                 flow_id: int = 0, cal: Calibration = DEFAULT_CALIBRATION,
                 cc_enabled: bool = True,
                 retry_mode: RetryMode = RetryMode.PERSIST,
                 on_give_up: Optional[Callable[[Packet], None]] = None,
                 cc_mode: str = "aimd"):
        self.sim = sim
        self.host = host
        self.next_hop = next_hop
        self.srrt = srrt
        self.flow_id = flow_id
        self.cal = cal
        self.retry_mode = retry_mode
        self.cc = make_controller(cc_mode, cal, enabled=cc_enabled)
        self.on_give_up = on_give_up
        # Optional predicate consulted before a FRESH retry: lets the
        # agent stop spinning once the chunk resolved by other means.
        self.retry_filter: Optional[Callable[[Packet], bool]] = None

        self._next_seq = 0
        self._send_base = 0              # lowest unacknowledged seq
        self._timer_at = _INF            # earliest scheduled RTO wakeup
        self._timer_handle = None        # TimerHandle for that wakeup
        self._queue: Deque[Packet] = deque()
        self._pending: Dict[int, _PendingEntry] = {}
        self._acked: set = set()
        self._chunk_to_seq: Dict[Tuple[int, int], int] = {}
        self.stats = {"sent": 0, "retransmits": 0, "acked": 0,
                      "abandoned": 0, "fresh_retries": 0}

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def backlog(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        return not self._queue and not self._pending

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Hand a packet to the flow; seq/flip are assigned in order."""
        packet.srrt = self.srrt
        packet.flow_id = self.flow_id
        packet.seq = self._next_seq
        packet.flip = (packet.seq // self.cal.w_max) % 2
        self._next_seq += 1
        self._chunk_to_seq[packet.chunk_id] = packet.seq
        self._queue.append(packet)
        self._pump()

    def _pump(self) -> None:
        while self._queue and self._can_send(self._queue[0].seq):
            packet = self._queue.popleft()
            self._transmit(packet, first=True)

    def _can_send(self, seq: int) -> bool:
        # cwnd <= w_max, so this also enforces the flip-bit window
        # invariant (seq - w_max must be ACKed before seq departs).
        return seq < self._send_base + self.cc.cwnd

    def _transmit(self, packet: Packet, first: bool) -> None:
        now = self.sim.now
        packet.sent_at = now
        if first:
            wire = packet
        else:
            self._pending[packet.seq].restore_payload()
            wire = packet.copy()
        wire.is_retransmit = not first
        rto = max(self.cal.retransmit_timeout_s, 2.0 * self.cc.rtt_estimate)
        if not first:
            entry = self._pending[packet.seq]
            entry.attempts += 1
            rto *= min(8, 2 ** (entry.attempts - 1))  # exponential backoff
            entry.deadline = now + rto
            entry.sent_at = now
            self.stats["retransmits"] += 1
        else:
            self._pending[packet.seq] = _PendingEntry(packet, now + rto, now)
            self.stats["sent"] += 1
            if TRACE.enabled:
                TRACE.instant("flow.tx", now, self.host.name,
                              (self.flow_id, packet.seq))
        self.host.send(wire, self.next_hop)
        self._arm_timer(now + rto)

    # ------------------------------------------------------------------
    # RTO bookkeeping runs on one cancellable timer per flow instead of
    # one scheduled event per transmission: the flow keeps a single
    # wakeup at the earliest pending deadline.  Arming an earlier
    # deadline cancels the old wakeup in place (O(1) lazy cancellation —
    # the superseded entry is skipped by the dispatch loop, never popped
    # or dispatched as a tombstone).  ACKs never touch the timer; a
    # wakeup that finds nothing expired (entries acked or deadlines moved
    # by backoff) simply re-arms at the new minimum.  Expired entries are
    # processed in seq (insertion) order, which is exactly the order the
    # per-packet timers of the old scheme fired in for equal deadlines.
    def _arm_timer(self, deadline: float) -> None:
        if deadline < self._timer_at:
            self._timer_at = deadline
            if self._timer_handle is not None:
                self._timer_handle.cancel()
            self._timer_handle = self.sim.call_at(
                deadline, self._on_timer, deadline)

    def _on_timer(self, when: float) -> None:
        self._timer_at = _INF
        self._timer_handle = None
        now = self.sim.now
        pending = self._pending
        expired = [seq for seq, e in pending.items()
                   if now >= e.deadline - 1e-12]
        for seq in expired:
            # Processing one expiry can mutate _pending (abandon, pump,
            # fresh retries), so re-validate each candidate.
            entry = pending.get(seq)
            if entry is None or now < entry.deadline - 1e-12:
                continue
            self._expire(seq, entry)
        if pending:
            self._arm_timer(min(e.deadline for e in pending.values()))

    def _expire(self, seq: int, entry: _PendingEntry) -> None:
        self.cc.on_timeout(self.sim.now)
        if entry.attempts >= self.MAX_ATTEMPTS:
            self._abandon(seq, entry)
            return
        if TRACE.enabled:
            cause = "fresh" if self.retry_mode is RetryMode.FRESH else "rto"
            TRACE.instant("flow.retx", self.sim.now, self.host.name,
                          (self.flow_id, seq, cause))
        if self.retry_mode is RetryMode.FRESH:
            # The original was intentionally absorbed (test&set below
            # threshold); retry as a brand-new attempt so the counter
            # sees it again (spin-lock semantics), paced at the lock
            # polling interval rather than the transport RTO.
            self._abandon(seq, entry, give_up=False)
            if self.retry_filter is not None and \
                    not self.retry_filter(entry.packet):
                return
            entry.restore_payload()
            retry = entry.packet.copy()
            retry.is_retransmit = False
            self.stats["fresh_retries"] += 1
            self.sim.schedule(self.cal.fresh_retry_delay_s,
                              self._fresh_enqueue, retry)
            return
        self._transmit(entry.packet, first=False)

    def _fresh_enqueue(self, packet: Packet) -> None:
        if self.retry_filter is not None and not self.retry_filter(packet):
            return
        self.enqueue(packet)

    def _abandon(self, seq: int, entry: _PendingEntry,
                 give_up: bool = True) -> None:
        del self._pending[seq]
        self._acked.add(seq)
        self._advance_base()
        self.stats["abandoned"] += 1
        if give_up and TRACE.enabled:
            TRACE.instant("flow.abandon", self.sim.now, self.host.name,
                          (self.flow_id, seq))
        if give_up and self.on_give_up is not None:
            self.on_give_up(entry.packet)
        self._pump()

    # ------------------------------------------------------------------
    # Out-of-order ACKs this far past the window head, with the head
    # older than an RTT, imply the head packet was lost (§6.4).
    REORDER_GAP = 8

    def ack(self, seq: int, ecn: bool = False) -> Optional[Packet]:
        """Acknowledge one sequence number; returns the original packet."""
        entry = self._pending.pop(seq, None)
        if entry is None:
            return None  # duplicate ACK
        self._acked.add(seq)
        self.stats["acked"] += 1
        self.cc.observe_rtt(self.sim.now - entry.sent_at)
        self.cc.on_ack(ecn, self.sim.now)
        if TRACE.enabled:
            now = self.sim.now
            TRACE.instant("flow.ack", now, self.host.name,
                          (self.flow_id, seq))
            TRACE.instant("cc.window", now, self.host.name,
                          (self.flow_id, self.cc.cwnd))
        self._chunk_to_seq.pop(entry.packet.chunk_id, None)
        self._advance_base()
        self._fast_retransmit_check(seq)
        self._pump()
        return entry.packet

    def _fast_retransmit_check(self, acked_seq: int) -> None:
        """Selective-ACK loss inference: heal the window head early."""
        head = self._pending.get(self._send_base)
        if head is None:
            return
        if acked_seq - self._send_base < self.REORDER_GAP:
            return
        if self.sim.now - head.sent_at <= self.cc.rtt_estimate:
            return
        self.cc.on_fast_loss(self.sim.now)
        self.stats["fast_retransmits"] = \
            self.stats.get("fast_retransmits", 0) + 1
        if TRACE.enabled:
            TRACE.instant("flow.retx", self.sim.now, self.host.name,
                          (self.flow_id, self._send_base, "fast"))
        self._transmit(head.packet, first=False)

    def ack_chunk(self, chunk_id: Tuple[int, int], ecn: bool = False
                  ) -> Optional[Packet]:
        """Acknowledge by chunk id (threshold-reached results, §5.1)."""
        seq = self._chunk_to_seq.get(chunk_id)
        if seq is None:
            return None
        return self.ack(seq, ecn=ecn)

    def _advance_base(self) -> None:
        while self._send_base in self._acked:
            self._acked.discard(self._send_base)
            self._send_base += 1

    # ------------------------------------------------------------------
    def flip_resync_bits(self) -> int:
        """The switch-side SRRT bit array matching this flow's state.

        Failover path: after a switch reboot wiped the flip-bit table,
        the controller rebuilds each slot from the live sender so that
        the *next* packet to arrive at every window index classifies as
        a first appearance.  That is correct because the registers those
        packets fed were wiped by the same reboot — losses are coupled —
        and it is what lets in-flight retransmissions re-contribute
        instead of being skipped as already-seen (§5.1 + §5.2.2).

        For index ``i`` the next arrival is the smallest unsettled
        ``seq >= send_base`` with ``seq % w_max == i``; a seq ACKed out
        of order above the base is settled (never resent), so its index
        is armed for the following window instead.  Later windows then
        classify correctly by the same induction as a cold-start flow.
        """
        w = self.cal.w_max
        base = self._send_base
        bits = 0
        for index in range(w):
            nxt = base + ((index - base) % w)
            if nxt in self._acked:
                nxt += w
            if not (nxt // w) & 1:
                # Stored bit must differ from the arriving flip bit.
                bits |= 1 << index
        return bits

    # ------------------------------------------------------------------
    def pending_packet(self, seq: int) -> Optional[Packet]:
        entry = self._pending.get(seq)
        return entry.packet if entry else None
