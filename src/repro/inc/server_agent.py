"""The per-host server agent (paper §5).

The server agent is the authority for one or more applications:

* it owns the logical -> physical mapping and hands out grants
  piggybacked on ACKs (§5.2.2, "multiple clients of a single
  application");
* it executes every RIP in software for unmapped/collided keys and for
  deployments without a programmable switch (the fallback guarantee of
  §3.2);
* it backs up and returns synchronous-aggregation rounds under the
  ``copy`` clear policy, clearing switch registers on the return path;
* it reconstructs exact results for overflowed chunks from the clients'
  raw replays (§5.2.1);
* it runs the periodic cache-update window: evictions, register
  drain-back, and grant revocations.

Late cross-path traffic for keys that already hold a mapping is folded
into the owning register through an atomic control-plane add
(:meth:`~repro.switchsim.switch.NetRPCSwitch.ctrl_add`), so each key has
exactly one authoritative counter/accumulator at any time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Host, Simulator
from repro.obs.tracer import TRACE
from repro.protocol import (
    AggOp,
    ClearPolicy,
    ForwardTarget,
    KVBlock,
    KVPair,
    Packet,
    RIPProgram,
    StreamOp,
)

from .addressing import logical_address
from .app import AppConfig
from .cache import make_policy
from .incmap import SoftwareINCMap
from .memory import MemoryManager
from .transport import ReliableFlow

__all__ = ["ServerAgent"]


def _payload_size(payload: Any) -> int:
    """Byte cost of an opaque payload object on the wire."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, tuple):
        return sum(_payload_size(part) for part in payload
                   if isinstance(part, (bytes, bytearray))) or 16
    return 16


class _McastFlow:
    """A pool of reliable flows whose packets every client must ACK.

    Multiple parallel flows (the server agent's worker threads, §4) keep
    the return stream from being window-limited by a single flow's
    cwnd/RTT product.
    """

    def __init__(self, flows: List[ReliableFlow], clients: Tuple[str, ...]):
        self.flows = flows
        self.clients = clients
        self._next = 0
        self._waiting: Dict[Tuple[int, int], Set[str]] = {}

    def send(self, packet: Packet) -> None:
        packet.is_mcast = True
        flow = self.flows[self._next]
        self._next = (self._next + 1) % len(self.flows)
        flow.enqueue(packet)
        self._waiting[(flow.flow_id, packet.seq)] = set(self.clients)

    def client_ack(self, flow_id: int, seq: int, client: str,
                   ecn: bool) -> None:
        waiting = self._waiting.get((flow_id, seq))
        if waiting is None:
            return
        waiting.discard(client)
        if not waiting:
            del self._waiting[(flow_id, seq)]
            for flow in self.flows:
                if flow.flow_id == flow_id:
                    flow.ack(seq, ecn=ecn)
                    break


class _AppServerState:
    def __init__(self, app_key: str):
        self.app_key = app_key
        self.configs: Dict[int, AppConfig] = {}
        self.soft = SoftwareINCMap()
        self.mm: Optional[MemoryManager] = None
        self.switches: List[Any] = []
        self.mcast: Optional[_McastFlow] = None
        self.unicast: Dict[str, ReliableFlow] = {}
        self.flow_by_id: Dict[int, ReliableFlow] = {}
        self.n_mcast_flows = 0
        self.seen: Dict[Tuple[str, int], Set[int]] = {}
        self.acked: Dict[Tuple[str, int], Set[int]] = {}
        self.pending_grants: Dict[str, List[Tuple[int, int]]] = {}
        self.pending_revokes: List[int] = []
        self.rounds: Dict[int, Dict[str, Any]] = {}
        # Chunks whose return stream already went out, so a re-triggered
        # retransmission (lost-trigger recovery) is not emitted twice.
        self.sync_emitted: Set[Tuple[int, int]] = set()
        self.overflow_buf: Dict[Tuple[int, int], Dict[str, list]] = {}
        self.key_of_logical: Dict[int, Any] = {}
        # Memoized per-key mapping outcome: the key's logical address when
        # it owns it, -1 when it hash-collided (software path forever).
        self.map_outcome: Dict[Any, int] = {}
        self.on_round: Optional[Callable[[int, Dict[Any, int]], None]] = None
        self.on_data: Optional[Callable[[str, Packet], None]] = None
        self.on_call: Optional[Callable[[str, int, Any], Any]] = None

    def any_config(self) -> AppConfig:
        return next(iter(self.configs.values()))


class ServerAgent:
    """One agent per server host."""

    def __init__(self, sim: Simulator, host: Host, tor: str,
                 cal: Calibration = DEFAULT_CALIBRATION):
        self.sim = sim
        self.host = host
        self.tor = tor
        self.cal = cal
        self._apps: Dict[str, _AppServerState] = {}
        self._gaid_to_app: Dict[int, str] = {}
        host.set_handler(self._on_packet)
        self.stats = {"data_rx": 0, "software_pairs": 0, "replays": 0,
                      "evictions": 0, "corrected_chunks": 0,
                      "unprocessed_rx": 0}

    # ------------------------------------------------------------------
    # registration (driven by the controller)
    # ------------------------------------------------------------------
    def register_app(self, config: AppConfig, switches: List[Any],
                     mcast_srrts: List[int],
                     unicast_srrts: Dict[str, int]) -> None:
        key = config.program.app_name
        state = self._apps.get(key)
        if state is None:
            state = _AppServerState(key)
            self._apps[key] = state
            state.switches = list(switches)
            mcast_flows = [
                ReliableFlow(self.sim, self.host, self.tor, srrt=slot,
                             flow_id=index, cal=self.cal,
                             cc_enabled=config.cc_enabled,
                             cc_mode=config.cc_mode)
                for index, slot in enumerate(mcast_srrts)]
            state.mcast = _McastFlow(mcast_flows, config.clients)
            base = len(mcast_flows)
            for index, client in enumerate(config.clients):
                flow = ReliableFlow(
                    self.sim, self.host, self.tor,
                    srrt=unicast_srrts[client], flow_id=base + index,
                    cal=self.cal, cc_enabled=config.cc_enabled,
                    cc_mode=config.cc_mode)
                state.unicast[client] = flow
            state.flow_by_id = {f.flow_id: f for f in mcast_flows}
            state.flow_by_id.update(
                {f.flow_id: f for f in state.unicast.values()})
            state.n_mcast_flows = base
        if state.mm is None and not config.linear:
            # Map-addressed methods need the logical->physical manager;
            # created on the first such method of the app.
            state.mm = MemoryManager(
                config.value_region,
                policy=make_policy(config.cache_policy),
                quarantine_s=self.cal.mapping_quarantine_s)
            self.sim.process(self._window_loop(state),
                             name=f"window-{key}")
        state.configs[config.gaid] = config
        self._gaid_to_app[config.gaid] = key

    def app_state(self, app_key: str) -> _AppServerState:
        return self._apps[app_key]

    def all_flows(self) -> List[Any]:
        """Every reliable flow this agent sends on (failover resync)."""
        flows = []
        for state in self._apps.values():
            flows.extend(state.flow_by_id.values())
        return flows

    def set_round_handler(self, app_key: str,
                          fn: Callable[[int, Dict[Any, int]], None]) -> None:
        self._apps[app_key].on_round = fn

    def set_data_handler(self, app_key: str,
                         fn: Callable[[str, Packet], None]) -> None:
        self._apps[app_key].on_data = fn

    def set_call_handler(self, app_key: str,
                         fn: Callable[[str, int, Any], Any]) -> None:
        """Handler for plain RPC calls: fn(client, gaid, request) -> reply."""
        self._apps[app_key].on_call = fn

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet, _link) -> None:
        app_key = self._gaid_to_app.get(pkt.gaid)
        if app_key is None:
            return
        state = self._apps[app_key]
        config = state.configs[pkt.gaid]

        if pkt.is_ack:
            self._route_ack(state, pkt)
            return
        if isinstance(pkt.payload, tuple) and pkt.payload and \
                pkt.payload[0] == "usage-report":
            if state.mm is not None:
                for logical, count in pkt.payload[1].items():
                    state.mm.note_use(logical, count)
            return

        if config.has_switch and not pkt.is_cross and not pkt.is_of \
                and not getattr(pkt, "switch_processed", False) \
                and (pkt.is_cnf or pkt.kv.any_mapped):
            # Raw INC data that slipped past a cold switch: during the
            # reboot-to-reinstall failover window the admission lookup
            # misses and packets are forwarded here unprocessed.  Acting
            # on one would emit a partial value as a round aggregate (a
            # silent wrong answer) — drop it without an ACK instead, so
            # the sender retransmits after the controller re-installs.
            self.stats["unprocessed_rx"] += 1
            if TRACE.enabled:
                TRACE.instant("server.gate", self.sim.now, self.host.name,
                              (pkt.gaid, pkt.seq))
            return

        self.stats["data_rx"] += 1
        if TRACE.enabled:
            TRACE.instant("server.rx", self.sim.now, self.host.name,
                          (pkt.gaid, pkt.seq))
        flow_key = (pkt.src, pkt.flow_id)
        seen = state.seen.setdefault(flow_key, set())
        if pkt.seq in seen:
            if pkt.seq in state.acked.get(flow_key, set()):
                self._send_ack(state, config, pkt)
            return
        seen.add(pkt.seq)

        cost = self.cal.server_sw_inc_pkt_cpu_s
        if pkt.is_of and not pkt.is_cross:
            # An overflow-marked packet straight off the switch (e.g. a
            # sentinel-carrying round trigger), not a client's raw replay.
            self._on_switch_processed(state, config, pkt)
        elif pkt.is_of:
            self.host.run_on_core(cost, self._on_overflow_arg,
                                  (state, config, pkt))
        elif pkt.is_cross:
            self.host.run_on_core(cost, self._on_cross_arg,
                                  (state, config, pkt))
        else:
            self._on_switch_processed(state, config, pkt)

    def _on_cross_arg(self, args) -> None:
        self._on_cross(*args)

    def _on_overflow_arg(self, args) -> None:
        self._on_overflow_replay(*args)

    # ------------------------------------------------------------------
    def _route_ack(self, state: _AppServerState, pkt: Packet) -> None:
        if pkt.ack_flow < state.n_mcast_flows:
            for seq in pkt.acks:
                state.mcast.client_ack(pkt.ack_flow, seq, pkt.src, pkt.ecn)
            return
        flow = state.flow_by_id.get(pkt.ack_flow)
        if flow is not None:
            for seq in pkt.acks:
                flow.ack(seq, ecn=pkt.ecn)

    # ------------------------------------------------------------------
    def _send_ack(self, state: _AppServerState, config: AppConfig,
                  pkt: Packet, extra_grants: Tuple = ()) -> None:
        grants = tuple(state.pending_grants.pop(pkt.src, ())) + extra_grants
        revokes = tuple(state.pending_revokes)
        ack = Packet(gaid=pkt.gaid, src=self.host.name, dst=pkt.src,
                     is_ack=True, acks=(pkt.seq,), ack_flow=pkt.flow_id,
                     grants=grants, revokes=revokes)
        state.acked.setdefault((pkt.src, pkt.flow_id), set()).add(pkt.seq)
        self.host.send(ack, self.tor)

    def _reply(self, state: _AppServerState, config: AppConfig, client: str,
               pkt_fields: dict) -> None:
        """Send a reliable unicast reply (is_sa data packet) to a client."""
        reply = Packet(gaid=pkt_fields.pop("gaid"), src=self.host.name,
                       dst=client, is_sa=True, **pkt_fields)
        reply.select_all_slots()
        grants = state.pending_grants.pop(client, None)
        if grants:
            reply.grants = tuple(grants)
        if state.pending_revokes:
            reply.revokes = tuple(state.pending_revokes)
        state.unicast[client].enqueue(reply)

    # ------------------------------------------------------------------
    # switch-processed data (mapped packets that reached the server)
    # ------------------------------------------------------------------
    def _on_switch_processed(self, state: _AppServerState, config: AppConfig,
                             pkt: Packet) -> None:
        prog = config.program
        if state.on_data is not None and pkt.payload is not None:
            state.on_data(pkt.src, pkt)
        if pkt.is_cnf and config.linear:
            # A SyncAgtr round chunk under the copy policy: back it up and
            # immediately send the clearing return stream (Figure 5).
            self._on_sync_trigger(state, config, pkt)
            return
        if prog.clear is ClearPolicy.COPY and pkt.kv.any_mapped:
            # A copy-clearing method (e.g. lock Release) detoured here for
            # backup: the return stream clears the registers on its way
            # back to the caller.
            ret = Packet(gaid=pkt.gaid, src=self.host.name, dst=pkt.src,
                         is_sa=True, is_clr=True,
                         kv=pkt.kv.copy(),
                         acks=(pkt.seq,), ack_flow=pkt.flow_id,
                         task_id=pkt.task_id, offset=pkt.offset,
                         round=pkt.round)
            ret.select_all_slots()
            state.acked.setdefault((pkt.src, pkt.flow_id), set()).add(
                pkt.seq)
            keys = pkt.kv.keys
            if keys is not None:
                for key in keys:
                    if key is not None:
                        state.soft.clear(key)
                        state.soft.clear_counter(key)
            state.unicast[pkt.src].enqueue(ret)
            return
        self._send_ack(state, config, pkt)

    def _on_sync_trigger(self, state: _AppServerState, config: AppConfig,
                         pkt: Packet) -> None:
        if (pkt.round, pkt.offset) in state.sync_emitted:
            # The return for this chunk is already (re)transmitting on the
            # reliable multicast flow; ignore the duplicate trigger.
            return
        state.sync_emitted.add((pkt.round, pkt.offset))
        if len(state.sync_emitted) > 1 << 17:
            state.sync_emitted.clear()  # bounded memory; ancient entries
        ret = Packet(gaid=pkt.gaid, src=self.host.name, dst=config.clients[0],
                     is_sa=True, is_clr=True, is_cnf=True,
                     cnt_index=pkt.cnt_index, is_of=pkt.is_of,
                     kv=pkt.kv.copy(),
                     linear_base=pkt.linear_base,
                     task_id=pkt.task_id, offset=pkt.offset,
                     task_total=pkt.task_total, round=pkt.round)
        ret.select_all_slots()
        state.mcast.send(ret)
        if pkt.is_of:
            return  # corrected result will follow from the raw replays
        block = pkt.kv
        self._store_round_chunk(
            state, config, pkt,
            dict(zip(range(pkt.offset, pkt.offset + len(block)),
                     block.values)))

    def _store_round_chunk(self, state: _AppServerState, config: AppConfig,
                           pkt: Packet, values: Dict[Any, int]) -> None:
        info = state.rounds.setdefault(
            pkt.round, {"values": {}, "pairs": 0, "total": pkt.task_total})
        info["values"].update(values)
        info["pairs"] += len(values)
        if info["total"] and info["pairs"] >= info["total"]:
            done = state.rounds.pop(pkt.round)
            if state.on_round is not None:
                state.on_round(pkt.round, done["values"])

    # ------------------------------------------------------------------
    # software (cross) path
    # ------------------------------------------------------------------
    def _on_cross(self, state: _AppServerState, config: AppConfig,
                  pkt: Packet) -> None:
        prog = config.program
        if isinstance(pkt.payload, tuple) and pkt.payload and \
                pkt.payload[0] == "rpc-call" and not pkt.kv:
            # A plain (non-INC) call: hand it to the server stub and
            # carry its reply back on the unicast return flow.
            self._send_ack(state, config, pkt)
            reply_payload: Any = ("rpc-reply", b"")
            if state.on_call is not None:
                reply_payload = ("rpc-reply",
                                 state.on_call(pkt.src, pkt.gaid,
                                               pkt.payload[1]))
            self._reply(state, config, pkt.src,
                        dict(gaid=pkt.gaid, kv=[], task_id=pkt.task_id,
                             offset=pkt.offset, round=pkt.round,
                             payload=reply_payload,
                             payload_bytes=_payload_size(reply_payload)))
            return
        if state.on_data is not None and pkt.payload is not None:
            state.on_data(pkt.src, pkt)
        values: Dict[Any, int] = {}
        replay_pairs: List[Tuple[int, Any, int]] = []
        grants: List[Tuple[int, int]] = []
        absorbed = False
        self.stats["software_pairs"] += len(pkt.kv)
        # Hot per-kv loop: the common already-granted case is inlined
        # (memoized outcome + manager lookup); misses, evicted mappings,
        # and fresh grants fall back to the full _mapping_for path.
        switch_path = state.mm is not None and config.has_switch
        mapping_for = self._mapping_for
        outcome_get = state.map_outcome.get
        mm_lookup = state.mm.lookup if state.mm is not None else None
        replay_append = replay_pairs.append
        block = pkt.kv
        keys_col = block.keys
        values_col = block.values
        for index in range(len(values_col)):
            key = keys_col[index] if keys_col is not None else None
            value = values_col[index]
            phys = None
            if switch_path:
                outcome = outcome_get(key)
                if outcome is None:
                    phys = mapping_for(state, config, key, grants)
                elif outcome >= 0:
                    phys = mm_lookup(outcome)
                    if phys is None:
                        phys = mapping_for(state, config, key, grants)
            if phys is not None:
                replay_append((phys, key, value))
                continue
            if prog.agg.is_float:
                # Fp software path: values are ordered encodings; the
                # float64 shadow accumulator is the exact executor.
                # (Validation forbids Stream.modify and LAZY for fp.)
                codec = config.codec
                if prog.uses_add_to:
                    if prog.agg is AggOp.FADD:
                        state.soft.fadd_to(key, value, codec)
                    else:
                        state.soft.fmax_to(key, value, codec)
                if prog.uses_get:
                    values[key] = state.soft.fget(key, codec)
                if prog.cntfwd.counts:
                    # Fp accumulators never double as counters — always
                    # the side counter, mirroring the switch pipeline.
                    if state.soft.count_forward(key, prog.cntfwd.threshold):
                        values.setdefault(key, state.soft.fget(key, codec))
                    else:
                        absorbed = True
                if prog.clear is ClearPolicy.COPY and not prog.cntfwd.counts:
                    values.setdefault(key, state.soft.fget(key, codec))
                    state.soft.fclear(key)
                    state.soft.clear_counter(key)
                continue
            if prog.modify_op is not StreamOp.NOP:
                value = state.soft.modify(prog.modify_op, [value],
                                          prog.modify_para)[0]
            if prog.uses_add_to:
                state.soft.add_to(key, value)
            if prog.uses_get:
                values[key] = state.soft.get(key)
            if prog.cntfwd.counts:
                if self._software_count(state, prog, key):
                    values.setdefault(key, state.soft.get(key))
                else:
                    absorbed = True  # below threshold: drop, like the switch
            if prog.clear is ClearPolicy.COPY and not prog.cntfwd.counts:
                # Software Map.clear for a copy-clearing method.
                values.setdefault(key, state.soft.get(key))
                state.soft.clear(key)
                state.soft.clear_counter(key)

        if replay_pairs:
            self._fold_via_ctrl(state, config, pkt, replay_pairs, values,
                                prog.uses_get or prog.cntfwd.counts)
            return
        if absorbed:
            return  # no ACK: the eventual threshold result resolves it
        if prog.cntfwd.counts and \
                prog.cntfwd.target is ForwardTarget.ALL and values:
            # Software equivalent of the switch's threshold multicast.
            # Without switch support there is no multicast either, so the
            # result goes out as one reliable unicast per client.
            kv_out = [KVPair(addr=0, value=v, mapped=False, key=k)
                      for k, v in values.items()]
            if config.has_switch:
                result = Packet(gaid=pkt.gaid, src=self.host.name,
                                dst=config.clients[0], is_sa=True, kv=kv_out,
                                task_id=pkt.task_id, offset=pkt.offset,
                                round=pkt.round, payload=pkt.payload,
                                payload_bytes=pkt.payload_bytes)
                result.select_all_slots()
                state.mcast.send(result)
            else:
                for client in config.clients:
                    self._reply(state, config, client,
                                dict(gaid=pkt.gaid,
                                     kv=[p.copy() for p in kv_out],
                                     task_id=pkt.task_id, offset=pkt.offset,
                                     round=pkt.round))
            return
        self._send_ack(state, config, pkt)
        if values and (prog.uses_get or prog.cntfwd.counts):
            kv_out = [KVPair(addr=0, value=v, mapped=False, key=k)
                      for k, v in values.items()]
            self._reply(state, config, pkt.src,
                        dict(gaid=pkt.gaid, kv=kv_out, task_id=pkt.task_id,
                             offset=pkt.offset, round=pkt.round))

    def _software_count(self, state: _AppServerState, prog: RIPProgram,
                        key: Any) -> bool:
        """Software CntFwd with the same re-arm/test&set semantics."""
        threshold = prog.cntfwd.threshold
        if prog.uses_add_to:
            # The Map.addTo above already incremented the accumulator.
            count = state.soft.get(key)
            if count == threshold:
                if threshold > 1:
                    state.soft.clear(key)
                return True
            return False
        return state.soft.count_forward(key, threshold)

    def _mapping_for(self, state: _AppServerState, config: AppConfig,
                     key: Any, grants: List[Tuple[int, int]]
                     ) -> Optional[int]:
        """Existing or fresh physical mapping for ``key`` (None = software)."""
        if state.mm is None or not config.has_switch:
            return None
        outcome = state.map_outcome.get(key)
        if outcome is None:
            logical = logical_address(key)
            owner = state.key_of_logical.setdefault(logical, key)
            outcome = logical if owner == key else -1
            state.map_outcome[key] = outcome
        if outcome < 0:
            return None  # collision: this key lives in software forever
        logical = outcome
        existing = state.mm.lookup(logical)
        if existing is not None:
            return existing
        phys = state.mm.request(logical, self.sim.now)
        if phys is None:
            return None
        # Seed the register with whatever accumulated in software so the
        # switch becomes the single authority for this key.
        if config.program.agg.is_float:
            state.soft.clear_counter(key)
            seed, _of = config.codec.encode(state.soft.fclear(key))
        else:
            seed = state.soft.clear(key) + state.soft.clear_counter(key)
        if seed:
            self._ctrl(state, lambda sw: sw.ctrl_write(phys, seed))
        for client in config.clients:
            state.pending_grants.setdefault(client, []).append(
                (logical, phys))
        grants.append((logical, phys))
        return phys

    def _owner_switch(self, state: _AppServerState, phys: int):
        for switch in state.switches:
            if switch.owns(phys):
                return switch
        return None

    def _fold_via_ctrl(self, state: _AppServerState, config: AppConfig,
                       origin: Packet, pairs: List[Tuple[int, Any, int]],
                       partial_values: Dict[Any, int],
                       needs_reply: bool) -> None:
        """Fold late cross traffic into granted registers (control plane).

        The update is an atomic driver-side register add, so the register
        stays the single authority for its key even while clients race on
        the data plane.  Completion (ACK/reply/absorb) is deferred by the
        control RTT.
        """
        self.stats["replays"] += 1
        prog = config.program
        # Control-plane *writes* are posted (applied immediately, like
        # fire-and-forget PCIe writes), which preserves read-after-write
        # ordering for any later data-plane query.  Read-backs pay the
        # control-plane RTT before the reply goes out.
        values = dict(partial_values)
        absorbed = False
        for phys, key, value in pairs:
            switch = self._owner_switch(state, phys)
            if switch is None:  # pragma: no cover - defensive
                continue
            if prog.uses_add_to:
                if prog.agg is AggOp.FADD:
                    _new, overflowed = switch.ctrl_fadd(phys, value,
                                                        config.codec)
                elif prog.agg is AggOp.FMAX:
                    _new, overflowed = switch.ctrl_fmax(phys, value)
                else:
                    _new, overflowed = switch.ctrl_add(phys, value)
                if overflowed:
                    # Keep the delta exact in software; the sticky bit
                    # drives the normal overflow recovery downstream.
                    if prog.agg is AggOp.FADD:
                        state.soft.fadd_to(key, value, config.codec)
                    elif prog.agg is AggOp.FMAX:
                        state.soft.fmax_to(key, value, config.codec)
                    else:
                        state.soft.add_to(key, value)
            if prog.uses_get:
                values[key] = switch.ctrl_read([phys])[0][1]
            if prog.cntfwd.counts:
                if not prog.uses_add_to:
                    switch.ctrl_add(phys, 1)
                count = switch.ctrl_read([phys])[0][1]
                if count == prog.cntfwd.threshold:
                    if prog.cntfwd.threshold > 1:
                        switch.ctrl_write(phys, 0)
                    values.setdefault(key, count)
                else:
                    absorbed = True
            if prog.clear is ClearPolicy.COPY and not prog.cntfwd.counts:
                _addr, old, _sticky = switch.ctrl_read_and_clear([phys])[0]
                values.setdefault(key, old)
        if absorbed:
            return  # like a switch drop: the client retries/waits
        if not needs_reply:
            self._send_ack(state, config, origin)
            return

        def finish(_):
            self._send_ack(state, config, origin)
            if not values:
                return
            kv_out = [KVPair(addr=0, value=v, mapped=False, key=k)
                      for k, v in values.items()]
            if prog.cntfwd.counts and \
                    prog.cntfwd.target is ForwardTarget.ALL:
                result = Packet(gaid=origin.gaid, src=self.host.name,
                                dst=config.clients[0], is_sa=True,
                                kv=kv_out, task_id=origin.task_id,
                                offset=origin.offset, round=origin.round,
                                payload=origin.payload,
                                payload_bytes=origin.payload_bytes)
                result.select_all_slots()
                state.mcast.send(result)
                return
            self._reply(state, config, origin.src,
                        dict(gaid=origin.gaid, kv=kv_out,
                             task_id=origin.task_id, offset=origin.offset,
                             round=origin.round))

        self.sim.schedule(self.cal.ctrl_rtt_s, finish, None)

    # ------------------------------------------------------------------
    # overflow recovery (§5.2.1)
    # ------------------------------------------------------------------
    def _on_overflow_replay(self, state: _AppServerState, config: AppConfig,
                            pkt: Packet) -> None:
        prog = config.program
        self._send_ack(state, config, pkt)
        if config.linear and prog.cntfwd.counts:
            # SyncAgtr: collect every client's raw chunk, then send the
            # corrected aggregate computed in 64-bit software.
            buf = state.overflow_buf.setdefault((pkt.round, pkt.offset), {})
            buf[pkt.src] = pkt.kv.values_list()
            if len(buf) < prog.cntfwd.threshold:
                return
            contributions = state.overflow_buf.pop((pkt.round, pkt.offset))
            columns = zip(*contributions.values())
            if prog.agg is AggOp.FADD:
                # Exact float64 re-reduction of the raw encodings; the
                # corrected value saturates only if it is genuinely
                # beyond the format (then MAX is the honest answer).
                codec = config.codec
                corrected = [
                    codec.encode(sum(codec.decode(v) for v in col))[0]
                    for col in columns]
            elif prog.agg is AggOp.FMAX:
                # Ordered encodings compare like floats: integer max of
                # the raw replays IS the exact fp max.
                corrected = [max(col) for col in columns]
            else:
                # Integer (incl. qadd codes / topk coordinates): 64-bit
                # software sum.
                corrected = [sum(col) for col in columns]
            self.stats["corrected_chunks"] += 1
            self._finish_corrected_chunk(state, config, pkt, corrected)
            return
        # Map-addressed applications: exact software accumulation; the
        # register keeps its recoverable pre-overflow value until eviction.
        values: Dict[Any, int] = {}
        block = pkt.kv
        keys_col = block.keys
        for index, value in enumerate(block.values):
            key = keys_col[index] if keys_col is not None else None
            if prog.agg.is_float:
                codec = config.codec
                if prog.uses_add_to:
                    if prog.agg is AggOp.FADD:
                        state.soft.fadd_to(key, value, codec)
                    else:
                        state.soft.fmax_to(key, value, codec)
                if prog.uses_get:
                    reg = codec.decode(
                        self._register_part(state, config, key))
                    soft = state.soft.fvalue(key)
                    total = soft + reg if prog.agg is AggOp.FADD \
                        else max(soft, reg)
                    values[key] = codec.encode(total)[0]
                continue
            if prog.uses_add_to:
                state.soft.add_to(key, value)
            if prog.uses_get:
                values[key] = state.soft.get(key) + \
                    self._register_part(state, config, key)
        if values:
            kv_out = [KVPair(addr=0, value=v, mapped=False, key=k)
                      for k, v in values.items()]
            self._reply(state, config, pkt.src,
                        dict(gaid=pkt.gaid, kv=kv_out, task_id=pkt.task_id,
                             offset=pkt.offset, round=pkt.round))

    def _register_part(self, state: _AppServerState, config: AppConfig,
                       key: Any) -> int:
        """Exact register contribution of a (possibly sticky) mapped key."""
        if state.mm is None:
            return 0
        phys = state.mm.lookup(logical_address(key))
        if phys is None:
            return 0
        for switch in state.switches:
            if switch.owns(phys):
                return switch.ctrl_read([phys])[0][1]
        return 0

    def _finish_corrected_chunk(self, state: _AppServerState,
                                config: AppConfig, pkt: Packet,
                                corrected: List[int]) -> None:
        prog = config.program
        half = config.active_region_size
        parity = pkt.round % 2 if config.shadow else 0
        base = config.value_region.base + parity * half
        addrs = [base + (pkt.offset + j) % half for j in range(len(corrected))]
        if prog.clear is ClearPolicy.LAZY:
            # Reset the sticky registers so later rounds reuse them.
            self._ctrl(state,
                       lambda sw, a=tuple(addrs): sw.ctrl_read_and_clear(a))
        key_range = range(pkt.offset, pkt.offset + len(corrected))
        kv = KVBlock.from_columns(addrs, corrected, mapped_mask=-1,
                                  keys=list(key_range))
        result = Packet(gaid=pkt.gaid, src=self.host.name,
                        dst=config.clients[0], is_sa=True, kv=kv,
                        task_id=pkt.task_id, offset=pkt.offset,
                        task_total=pkt.task_total, round=pkt.round)
        result.select_all_slots()
        state.mcast.send(result)
        self._store_round_chunk(state, config, pkt,
                                dict(zip(key_range, corrected)))

    def _merge_evicted(self, state: _AppServerState, key: Any,
                       value: int) -> None:
        """Fold an evicted register back into the software map, in the
        application's aggregation arithmetic."""
        config = state.any_config()
        agg = config.program.agg
        if agg is AggOp.FADD:
            state.soft.fadd_to(key, value, config.codec)
        elif agg is AggOp.FMAX:
            state.soft.fmax_to(key, value, config.codec)
        else:
            state.soft.merge_register(key, value)

    # ------------------------------------------------------------------
    # cache-update window: periodic LRU eviction (§5.2.2)
    # ------------------------------------------------------------------
    def _window_loop(self, state: _AppServerState):
        while True:
            yield self.sim.timeout(self.cal.cache_update_window_s)
            state.pending_revokes = []
            if state.mm is None:
                continue
            victims = state.mm.end_window(self.sim.now)
            if not victims:
                continue
            yield self.sim.timeout(self.cal.ctrl_rtt_s)
            for logical, phys in victims:
                value = 0
                for switch in state.switches:
                    if switch.owns(phys):
                        value = switch.ctrl_read_and_clear([phys])[0][1]
                        break
                key = state.key_of_logical.get(logical)
                if key is not None and value:
                    self._merge_evicted(state, key, value)
                state.mm.finish_eviction(logical, self.sim.now)
                state.pending_revokes.append(logical)
                self.stats["evictions"] += 1

    # ------------------------------------------------------------------
    # two-level timeout support (§5.2.2, invoked by the controller)
    # ------------------------------------------------------------------
    def retrieve_app(self, app_key: str) -> int:
        """First-level timeout: drain the app's switch state into software.

        Returns the number of registers retrieved.  The mappings are
        revoked so switch memory can be reclaimed quickly while the
        (much larger) server keeps the data available.
        """
        state = self._apps.get(app_key)
        if state is None or state.mm is None:
            return 0
        retrieved = 0
        for logical in list(state.mm.mapped_logicals()):
            phys = state.mm.lookup(logical)
            key = state.key_of_logical.get(logical)
            for switch in state.switches:
                if switch.owns(phys):
                    value = switch.ctrl_read_and_clear([phys])[0][1]
                    if key is not None and value:
                        self._merge_evicted(state, key, value)
                    retrieved += 1
                    break
            state.mm.finish_eviction(logical, self.sim.now)
            state.pending_revokes.append(logical)
        return retrieved

    def expire_app(self, app_key: str) -> Dict[Any, int]:
        """Second-level timeout: hand the saved data back (or drop it)."""
        state = self._apps.get(app_key)
        if state is None:
            return {}
        return state.soft.drain()

    # ------------------------------------------------------------------
    def _ctrl(self, state: _AppServerState, fn: Callable) -> None:
        """Run a control-plane switch operation after the control RTT."""
        def do(_):
            for switch in state.switches:
                try:
                    fn(switch)
                    return
                except IndexError:
                    continue
        self.sim.schedule(self.cal.ctrl_rtt_s, do, None)
