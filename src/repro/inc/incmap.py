"""The software INC map: the host agents' fallback executor (§3.2, §5.2.1).

Host agents "emulate all switch operations in software and thus can
always provide correct INC results to the RPCLayer regardless of the
switch's ability or resource".  This class implements the five RIPs
over 64-bit integers (no saturation), keyed by the application's
original keys, and is used for:

* keys without a physical mapping (cache misses / collisions);
* overflow recovery (exact re-execution of clamped packets);
* deployments with no programmable switch at all.

It is also the reference model property-based tests compare the switch
dataplane against.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.protocol import StreamOp, apply_stream_op

__all__ = ["SoftwareINCMap"]


class SoftwareINCMap:
    """Exact software implementation of the INC map primitives."""

    def __init__(self):
        self._values: Dict[Any, int] = {}
        self._counters: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    # Map primitives (Table 2 semantics, unbounded precision)
    # ------------------------------------------------------------------
    def add_to(self, key: Any, value: int) -> int:
        """Map.addTo: accumulate; returns the new total."""
        total = self._values.get(key, 0) + value
        self._values[key] = total
        return total

    def get(self, key: Any) -> int:
        """Map.get: read (0 for absent keys, like a cleared register)."""
        return self._values.get(key, 0)

    def clear(self, key: Any) -> int:
        """Map.clear: zero the entry; returns the value it held."""
        return self._values.pop(key, 0)

    def modify(self, op: StreamOp, values: Iterable[int], para: int
               ) -> List[int]:
        """Stream.modify applied to a value stream (no map access)."""
        return [apply_stream_op(op, v, para)[0] for v in values]

    def count_forward(self, key: Any, threshold: int) -> bool:
        """CntFwd: increment and report whether the threshold was reached.

        Mirrors the switch semantics: exact-equality comparison, and
        multi-party counters (threshold > 1) re-arm on a hit while
        test&set counters persist until cleared.
        """
        if threshold <= 0:
            return True
        count = self._counters.get(key, 0) + 1
        self._counters[key] = count
        if count == threshold:
            if threshold > 1:
                self._counters[key] = 0
            return True
        return False

    def counter(self, key: Any) -> int:
        return self._counters.get(key, 0)

    def clear_counter(self, key: Any) -> int:
        return self._counters.pop(key, 0)

    # ------------------------------------------------------------------
    # bulk helpers used by the server agent
    # ------------------------------------------------------------------
    def merge_register(self, key: Any, register_value: int) -> int:
        """Fold an evicted switch register into the software total."""
        return self.add_to(key, register_value)

    def drain(self) -> Dict[Any, int]:
        """Remove and return every entry (second-level timeout path)."""
        values, self._values = self._values, {}
        return values

    def snapshot(self) -> Dict[Any, int]:
        return dict(self._values)

    def items(self) -> Iterable[Tuple[Any, int]]:
        return self._values.items()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Any) -> bool:
        return key in self._values
