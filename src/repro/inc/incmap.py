"""The software INC map: the host agents' fallback executor (§3.2, §5.2.1).

Host agents "emulate all switch operations in software and thus can
always provide correct INC results to the RPCLayer regardless of the
switch's ability or resource".  This class implements the five RIPs
over 64-bit integers (no saturation), keyed by the application's
original keys, and is used for:

* keys without a physical mapping (cache misses / collisions);
* overflow recovery (exact re-execution of clamped packets);
* deployments with no programmable switch at all.

It is also the reference model property-based tests compare the switch
dataplane against.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.protocol import DEFAULT_FP_CODEC, StreamOp, apply_stream_op

__all__ = ["SoftwareINCMap"]


class SoftwareINCMap:
    """Exact software implementation of the INC map primitives."""

    def __init__(self):
        self._values: Dict[Any, int] = {}
        self._counters: Dict[Any, int] = {}
        # Fp entries (agg=fadd/fmax) accumulate in float64 — the software
        # path is the *exact* executor, strictly better than the switch's
        # table arithmetic; reads re-encode for the wire.
        self._floats: Dict[Any, float] = {}

    # ------------------------------------------------------------------
    # Map primitives (Table 2 semantics, unbounded precision)
    # ------------------------------------------------------------------
    def add_to(self, key: Any, value: int) -> int:
        """Map.addTo: accumulate; returns the new total."""
        total = self._values.get(key, 0) + value
        self._values[key] = total
        return total

    def get(self, key: Any) -> int:
        """Map.get: read (0 for absent keys, like a cleared register)."""
        return self._values.get(key, 0)

    def clear(self, key: Any) -> int:
        """Map.clear: zero the entry; returns the value it held."""
        return self._values.pop(key, 0)

    def modify(self, op: StreamOp, values: Iterable[int], para: int
               ) -> List[int]:
        """Stream.modify applied to a value stream (no map access)."""
        return [apply_stream_op(op, v, para)[0] for v in values]

    def fadd_to(self, key: Any, ordered: int,
                codec=DEFAULT_FP_CODEC) -> float:
        """Fp Map.addTo: decode the wire encoding, accumulate in float64."""
        total = self._floats.get(key, 0.0) + codec.decode(ordered)
        self._floats[key] = total
        return total

    def fmax_to(self, key: Any, ordered: int,
                codec=DEFAULT_FP_CODEC) -> float:
        """Fp max-combine over the float64 shadow value.

        An absent key is the max *identity* (first contribution wins
        outright) — not 0.0, which would floor negative maxima.
        """
        value = codec.decode(ordered)
        if key not in self._floats or value > self._floats[key]:
            self._floats[key] = value
        return self._floats[key]

    def fget(self, key: Any, codec=DEFAULT_FP_CODEC) -> int:
        """Fp Map.get: the accumulated float re-encoded for the wire.

        Absent keys read as raw 0 — exactly what a cleared switch
        register reads as under either fp codec.
        """
        if key not in self._floats:
            return 0
        ordered, _ = codec.encode(self._floats[key])
        return ordered

    def fclear(self, key: Any) -> float:
        """Fp Map.clear: drop the entry; returns the float it held."""
        return self._floats.pop(key, 0.0)

    def fvalue(self, key: Any) -> float:
        """The accumulated float itself (no re-encoding; recovery math)."""
        return self._floats.get(key, 0.0)

    def count_forward(self, key: Any, threshold: int) -> bool:
        """CntFwd: increment and report whether the threshold was reached.

        Mirrors the switch semantics: exact-equality comparison, and
        multi-party counters (threshold > 1) re-arm on a hit while
        test&set counters persist until cleared.
        """
        if threshold <= 0:
            return True
        count = self._counters.get(key, 0) + 1
        self._counters[key] = count
        if count == threshold:
            if threshold > 1:
                self._counters[key] = 0
            return True
        return False

    def counter(self, key: Any) -> int:
        return self._counters.get(key, 0)

    def clear_counter(self, key: Any) -> int:
        return self._counters.pop(key, 0)

    # ------------------------------------------------------------------
    # bulk helpers used by the server agent
    # ------------------------------------------------------------------
    def merge_register(self, key: Any, register_value: int) -> int:
        """Fold an evicted switch register into the software total."""
        return self.add_to(key, register_value)

    def drain(self) -> Dict[Any, int]:
        """Remove and return every entry (second-level timeout path)."""
        values, self._values = self._values, {}
        return values

    def snapshot(self) -> Dict[Any, int]:
        return dict(self._values)

    def items(self) -> Iterable[Tuple[Any, int]]:
        return self._values.items()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Any) -> bool:
        return key in self._values
