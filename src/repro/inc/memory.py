"""Server-agent switch-memory management (paper §5.2.2).

The server agent owns the logical -> physical mapping for all of its
clients (the paper's "multiple clients of a single application" design)
and hands out *grants* piggybacked on ACKs.  A pluggable
:class:`~repro.inc.cache.CachePolicy` drives admission and the periodic
eviction that implements NetRPC's counting-LRU cache.

Evicted physical addresses go through a *quarantine* period before
reuse so that clients holding a stale grant cannot write into memory
that has been re-granted to another key (revocations are piggybacked on
ACKs, so active clients learn quickly; quarantine covers the in-flight
window).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from .cache import CachePolicy, HashAddressPolicy, PeriodicLRUPolicy

__all__ = ["MemoryRegion", "MemoryManager", "LinearAllocator", "FreeList"]


class FreeList:
    """FIFO free list over ``[base, base + size)`` with O(1) removal.

    Replaces the seed's ``deque`` (whose ``remove`` was an O(n) scan over
    up to ``size`` entries — ~0.3 ms per call on a 1.3M-slot region).
    Pop order is identical to the deque it replaces: the initial address
    range drains lowest-first, recycled addresses follow in append
    (FIFO) order.  The untouched portion of the initial range is kept as
    a pair of bounds instead of materialised entries, so construction is
    O(1) too.
    """

    __slots__ = ("_fresh_next", "_fresh_end", "_holes", "_recycled")

    def __init__(self, base: int, size: int):
        self._fresh_next = base          # next never-granted address
        self._fresh_end = base + size
        self._holes: Set[int] = set()    # fresh-range addrs removed early
        # dict used as an ordered set: O(1) append / popleft / discard.
        self._recycled: Dict[int, None] = {}

    def __len__(self) -> int:
        fresh = self._fresh_end - self._fresh_next - len(self._holes)
        return fresh + len(self._recycled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, addr: int) -> bool:
        if addr in self._recycled:
            return True
        return (self._fresh_next <= addr < self._fresh_end
                and addr not in self._holes)

    def popleft(self) -> int:
        holes = self._holes
        while self._fresh_next < self._fresh_end:
            addr = self._fresh_next
            self._fresh_next = addr + 1
            if addr in holes:
                holes.discard(addr)
            else:
                return addr
        if not self._recycled:
            raise IndexError("pop from an empty free list")
        addr = next(iter(self._recycled))
        del self._recycled[addr]
        return addr

    def append(self, addr: int) -> None:
        self._recycled[addr] = None

    def discard(self, addr: int) -> None:
        """Remove ``addr`` if present (hash-addressing grant path)."""
        if addr in self._recycled:
            del self._recycled[addr]
        elif self._fresh_next <= addr < self._fresh_end:
            self._holes.add(addr)


class MemoryRegion:
    """A contiguous range of global physical addresses reserved for an app."""

    def __init__(self, base: int, size: int):
        if size < 0 or base < 0:
            raise ValueError("region base/size must be non-negative")
        self.base = base
        self.size = size

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemoryRegion[{self.base}, {self.base + self.size})"


class LinearAllocator:
    """Circular-buffer addressing for synchronous aggregation (§5.2.2).

    SyncAgtr streams a large contiguous array through a fixed region: the
    array index ``i`` maps to ``base + (i % size)``.  Correctness needs
    the in-flight span to stay below ``size`` (registers are cleared by
    the round's return stream before the buffer wraps onto them); the
    client agent enforces that bound.
    """

    def __init__(self, region: MemoryRegion):
        if region.size % 32 != 0 or region.size == 0:
            raise ValueError(
                "a linear region must be a positive multiple of 32 so that "
                "aligned chunks cover every memory segment once")
        self.region = region

    def physical(self, index: int) -> int:
        if index < 0:
            raise ValueError("array indices are non-negative")
        return self.region.base + index % self.region.size

    @property
    def window_chunks(self) -> int:
        """Max packets (32-pair chunks) safely in flight."""
        return self.region.size // 32


class MemoryManager:
    """Logical -> physical mapping plus grant/evict lifecycle for one app."""

    def __init__(self, region: MemoryRegion, policy: Optional[CachePolicy] = None,
                 quarantine_s: float = 5e-3):
        self.region = region
        self.policy = policy or PeriodicLRUPolicy()
        self.quarantine_s = quarantine_s
        self._logical_to_phys: Dict[int, int] = {}
        self._phys_to_logical: Dict[int, int] = {}
        self._free = FreeList(region.base, region.size)
        self._quarantined: Deque[Tuple[float, int]] = deque()
        self._pending_hot: Set[int] = set()
        self._window_counts: Dict[int, int] = {}
        self.stats = {"grants": 0, "evictions": 0, "denied": 0}

    # ------------------------------------------------------------------
    @property
    def mapped_count(self) -> int:
        return len(self._logical_to_phys)

    @property
    def capacity(self) -> int:
        return self.region.size

    def lookup(self, logical: int) -> Optional[int]:
        return self._logical_to_phys.get(logical)

    def logical_of(self, phys: int) -> Optional[int]:
        return self._phys_to_logical.get(phys)

    def mapped_logicals(self) -> Set[int]:
        return set(self._logical_to_phys)

    # ------------------------------------------------------------------
    def request(self, logical: int, now: float) -> Optional[int]:
        """Try to grant a mapping for ``logical``; None if denied.

        Called when the server sees an unmapped key.  Hash addressing is
        special-cased: the slot is fixed by the hash, collisions are
        permanent fallbacks.
        """
        existing = self._logical_to_phys.get(logical)
        if existing is not None:
            return existing
        self._release_expired(now)

        if isinstance(self.policy, HashAddressPolicy):
            slot = self.region.base + HashAddressPolicy.slot_for(
                logical, self.region.size)
            if slot in self._phys_to_logical:
                self.stats["denied"] += 1
                return None
            self._grant(logical, slot)
            self._free.discard(slot)
            return slot

        mapped = self.mapped_logicals()
        if not self.policy.wants(logical, mapped, self.capacity):
            self._pending_hot.add(logical)
            self.stats["denied"] += 1
            return None
        if not self._free:
            self._pending_hot.add(logical)
            self.stats["denied"] += 1
            return None
        phys = self._free.popleft()
        self._grant(logical, phys)
        return phys

    def _grant(self, logical: int, phys: int) -> None:
        self._logical_to_phys[logical] = phys
        self._phys_to_logical[phys] = logical
        self.stats["grants"] += 1

    # ------------------------------------------------------------------
    def note_use(self, logical: int, count: int = 1) -> None:
        """Record client-reported use counts for the current window."""
        self._window_counts[logical] = \
            self._window_counts.get(logical, 0) + count

    def end_window(self, now: float) -> List[Tuple[int, int]]:
        """Close the cache-update window (§5.2.2).

        Feeds the window's counts to the policy and returns the
        ``(logical, physical)`` pairs chosen for eviction.  The caller
        (server agent) must read-and-clear those registers, merge the
        values into its software map, broadcast revocations, and finally
        call :meth:`finish_eviction`.
        """
        self.policy.window_update(self._window_counts)
        self._window_counts = {}
        victims = self.policy.evictions(self.mapped_logicals(), self.capacity,
                                        self._pending_hot)
        self._pending_hot = set()
        out = []
        for logical in victims:
            phys = self._logical_to_phys.get(logical)
            if phys is not None:
                out.append((logical, phys))
        return out

    def finish_eviction(self, logical: int, now: float) -> None:
        """Complete an eviction: unmap and quarantine the register."""
        phys = self._logical_to_phys.pop(logical, None)
        if phys is None:
            return
        del self._phys_to_logical[phys]
        self._quarantined.append((now + self.quarantine_s, phys))
        self.stats["evictions"] += 1

    def _release_expired(self, now: float) -> None:
        while self._quarantined and self._quarantined[0][0] <= now:
            _, phys = self._quarantined.popleft()
            self._free.append(phys)

    # ------------------------------------------------------------------
    def force_unmap(self, logical: int, now: float) -> Optional[int]:
        """Immediate unmap (overflow fallback); returns the physical addr."""
        phys = self._logical_to_phys.get(logical)
        if phys is not None:
            self.finish_eviction(logical, now)
        return phys
