"""ECN-driven AIMD congestion control (paper §5.1).

Traditional RTT/dup-ACK signals are useless under CntFwd (the switch
intentionally holds packets until the slowest sender arrives), so
NetRPC reacts only to explicit congestion marks echoed by the switch:

* an ECN-marked ACK/result triggers one multiplicative decrease per
  round-trip;
* clean ACKs grow the window additively (``aimd_increase`` packets per
  RTT, implemented as the standard per-ACK ``increase/cwnd`` ramp);
* a retransmission timeout collapses the window to the minimum.

The controller can be disabled (fixed window at ``w_max``) to reproduce
the paper's with/without-congestion-control comparison (Figure 9).
"""

from __future__ import annotations

from repro.netsim import Calibration, DEFAULT_CALIBRATION
from repro.obs.tracer import TRACE

__all__ = ["AIMDController", "DCTCPController", "make_controller"]


class AIMDController:
    """Per-flow congestion window state."""

    def __init__(self, cal: Calibration = DEFAULT_CALIBRATION,
                 enabled: bool = True):
        self.cal = cal
        self.enabled = enabled
        self._cwnd = float(cal.initial_cwnd if enabled else cal.w_max)
        self._last_decrease = -1.0
        self._rtt_ewma = 0.0
        self.stats = {"decreases": 0, "timeouts": 0, "acks": 0}

    # ------------------------------------------------------------------
    @property
    def cwnd(self) -> int:
        """Usable window in packets, always within [min_cwnd, w_max]."""
        return max(self.cal.min_cwnd, min(self.cal.w_max, int(self._cwnd)))

    @property
    def rtt_estimate(self) -> float:
        return self._rtt_ewma or self.cal.retransmit_timeout_s / 2.0

    # ------------------------------------------------------------------
    def observe_rtt(self, sample_s: float) -> None:
        if sample_s <= 0:
            return
        if self._rtt_ewma == 0.0:
            self._rtt_ewma = sample_s
        else:
            self._rtt_ewma = 0.875 * self._rtt_ewma + 0.125 * sample_s

    def on_ack(self, ecn: bool, now: float) -> None:
        """One packet acknowledged; ``ecn`` is the echoed congestion mark."""
        self.stats["acks"] += 1
        if not self.enabled:
            return
        if ecn:
            # At most one multiplicative decrease per RTT, so a burst of
            # marked ACKs from the same congestion event counts once.
            if now - self._last_decrease >= self.rtt_estimate:
                self._cwnd = max(self.cal.min_cwnd,
                                 self._cwnd * self.cal.aimd_decrease)
                self._last_decrease = now
                self.stats["decreases"] += 1
                if TRACE.enabled:
                    TRACE.instant("cc.decrease", now, "cc", (self.cwnd,))
            return
        self._cwnd = min(float(self.cal.w_max),
                         self._cwnd + self.cal.aimd_increase / self._cwnd)

    def on_fast_loss(self, now: float) -> None:
        """Loss inferred from out-of-order ACKs.

        Deliberately *not* a congestion signal: under CntFwd a missing
        ACK usually means the switch is waiting for the slowest sender,
        and the paper's design reacts to ECN only (§5.1).  The hole is
        healed by retransmission; the window stays put.
        """
        self.stats["fast_losses"] = self.stats.get("fast_losses", 0) + 1

    def on_timeout(self, now: float) -> None:
        """Retransmission timeout.

        Same rationale as :meth:`on_fast_loss`: timeouts do not reflect
        real congestion in INC primitives (§5.1), so the window is not
        collapsed — ECN alone modulates it.
        """
        self.stats["timeouts"] += 1


class DCTCPController(AIMDController):
    """DCTCP-style proportional window adjustment (the paper's §7 plan).

    Instead of one multiplicative cut per marked round trip, the window
    shrinks in proportion to the observed *fraction* of marked ACKs,
    smoothed with DCTCP's g = 1/16 EWMA:

        alpha <- (1 - g) * alpha + g * marked_fraction
        cwnd  <- cwnd * (1 - alpha / 2)        (once per RTT)

    The paper notes plain DCTCP mis-measures multi-path incast (it would
    need the per-path maximum, not the total fraction); this controller
    is provided as the future-work extension and compared against AIMD
    in ``benchmarks/bench_ablation.py``.
    """

    G = 1.0 / 16.0

    def __init__(self, cal: Calibration = DEFAULT_CALIBRATION,
                 enabled: bool = True):
        super().__init__(cal, enabled)
        self.alpha = 0.0
        self._window_acks = 0
        self._window_marked = 0

    def on_ack(self, ecn: bool, now: float) -> None:
        self.stats["acks"] += 1
        if not self.enabled:
            return
        self._window_acks += 1
        if ecn:
            self._window_marked += 1
        # Close the observation window once per RTT.
        if now - self._last_decrease >= self.rtt_estimate and \
                self._window_acks > 0:
            fraction = self._window_marked / self._window_acks
            self.alpha = (1 - self.G) * self.alpha + self.G * fraction
            if self.alpha > 0:
                self._cwnd = max(self.cal.min_cwnd,
                                 self._cwnd * (1 - self.alpha / 2))
                if fraction > 0:
                    self.stats["decreases"] += 1
                    if TRACE.enabled:
                        TRACE.instant("cc.decrease", now, "cc",
                                      (self.cwnd,))
            self._last_decrease = now
            self._window_acks = 0
            self._window_marked = 0
        if not ecn:
            self._cwnd = min(float(self.cal.w_max),
                             self._cwnd + self.cal.aimd_increase
                             / max(1.0, self._cwnd))


def make_controller(mode: str, cal: Calibration = DEFAULT_CALIBRATION,
                    enabled: bool = True) -> AIMDController:
    """Controller factory: ``aimd`` (the paper's design) or ``dctcp``."""
    if mode == "aimd":
        return AIMDController(cal, enabled=enabled)
    if mode == "dctcp":
        return DCTCPController(cal, enabled=enabled)
    raise ValueError(f"unknown congestion-control mode {mode!r}; "
                     f"expected 'aimd' or 'dctcp'")
