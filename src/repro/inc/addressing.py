"""Key -> 32-bit logical address mapping (paper §5.2.2).

The RPC layer supports maps with arbitrary keys; the INC layer exposes a
32-bit *logical* address space per application.  Host agents hash keys
of any type/length into that space with a deterministic hash (so every
client and the server compute the same address independently).
Colliding keys are diverted to the payload/server path — the paper's
"we handle all collisions by putting the colliding keys into the
payload to bypass the switch INC".
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Optional, Set

__all__ = ["logical_address", "LogicalSpace"]

_SPACE_BITS = 32
_SPACE_MASK = (1 << _SPACE_BITS) - 1


def logical_address(key: Any) -> int:
    """Deterministic 32-bit logical address for an application key.

    Integer keys map through a bit-mix (so that dense ranges spread);
    strings/bytes go through CRC32.  The function is stable across
    processes — a requirement, since clients and servers derive the
    mapping independently.
    """
    if isinstance(key, bool):  # bool is an int subclass; treat as int
        key = int(key)
    if isinstance(key, int):
        # Fibonacci hashing: good avalanche for sequential keys.
        return (key * 0x9E3779B1) & _SPACE_MASK
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8")) & _SPACE_MASK
    if isinstance(key, bytes):
        return zlib.crc32(key) & _SPACE_MASK
    raise TypeError(
        f"INC map keys must be int, str, or bytes; got {type(key).__name__}")


class LogicalSpace:
    """Tracks one application's logical address assignments and collisions.

    The first key claiming an address owns it; later keys hashing to the
    same address are recorded as *collisions* and must take the server
    (payload) path forever.
    """

    def __init__(self):
        self._owner: Dict[int, Any] = {}
        self._collided: Set[Any] = set()
        # A key's outcome is permanent (ownership never changes hands,
        # collisions are forever), so resolve() is memoizable.
        self._memo: Dict[Any, Optional[int]] = {}

    def resolve(self, key: Any) -> Optional[int]:
        """Logical address for ``key``, or None if it collided."""
        memo = self._memo
        if key in memo:
            return memo[key]
        if key in self._collided:
            memo[key] = None
            return None
        addr = logical_address(key)
        owner = self._owner.get(addr)
        if owner is None:
            self._owner[addr] = key
        elif owner != key:
            self._collided.add(key)
            memo[key] = None
            return None
        memo[key] = addr
        return addr

    def owner_of(self, addr: int) -> Optional[Any]:
        return self._owner.get(addr)

    @property
    def collision_count(self) -> int:
        return len(self._collided)

    @property
    def assigned_count(self) -> int:
        return len(self._owner)
