"""The INC layer: reliable transport, memory management, and host agents.

Implements paper §5 — the layer that lets the RPC layer "safely assume
that the data stream is delivered reliably and the NetFilter is fully
executed under various network conditions".
"""

from .addressing import LogicalSpace, logical_address
from .app import AppConfig, Task, TaskResult
from .cache import (
    CachePolicy,
    FCFSPolicy,
    HashAddressPolicy,
    PeriodicLRUPolicy,
    PowerOfNPolicy,
    make_policy,
)
from .client_agent import ClientAgent
from .congestion import AIMDController, DCTCPController, make_controller
from .incmap import SoftwareINCMap
from .memory import LinearAllocator, MemoryManager, MemoryRegion
from .server_agent import ServerAgent
from .transport import ReliableFlow

__all__ = [
    "LogicalSpace", "logical_address",
    "AppConfig", "Task", "TaskResult",
    "CachePolicy", "PeriodicLRUPolicy", "FCFSPolicy", "PowerOfNPolicy",
    "HashAddressPolicy", "make_policy",
    "ClientAgent", "ServerAgent",
    "AIMDController", "DCTCPController", "make_controller", "ReliableFlow",
    "SoftwareINCMap",
    "MemoryManager", "MemoryRegion", "LinearAllocator",
]
