"""Switch-memory cache replacement policies (paper §5.2.2 and Figure 12).

The switch's register memory acts as a cache over each application's
logical key space; the *server agent* decides which logical addresses
hold a physical mapping.  NetRPC's policy is a periodic counting
approximation of LRU: clients report per-address use counts each
*cache update window*, and the server evicts addresses that fell out of
the hot set.  The evaluation compares it against FCFS, hash-addressed
caching (ATP/ASK style), and Power-of-N (sketch style); all four are
implemented behind one interface.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

__all__ = [
    "CachePolicy",
    "PeriodicLRUPolicy",
    "FCFSPolicy",
    "PowerOfNPolicy",
    "HashAddressPolicy",
    "make_policy",
]


class CachePolicy:
    """Decides admission and eviction for one application's mappings.

    The server agent calls :meth:`wants` when an unmapped logical address
    shows up, and :meth:`window_update` at the end of each cache update
    window with the aggregated use counts reported by clients.
    :meth:`evictions` then names mapped addresses to displace.
    """

    name = "base"

    def wants(self, logical: int, mapped: Set[int], capacity: int) -> bool:
        """Should ``logical`` get a mapping now (space permitting)?"""
        raise NotImplementedError

    def window_update(self, counts: Dict[int, int]) -> None:
        """Feed one window's use counts (logical address -> count)."""

    def evictions(self, mapped: Set[int], capacity: int,
                  pending: Iterable[int]) -> List[int]:
        """Mapped addresses to evict to make room for ``pending`` ones."""
        return []


class FCFSPolicy(CachePolicy):
    """First-come-first-served: fill once, never evict (paper baseline)."""

    name = "fcfs"

    def wants(self, logical: int, mapped: Set[int], capacity: int) -> bool:
        return len(mapped) < capacity


class PowerOfNPolicy(CachePolicy):
    """Only cache keys whose observed hit count exceeds N (sketch style).

    Gives up caching entirely once memory fills, like the paper's PoN
    baseline.
    """

    name = "pon"

    def __init__(self, n: int = 4):
        if n < 1:
            raise ValueError("PoN threshold must be >= 1")
        self.n = n
        self._hits: Dict[int, int] = {}

    def note_use(self, logical: int, count: int = 1) -> None:
        self._hits[logical] = self._hits.get(logical, 0) + count

    def wants(self, logical: int, mapped: Set[int], capacity: int) -> bool:
        self.note_use(logical)
        if len(mapped) >= capacity:
            return False
        return self._hits.get(logical, 0) >= self.n

    def window_update(self, counts: Dict[int, int]) -> None:
        for logical, count in counts.items():
            self.note_use(logical, count)


class HashAddressPolicy(CachePolicy):
    """Hash-addressed memory (ASK/ATP style): logical % capacity.

    There is no admission decision to make — a key is cached iff its
    hash slot is free; collisions fall back to the server forever.  The
    server agent special-cases this policy when assigning physical
    addresses (see :class:`~repro.inc.memory.MemoryManager`).
    """

    name = "hash"

    def wants(self, logical: int, mapped: Set[int], capacity: int) -> bool:
        return True  # admission is decided by slot availability instead

    @staticmethod
    def slot_for(logical: int, capacity: int) -> int:
        return logical % capacity


class PeriodicLRUPolicy(CachePolicy):
    """NetRPC's periodic counting-LRU (paper §5.2.2).

    Admission is eager (first use maps, like FCFS) while memory lasts.
    Each window the policy recomputes the hot set from reported counts;
    mapped addresses that are cold get evicted in favour of hot unmapped
    ones, so the cache tracks the *recent* working set.
    """

    name = "netrpc"

    def __init__(self, history_windows: int = 2,
                 max_evict_fraction: float = 1 / 16):
        if history_windows < 1:
            raise ValueError("history must cover at least one window")
        if not 0 < max_evict_fraction <= 1:
            raise ValueError("max_evict_fraction must be in (0, 1]")
        self.history_windows = history_windows
        # Anti-thrash: at most this fraction of the cache turns over per
        # window, so adaptation never starves the data path.
        self.max_evict_fraction = max_evict_fraction
        self._windows: List[Dict[int, int]] = []

    def wants(self, logical: int, mapped: Set[int], capacity: int) -> bool:
        return len(mapped) < capacity

    def window_update(self, counts: Dict[int, int]) -> None:
        self._windows.append(dict(counts))
        if len(self._windows) > self.history_windows:
            self._windows.pop(0)

    def _recent_counts(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for window in self._windows:
            for logical, count in window.items():
                merged[logical] = merged.get(logical, 0) + count
        return merged

    def evictions(self, mapped: Set[int], capacity: int,
                  pending: Iterable[int]) -> List[int]:
        pending = [p for p in pending if p not in mapped]
        if not pending:
            return []
        counts = self._recent_counts()
        # Hottest `capacity` addresses across mapped + pending form the
        # target set; mapped addresses outside it are eviction candidates,
        # coldest first.
        candidates = sorted(mapped, key=lambda a: counts.get(a, 0))
        pending_hot = sorted(pending, key=lambda a: -counts.get(a, 0))
        max_evict = max(1, int(capacity * self.max_evict_fraction))
        evict: List[int] = []
        admitted = 0
        for new in pending_hot:
            if len(evict) >= max_evict:
                break
            if len(mapped) - len(evict) + admitted < capacity:
                admitted += 1  # free slot available for this one
                continue
            if not candidates:
                break
            coldest = candidates[0]
            if counts.get(new, 0) > counts.get(coldest, 0):
                evict.append(candidates.pop(0))
                admitted += 1
        return evict


def make_policy(name: str, **kwargs) -> CachePolicy:
    """Factory used by benchmarks: netrpc | fcfs | pon | hash."""
    policies = {
        "netrpc": PeriodicLRUPolicy,
        "fcfs": FCFSPolicy,
        "pon": PowerOfNPolicy,
        "hash": HashAddressPolicy,
    }
    try:
        cls = policies[name.lower()]
    except KeyError:
        raise ValueError(f"unknown cache policy {name!r}; "
                         f"expected one of {sorted(policies)}") from None
    return cls(**kwargs)
