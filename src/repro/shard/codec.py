"""Fixed-width binary codec for boundary records.

Boundary messages are ``(cut_link_name, deliver_time, FlowPacket)``
triples.  Pickling them per-object is what made the PR-8 pipes the
shard fabric's hot-path tax: every tuple paid a reduce call, a class
lookup, and two interned-string copies per packet.  This codec packs
each record into a fixed 41-byte ``struct`` layout instead:

====================  ====  ======================================
field                 wire  notes
====================  ====  ======================================
``link_id``           u32   interned cut-link name (table below)
``deliver_time``      f64   IEEE double — ``.hex()``-exact round trip
``flow_id``           i64   full signed 64-bit range
``seq``               i64   full signed 64-bit range
``src_id``            u32   interned node name
``dst_id``            u32   interned node name
``size_bytes``        u32
``ecn``               u8    bool flag
====================  ====  ======================================

The interning tables (:class:`CodecTables`) are pure functions of
``(structure, partition)`` — sorted node names, the partition's
name-sorted cut links — so every worker process derives identical
tables with no negotiation.  A *frame* is one round's deliveries for
one directed shard channel: a 5-byte header (kind, count) followed by
``count`` records in emission order.  Frames that contain anything the
fixed layout cannot represent (a non-``FlowPacket`` payload, an
out-of-range field) fall back to a pickled frame body — order still
preserved, correctness never traded for speed.

``frame_nbytes`` is the *logical* frame size (header + packed records)
used for transport telemetry; it is deliberately independent of which
encoding or transport actually carried the frame, so byte counts are
comparable across ``workers=1`` / shm / pipe runs.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Sequence, Tuple

from .fabric import FlowPacket
from .partition import Partition

__all__ = ["RECORD", "FRAME_HEADER", "KIND_PACKED", "KIND_PICKLED",
           "CodecTables", "packable", "pack_records", "unpack_records",
           "encode_frame", "decode_frame", "frame_nbytes"]

# link_id, deliver_time, flow_id, seq, src_id, dst_id, size_bytes, ecn
RECORD = struct.Struct("<IdqqIIIB")
FRAME_HEADER = struct.Struct("<BI")            # kind, record count
KIND_PACKED = 1
KIND_PICKLED = 2

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_U32_MAX = (1 << 32) - 1

# Messages on a channel: (cut_link_name, deliver_time, packet).
Message = Tuple[str, float, Any]


class CodecTables:
    """Name-interning tables shared by every shard of one scenario.

    ``node_id``/``node_names`` cover every node in the structure (sorted
    name order); ``link_id``/``link_names`` cover the partition's cut
    links (already name-sorted by construction).  Both are pure
    functions of their inputs, so independently-built tables in
    different processes always agree on every id.
    """

    __slots__ = ("node_names", "node_id", "link_names", "link_id")

    def __init__(self, structure, partition: Partition):
        nodes, _edges = structure
        self.node_names: Tuple[str, ...] = tuple(
            sorted(name for name, _role, _rack in nodes))
        self.node_id: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)}
        self.link_names: Tuple[str, ...] = tuple(
            cut.name for cut in partition.cut_links)
        self.link_id: Dict[str, int] = {
            name: i for i, name in enumerate(self.link_names)}


def packable(messages: Sequence[Message], tables: CodecTables) -> bool:
    """True if every message fits the fixed-width record layout."""
    node_id = tables.node_id
    for _name, _when, packet in messages:
        if type(packet) is not FlowPacket:
            return False
        if packet.src not in node_id or packet.dst not in node_id:
            return False
        if not (_I64_MIN <= packet.flow_id <= _I64_MAX):
            return False
        if not (_I64_MIN <= packet.seq <= _I64_MAX):
            return False
        if not (0 <= packet.size_bytes <= _U32_MAX):
            return False
    return True


def pack_records(messages: Sequence[Message], tables: CodecTables,
                 buf, offset: int) -> int:
    """Pack ``messages`` into ``buf`` at ``offset``; returns the end
    offset.  Callers must have verified :func:`packable` and capacity —
    this is the hot path, it does no checking of its own."""
    pack = RECORD.pack_into
    link_id = tables.link_id
    node_id = tables.node_id
    for name, when, packet in messages:
        pack(buf, offset, link_id[name], when, packet.flow_id, packet.seq,
             node_id[packet.src], node_id[packet.dst], packet.size_bytes,
             1 if packet.ecn else 0)
        offset += 41
    return offset


def unpack_records(view, offset: int, count: int,
                   tables: CodecTables) -> List[Message]:
    """Decode ``count`` records from ``view`` starting at ``offset``."""
    link_names = tables.link_names
    node_names = tables.node_names
    end = offset + count * RECORD.size
    return [(link_names[link], when,
             FlowPacket(flow_id, seq, node_names[src], node_names[dst],
                        size, ecn == 1))
            for link, when, flow_id, seq, src, dst, size, ecn
            in RECORD.iter_unpack(bytes(view[offset:end]))]


def encode_frame(messages: Sequence[Message],
                 tables: CodecTables) -> bytes:
    """One standalone frame: header + packed records (or a pickled body
    for non-conforming messages).  Used for spilled shm frames and by
    the codec test suite; the shm slots use the same record layout with
    their own slot header."""
    count = len(messages)
    if packable(messages, tables):
        buf = bytearray(FRAME_HEADER.size + count * RECORD.size)
        FRAME_HEADER.pack_into(buf, 0, KIND_PACKED, count)
        pack_records(messages, tables, buf, FRAME_HEADER.size)
        return bytes(buf)
    body = pickle.dumps(list(messages), protocol=pickle.HIGHEST_PROTOCOL)
    return FRAME_HEADER.pack(KIND_PICKLED, count) + body


def decode_frame(payload, tables: CodecTables) -> List[Message]:
    """Inverse of :func:`encode_frame`; preserves message order."""
    kind, count = FRAME_HEADER.unpack_from(payload, 0)
    if kind == KIND_PACKED:
        return unpack_records(payload, FRAME_HEADER.size, count, tables)
    if kind == KIND_PICKLED:
        return pickle.loads(bytes(payload[FRAME_HEADER.size:]))
    raise ValueError(f"unknown frame kind {kind}")


def frame_nbytes(count: int) -> int:
    """Logical frame size for telemetry: header plus ``count`` packed
    records, independent of the encoding/transport that carried it."""
    return FRAME_HEADER.size + count * RECORD.size
