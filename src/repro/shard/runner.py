"""Conservative time-synced execution of a partitioned fabric.

The protocol is bulk-synchronous null-message style (SimBricks' fixed
link-latency synchronization, specialized to rounds):

* The coordinator holds each shard's clock.  Every round it computes a
  per-shard *safe horizon*: the minimum over in-channels of the sending
  shard's clock plus the channel lookahead (the cut links' propagation
  delay), capped at the run's ``until``.  No sender can emit a boundary
  delivery below its own clock, and every boundary delivery lands at
  least one propagation delay after its emission — so no shard ever
  receives an event in its past (the proof is spelled out in DESIGN.md
  §4.9).
* Each shard injects the messages the previous round produced, runs to
  its horizon, and drains its egress outboxes.  Messages and horizons
  are exchanged over multiprocessing pipes (``workers>1``) or plain
  calls (``workers=1`` — no subprocess, byte-identical by construction
  since the protocol itself never branches on the worker count).
* When a whole round moves no messages, the shard clocks jump on the
  shards' *next-event times* instead (every report doubles as a null
  message): with nothing in flight, a neighbor cannot act before its
  own next event, so quiet phases cost one barrier instead of
  ``gap / lookahead`` of them.

Determinism: shard decomposition, per-shard seeds, channel order, and
injection order are all pure functions of ``(scenario, partition)``;
rounds are lockstep; merges walk sorted shard then sorted channel
order.  Hence ``workers=N`` is byte-identical to ``workers=1`` — same
per-shard event counts, same scheduler stats, same fingerprints — and
lossless scenarios are result-identical to the unsharded single
simulator (see ``results_identical``).
"""

from __future__ import annotations

import cProfile
import os
import random
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from multiprocessing import get_context
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.netsim import CompositeFault, NoLoss, Simulator
from repro.netsim.faults import LinkFault

from .fabric import ShardFabric, build_fabric, compute_routes
from .partition import Partition, PartitionError, partition_structure
from .spec import ShardScenario

__all__ = ["WORKERS_ENV", "default_workers", "ShardRunResult",
           "UnshardedRunResult", "run_sharded", "run_unsharded",
           "results_identical"]

WORKERS_ENV = "REPRO_SHARD_WORKERS"

# Messages on a channel: (cut_link_name, deliver_time, packet).
_Message = Tuple[str, float, Any]


def default_workers() -> int:
    env = os.environ.get(WORKERS_ENV)
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _shard_seed(seed: int, shard_id: int) -> int:
    # Distinct per-shard streams, pure function of (seed, shard).  The
    # RNG only feeds loss/fault draws, which are intra-shard by policy.
    return (seed * 1_000_003 + shard_id + 1) & 0x7FFFFFFF


def _fingerprint(flows: Dict[int, Tuple[int, int, float, float]],
                 links: Dict[str, Dict[str, float]]) -> str:
    """SHA-256 over repr-exact per-flow records and link counters —
    stable across processes, byte-sensitive to any timing change."""
    lines: List[str] = []
    for flow_id in sorted(flows):
        pkts, nbytes, first, last = flows[flow_id]
        lines.append(f"flow {flow_id} pkts={pkts} bytes={nbytes} "
                     f"first={float(first).hex()} "
                     f"last={float(last).hex()}")
    for name in sorted(links):
        counters = links[name]
        body = " ".join(f"{key}={counters[key]!r}"
                        for key in sorted(counters))
        lines.append(f"link {name} {body}")
    return sha256("\n".join(lines).encode()).hexdigest()


def _install_chaos(fabric: ShardFabric, scenario: ShardScenario,
                   shard_of: Optional[Dict[str, int]]) -> None:
    """Arm the scenario's link faults on the links this fabric owns.

    Only :class:`LinkFault` events are meaningful on the flow fabric,
    and every fault must be intra-shard — the boundary lookahead assumes
    un-jittered cut links, and cross-shard RNG draws would break the
    single-stream determinism story.
    """
    if scenario.chaos is None:
        return
    by_link: Dict[Tuple[str, str], List[LinkFault]] = {}
    for event in scenario.chaos.events:
        if not isinstance(event, LinkFault):
            raise PartitionError(
                f"shard fabric chaos supports link faults only, got "
                f"{type(event).__name__}")
        if shard_of is not None and \
                shard_of[event.src] != shard_of[event.dst]:
            raise PartitionError(
                f"chaos fault on cut link {event.src}->{event.dst}; "
                f"boundary links must stay lossless (they carry the "
                f"conservative lookahead)")
        by_link.setdefault((event.src, event.dst), []).append(event)
    for key, specs in by_link.items():
        link = fabric.topo.links.get(key)
        if link is None:
            continue                    # owned by another shard
        models = []
        if type(link.loss) is not NoLoss:
            models.append(link.loss)
        models.extend(spec.build() for spec in specs)
        link.loss = CompositeFault(models)
        # Per-link draw stream, a pure function of (scenario seed, link
        # name): the single-simulator reference interleaves every
        # faulted link through one global RNG, a sharded run cannot —
        # pinning one stream per link makes both draw identically.
        link.fault_rng = random.Random(
            (scenario.seed * 1_000_003
             + zlib.crc32(f"{key[0]}->{key[1]}".encode())) & 0x7FFFFFFF)


class _ShardWorker:
    """One shard's live state plus its round step; used verbatim by the
    in-process pool and inside subprocess workers."""

    def __init__(self, scenario: ShardScenario, partition: Partition,
                 shard_id: int, routes=None,
                 profile_path: Optional[str] = None):
        self.shard_id = shard_id
        self.sim = Simulator(seed=_shard_seed(scenario.seed, shard_id))
        shard_map = partition.shard_map()
        self.fabric = build_fabric(
            self.sim, scenario.structure, cal=scenario.cal,
            partition=partition, shard_id=shard_id, routes=routes)
        _install_chaos(self.fabric, scenario, shard_map)
        self.fabric.install_workload(scenario.flows)
        self.work_s = 0.0
        self.profile_path = profile_path
        self._profiler = cProfile.Profile() if profile_path else None

    def run_round(self, horizon: float, inbound: List[_Message]
                  ) -> Tuple[List[_Message], float]:
        start = perf_counter()
        profiler = self._profiler
        if profiler is not None:
            profiler.enable()
        try:
            ingress = self.fabric.ingress
            for link_name, when, packet in inbound:
                ingress[link_name].inject(when, packet)
            self.sim.run(until=horizon)
            out: List[_Message] = []
            egress = self.fabric.egress
            for name in self.fabric.egress_names:
                outbox = egress[name].outbox
                if outbox:
                    out.extend((name, when, packet)
                               for when, packet in outbox)
                    outbox.clear()
        finally:
            if profiler is not None:
                profiler.disable()
        self.work_s += perf_counter() - start
        return out, self.sim.peek()

    def finish(self) -> Dict[str, Any]:
        if self._profiler is not None:
            self._profiler.dump_stats(self.profile_path)
        return {
            "flows": self.fabric.flow_results(),
            "links": self.fabric.link_results(),
            "clock": self.sim.now,
            "events": self.sim._sequence,
            "scheduler_stats": self.sim.scheduler_stats(),
            "work_s": self.work_s,
            "profile": self.profile_path,
        }


# ---------------------------------------------------------------------------
# worker pools
# ---------------------------------------------------------------------------
class _InProcessPool:
    """``workers=1``: every shard lives in this process — no subprocess,
    no pickling, same protocol."""

    def __init__(self, scenario, partition, profile_for):
        routes = compute_routes(scenario.structure)
        self.workers = {
            sid: _ShardWorker(scenario, partition, sid, routes=routes,
                              profile_path=profile_for(sid))
            for sid in range(partition.n_shards)}

    def run_round(self, horizons, inbound):
        return {sid: self.workers[sid].run_round(horizons[sid],
                                                 inbound.get(sid, []))
                for sid in sorted(self.workers)}

    def finish(self):
        payloads = {sid: worker.finish()
                    for sid, worker in sorted(self.workers.items())}
        for payload in payloads.values():
            payload["barrier_wait_s"] = 0.0
        return payloads

    def close(self):
        pass


def _subprocess_main(conn, scenario, partition, shard_ids,
                     profile_paths) -> None:
    try:
        routes = compute_routes(scenario.structure)
        workers = {sid: _ShardWorker(scenario, partition, sid,
                                     routes=routes,
                                     profile_path=profile_paths.get(sid))
                   for sid in shard_ids}
        conn.send(("ready", None))
        barrier_wait = 0.0
        while True:
            wait_start = perf_counter()
            command, payload = conn.recv()
            barrier_wait += perf_counter() - wait_start
            if command == "round":
                out = {sid: workers[sid].run_round(*payload[sid])
                       for sid in sorted(payload)}
                conn.send(("round", out))
            elif command == "finish":
                results = {}
                for sid, worker in sorted(workers.items()):
                    result = worker.finish()
                    result["barrier_wait_s"] = barrier_wait
                    results[sid] = result
                conn.send(("finish", results))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {command!r}")
    except Exception as exc:  # pragma: no cover - crash reporting
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise


class _SubprocessPool:
    """``workers>1``: shards spread round-robin over forked workers,
    coordinated over one duplex pipe per worker.

    The strict send-all / recv-all alternation cannot deadlock: a
    worker blocked sending a large round result has a parent that will
    reach its ``recv``, and the parent only sends the next command
    after draining every worker's previous reply.
    """

    def __init__(self, scenario, partition, n_workers, profile_for):
        ctx = get_context("fork")
        self.owner = {sid: sid % n_workers
                      for sid in range(partition.n_shards)}
        self.conns = []
        self.procs = []
        for w in range(n_workers):
            mine = [sid for sid, owner in self.owner.items() if owner == w]
            parent_conn, child_conn = ctx.Pipe()
            profile_paths = {sid: profile_for(sid) for sid in mine}
            proc = ctx.Process(
                target=_subprocess_main,
                args=(child_conn, scenario, partition, mine,
                      profile_paths),
                daemon=True)
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)
        for conn in self.conns:
            self._expect(conn, "ready")

    @staticmethod
    def _expect(conn, kind):
        tag, payload = conn.recv()
        if tag == "error":
            raise RuntimeError(f"shard worker failed: {payload}")
        if tag != kind:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {kind!r}, got {tag!r}")
        return payload

    def run_round(self, horizons, inbound):
        for w, conn in enumerate(self.conns):
            payload = {sid: (horizons[sid], inbound.get(sid, []))
                       for sid, owner in self.owner.items() if owner == w}
            conn.send(("round", payload))
        merged = {}
        for conn in self.conns:
            merged.update(self._expect(conn, "round"))
        return merged

    def finish(self):
        for conn in self.conns:
            conn.send(("finish", None))
        merged = {}
        for conn in self.conns:
            merged.update(self._expect(conn, "finish"))
        return merged

    def close(self):
        for conn in self.conns:
            conn.close()
        for proc in self.procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class ShardRunResult:
    """Merged outcome of a sharded run plus its sync accounting."""

    flows: Dict[int, Tuple[int, int, float, float]]
    link_stats: Dict[str, Dict[str, float]]
    fingerprint: str
    chaos_fingerprint: Optional[str]
    n_shards: int
    workers: int
    rounds: int
    until: float
    shard_clocks: List[float]
    events_per_shard: List[int]
    scheduler_stats: List[Dict[str, float]]
    work_s: List[float]
    barrier_wait_s: List[float]
    wall_s: float
    profiles: List[Optional[str]] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        return sum(self.events_per_shard)

    @property
    def barriers_per_sec(self) -> float:
        return self.rounds / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    def comparable_state(self) -> Dict[str, Any]:
        """Everything that must be byte-identical across worker counts:
        results, fingerprints, per-shard event totals and scheduler
        stats, the barrier count, and the final clocks — all wall-time
        accounting excluded."""
        return {
            "flows": self.flows,
            "link_stats": self.link_stats,
            "fingerprint": self.fingerprint,
            "chaos_fingerprint": self.chaos_fingerprint,
            "n_shards": self.n_shards,
            "rounds": self.rounds,
            "shard_clocks": self.shard_clocks,
            "events_per_shard": self.events_per_shard,
            "scheduler_stats": self.scheduler_stats,
        }


@dataclass
class UnshardedRunResult:
    """Reference single-simulator run of the same scenario."""

    flows: Dict[int, Tuple[int, int, float, float]]
    link_stats: Dict[str, Dict[str, float]]
    fingerprint: str
    clock: float
    events: int
    scheduler_stats: Dict[str, float]
    wall_s: float


def results_identical(sharded: ShardRunResult,
                      unsharded: UnshardedRunResult) -> bool:
    """Result-level equality: same per-flow records, same (merged) link
    counters, same fingerprint.  Event *counts* are not compared here —
    the boundary stubs restructure events across simulators by design;
    count equality is asserted between worker counts instead."""
    return (sharded.flows == unsharded.flows
            and sharded.link_stats == unsharded.link_stats
            and sharded.fingerprint == unsharded.fingerprint)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def _coordinate(pool, partition: Partition, until: float
                ) -> Tuple[int, int]:
    """Run rounds until every clock reaches ``until`` and a full round
    moves no messages.  Returns (rounds, messages_relayed)."""
    n = partition.n_shards
    in_channels: Dict[int, List[Tuple[int, float]]] = {
        sid: [] for sid in range(n)}
    for (src_shard, dst_shard), bound in partition.lookahead:
        in_channels[dst_shard].append((src_shard, bound))
    link_dst_shard = {cut.name: cut.dst_shard
                      for cut in partition.cut_links}

    channel_bounds = [(src, dst, la)
                      for (src, dst), la in partition.lookahead]

    clocks = [0.0] * n
    peeks = [0.0] * n
    quiescent = False
    pending: Dict[int, List[_Message]] = {}
    rounds = 0
    relayed = 0
    while True:
        if quiescent:
            # Quiescent rounds promote each report to a null message:
            # with nothing in flight, shard s cannot act before its own
            # next event *or* a chain of cross-shard wakeups reaching
            # it — so relax the peek bounds over the channel graph
            # (Bellman-Ford; all lookaheads are positive) before using
            # them.  The single-hop bound alone is unsound here: a
            # two-hop chain q -> s -> r can wake s below its local peek.
            earliest = list(peeks)
            for _ in range(n):
                changed = False
                for src, dst, la in channel_bounds:
                    relaxed = earliest[src] + la
                    if relaxed < earliest[dst]:
                        earliest[dst] = relaxed
                        changed = True
                if not changed:
                    break
            bases = earliest
        else:
            bases = clocks
        horizons: List[float] = []
        for sid in range(n):
            bound = until
            for src, la in in_channels[sid]:
                if bases[src] + la < bound:
                    bound = bases[src] + la
            horizons.append(max(bound, clocks[sid]))
        results = pool.run_round(horizons, pending)
        rounds += 1
        clocks = horizons
        pending = {}
        moved = 0
        for sid in sorted(results):
            messages, peek = results[sid]
            peeks[sid] = peek
            for message in messages:
                pending.setdefault(link_dst_shard[message[0]],
                                   []).append(message)
                moved += 1
        relayed += moved
        quiescent = moved == 0
        if quiescent and all(clock >= until for clock in clocks):
            return rounds, relayed


def run_sharded(scenario: ShardScenario,
                partition: Optional[Partition] = None,
                n_shards: Optional[int] = None,
                workers: Optional[int] = None,
                profile_dir: Optional[str] = None) -> ShardRunResult:
    """Execute ``scenario`` sharded; ``workers=1`` stays in-process."""
    if partition is None:
        if n_shards is None:
            raise ValueError("pass a partition or n_shards")
        partition = partition_structure(scenario.structure, n_shards,
                                        cal=scenario.cal)
    if workers is None:
        workers = default_workers()
    workers = max(1, min(workers, partition.n_shards))

    def profile_for(sid: int) -> Optional[str]:
        if profile_dir is None:
            return None
        os.makedirs(profile_dir, exist_ok=True)
        return os.path.join(profile_dir, f"shard{sid}.prof")

    start = perf_counter()
    if workers == 1:
        pool = _InProcessPool(scenario, partition, profile_for)
    else:
        pool = _SubprocessPool(scenario, partition, workers, profile_for)
    try:
        rounds, _relayed = _coordinate(pool, partition, scenario.until)
        payloads = pool.finish()
    finally:
        pool.close()
    wall = perf_counter() - start

    flows: Dict[int, Tuple[int, int, float, float]] = {}
    links: Dict[str, Dict[str, float]] = {}
    for sid in sorted(payloads):
        payload = payloads[sid]
        flows.update(payload["flows"])
        for name, counters in payload["links"].items():
            # Cut links report one half from each side; key-wise sums
            # reproduce the unsharded link's counters.
            if name in links:
                merged = links[name]
                for key, value in counters.items():
                    merged[key] = merged.get(key, 0) + value
            else:
                links[name] = dict(counters)

    ordered = [payloads[sid] for sid in range(partition.n_shards)]
    return ShardRunResult(
        flows=flows,
        link_stats=links,
        fingerprint=_fingerprint(flows, links),
        chaos_fingerprint=scenario.chaos_fingerprint(),
        n_shards=partition.n_shards,
        workers=workers,
        rounds=rounds,
        until=scenario.until,
        shard_clocks=[p["clock"] for p in ordered],
        events_per_shard=[p["events"] for p in ordered],
        scheduler_stats=[p["scheduler_stats"] for p in ordered],
        work_s=[p["work_s"] for p in ordered],
        barrier_wait_s=[p["barrier_wait_s"] for p in ordered],
        wall_s=wall,
        profiles=[p.get("profile") for p in ordered])


def run_unsharded(scenario: ShardScenario) -> UnshardedRunResult:
    """The reference run: whole structure, one simulator, one core."""
    start = perf_counter()
    sim = Simulator(seed=scenario.seed)
    fabric = build_fabric(sim, scenario.structure, cal=scenario.cal)
    _install_chaos(fabric, scenario, shard_of=None)
    fabric.install_workload(scenario.flows)
    sim.run(until=scenario.until)
    wall = perf_counter() - start
    flows = fabric.flow_results()
    links = fabric.link_results()
    return UnshardedRunResult(
        flows=flows,
        link_stats=links,
        fingerprint=_fingerprint(flows, links),
        clock=sim.now,
        events=sim._sequence,
        scheduler_stats=sim.scheduler_stats(),
        wall_s=wall)
