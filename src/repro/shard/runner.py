"""Conservative time-synced execution of a partitioned fabric.

The protocol is conservative null-message style (SimBricks' fixed
link-latency synchronization, specialized to rounds) over a zero-copy
shard interconnect:

* The coordinator holds each shard's clock and, after every round, its
  *earliest-action bound*: nothing can happen in shard ``s`` before
  ``E_s = min(next local event, earliest pending boundary delivery)``,
  relaxed transitively over the channel graph (Bellman-Ford over
  positive lookaheads — a chain of cross-shard wakeups can reach ``s``
  below its local bound).  Each round, shard ``s`` advances to
  ``H_s = max(clock_s, min(until, min over in-channels (E_src + L)))``.
  Because the bounds are *action* times, not clocks, a single barrier
  can prove many lookahead windows safe at once: quiet phases and
  far-future traffic cost one barrier instead of ``gap / L`` of them
  (the adaptive multi-round horizon; soundness in DESIGN.md §4.10).
* Each shard injects the messages the previous round produced, runs to
  its horizon, and drains its egress outboxes into one *frame* per
  out-channel.  With ``workers>1`` frames travel through per-channel
  shared-memory slots (`repro.shard.transport`) packed by the binary
  codec (`repro.shard.codec`) — no pickle on the hot path — while the
  pipes carry only tiny control words (horizons, peeks, per-channel
  counts and earliest-delivery bounds).  ``REPRO_SHARD_TRANSPORT=pipe``
  selects the pickled-pipe fallback; ``workers=1`` stays in-process
  with plain calls.  All three paths run the identical protocol.

Determinism: shard decomposition, per-shard seeds, channel order, and
injection order are all pure functions of ``(scenario, partition)``;
rounds are lockstep; frames preserve per-channel emission order and
are injected in ascending source-shard order.  Hence ``workers=N`` is
byte-identical to ``workers=1`` under *either* transport — same
per-shard event counts, same scheduler stats, same fingerprints, same
frame/byte telemetry — and lossless scenarios are result-identical to
the unsharded single simulator (see ``results_identical``).
"""

from __future__ import annotations

import cProfile
import os
import random
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from multiprocessing import get_context
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.netsim import CompositeFault, NoLoss, Simulator
from repro.netsim.faults import LinkFault
from repro.obs.capture import ShardCapture, ShardObs, capture_shards
from repro.obs.registry import MetricsRegistry, keep_registries
from repro.obs.tracer import TRACE

from .codec import CodecTables, decode_frame, encode_frame, frame_nbytes
from .fabric import ShardFabric, build_fabric, compute_routes
from .partition import Partition, PartitionError, partition_structure
from .spec import ShardScenario
from .transport import ShmChannelBus, default_transport

__all__ = ["WORKERS_ENV", "default_workers", "ShardRunResult",
           "UnshardedRunResult", "run_sharded", "run_unsharded",
           "results_identical"]

WORKERS_ENV = "REPRO_SHARD_WORKERS"

# Messages on a channel: (cut_link_name, deliver_time, packet).
_Message = Tuple[str, float, Any]

_INF = float("inf")


def default_workers() -> int:
    env = os.environ.get(WORKERS_ENV)
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _shard_seed(seed: int, shard_id: int) -> int:
    # Distinct per-shard streams, pure function of (seed, shard).  The
    # RNG only feeds loss/fault draws, which are intra-shard by policy.
    return (seed * 1_000_003 + shard_id + 1) & 0x7FFFFFFF


def _fingerprint(flows: Dict[int, Tuple[int, int, float, float]],
                 links: Dict[str, Dict[str, float]]) -> str:
    """SHA-256 over repr-exact per-flow records and link counters —
    stable across processes, byte-sensitive to any timing change."""
    lines: List[str] = []
    for flow_id in sorted(flows):
        pkts, nbytes, first, last = flows[flow_id]
        lines.append(f"flow {flow_id} pkts={pkts} bytes={nbytes} "
                     f"first={float(first).hex()} "
                     f"last={float(last).hex()}")
    for name in sorted(links):
        counters = links[name]
        body = " ".join(f"{key}={counters[key]!r}"
                        for key in sorted(counters))
        lines.append(f"link {name} {body}")
    return sha256("\n".join(lines).encode()).hexdigest()


def _install_chaos(fabric: ShardFabric, scenario: ShardScenario,
                   shard_of: Optional[Dict[str, int]]) -> None:
    """Arm the scenario's link faults on the links this fabric owns.

    Only :class:`LinkFault` events are meaningful on the flow fabric,
    and every fault must be intra-shard — the boundary lookahead assumes
    un-jittered cut links, and cross-shard RNG draws would break the
    single-stream determinism story.
    """
    if scenario.chaos is None:
        return
    by_link: Dict[Tuple[str, str], List[LinkFault]] = {}
    for event in scenario.chaos.events:
        if not isinstance(event, LinkFault):
            raise PartitionError(
                f"shard fabric chaos supports link faults only, got "
                f"{type(event).__name__}")
        if shard_of is not None and \
                shard_of[event.src] != shard_of[event.dst]:
            raise PartitionError(
                f"chaos fault on cut link {event.src}->{event.dst}; "
                f"boundary links must stay lossless (they carry the "
                f"conservative lookahead)")
        by_link.setdefault((event.src, event.dst), []).append(event)
    for key, specs in by_link.items():
        link = fabric.topo.links.get(key)
        if link is None:
            continue                    # owned by another shard
        models = []
        if type(link.loss) is not NoLoss:
            models.append(link.loss)
        models.extend(spec.build() for spec in specs)
        link.loss = CompositeFault(models)
        # Per-link draw stream, a pure function of (scenario seed, link
        # name): the single-simulator reference interleaves every
        # faulted link through one global RNG, a sharded run cannot —
        # pinning one stream per link makes both draw identically.
        link.fault_rng = random.Random(
            (scenario.seed * 1_000_003
             + zlib.crc32(f"{key[0]}->{key[1]}".encode())) & 0x7FFFFFFF)


class _ChannelMap:
    """Channel ids and per-shard adjacency, identical in every process
    (pure function of the partition's sorted channel table)."""

    def __init__(self, partition: Partition):
        pairs = [pair for pair, _links in partition.channels]
        self.pairs: Tuple[Tuple[int, int], ...] = tuple(pairs)
        self.chan_id: Dict[Tuple[int, int], int] = {
            pair: i for i, pair in enumerate(pairs)}
        self.dst_of: Dict[int, int] = {
            i: pair[1] for i, pair in enumerate(pairs)}
        # in_channels[sid]: [(src_shard, channel_id)] ascending by src —
        # the injection order every pool reproduces.
        self.in_channels: Dict[int, List[Tuple[int, int]]] = {}
        # out_chan[sid]: dst_shard -> channel_id
        self.out_chan: Dict[int, Dict[int, int]] = {}
        for i, (src, dst) in enumerate(pairs):
            self.in_channels.setdefault(dst, []).append((src, i))
            self.out_chan.setdefault(src, {})[dst] = i
        for chans in self.in_channels.values():
            chans.sort()


class _ShardWorker:
    """One shard's live state plus its round step; used verbatim by the
    in-process pool and inside subprocess workers."""

    def __init__(self, scenario: ShardScenario, partition: Partition,
                 shard_id: int, routes=None,
                 profile_path: Optional[str] = None,
                 capture: bool = False):
        self.shard_id = shard_id
        self.sim = Simulator(seed=_shard_seed(scenario.seed, shard_id))
        # The simulator just opened a tracer epoch if tracing is armed;
        # that epoch is this shard's lane in the process-local ring —
        # capture_shards() rewrites it to the stable merged-trace pid.
        self.trace_epoch = TRACE.epoch if TRACE.enabled else 0
        shard_map = partition.shard_map()
        self.fabric = build_fabric(
            self.sim, scenario.structure, cal=scenario.cal,
            partition=partition, shard_id=shard_id, routes=routes)
        _install_chaos(self.fabric, scenario, shard_map)
        self.fabric.install_workload(scenario.flows)
        self.work_s = 0.0
        self.frames_sent = 0
        self.frame_bytes = 0
        self.profile_path = profile_path
        self._profiler = cProfile.Profile() if profile_path else None
        self.registry: Optional[MetricsRegistry] = None
        self.obs_sync: Dict[str, Any] = {}
        if capture:
            # Observe-only registration: every entry is a bound method
            # or plain dict, so MetricsRegistry._apply_state finds no
            # enable()/disable() to call — arming capture cannot flip
            # any instrument's enabled state (that would change link
            # counters and break traced-vs-untraced bit-identity).
            registry = MetricsRegistry(f"shard{shard_id}")
            registry.register("scheduler", self.sim.scheduler_stats,
                              snapshot=lambda fn: dict(fn()))
            for name in self.fabric.egress_names:
                registry.register(
                    f"egress.{name}",
                    self.fabric.egress[name].stats.as_dict,
                    snapshot=lambda fn: dict(fn()))
            for name in sorted(self.fabric.ingress):
                registry.register(
                    f"ingress.{name}",
                    self.fabric.ingress[name].stats.as_dict,
                    snapshot=lambda fn: dict(fn()))
            # Deterministic sync summary only (simulated clock, event
            # and frame counts) — wall-time accounting stays out so a
            # capture is byte-equal across pools and transports.
            registry.register("sync", self.obs_sync)
            self.registry = registry

    def run_round(self, horizon: float, inbound: List[_Message]
                  ) -> Tuple[Dict[int, List[_Message]], float,
                             Dict[int, Tuple[int, float]]]:
        """Inject, run to ``horizon``, drain.  Returns the per-channel
        outbound groups, the post-run ``peek``, and the control meta
        ``{dst_shard: (count, earliest deliver time)}`` the coordinator
        steers adaptive horizons with."""
        start = perf_counter()
        profiler = self._profiler
        if profiler is not None:
            profiler.enable()
        if self.trace_epoch and TRACE.enabled:
            # Unlike sequential single-sim runs, a pool interleaves
            # live simulators in one process — restore this shard's
            # epoch so its records land in its own lane.  Pure record
            # stamping; no simulator state involved.
            TRACE.epoch = self.trace_epoch
        try:
            if inbound:
                ingress = self.fabric.ingress
                for link_name, when, packet in inbound:
                    ingress[link_name].inject(when, packet)
            self.sim.run(until=horizon)
            outmap = self.fabric.drain_boundary()
            meta: Dict[int, Tuple[int, float]] = {}
            if outmap:
                for dst, messages in outmap.items():
                    count = len(messages)
                    meta[dst] = (count,
                                 min(record[1] for record in messages))
                    self.frames_sent += 1
                    self.frame_bytes += frame_nbytes(count)
        finally:
            if profiler is not None:
                profiler.disable()
        self.work_s += perf_counter() - start
        return outmap, self.sim.peek(), meta

    def finish(self) -> Dict[str, Any]:
        if self._profiler is not None:
            self._profiler.dump_stats(self.profile_path)
        if self.registry is not None:
            self.obs_sync.update(
                clock_s=self.sim.now, events=self.sim._sequence,
                frames_sent=self.frames_sent,
                frame_bytes=self.frame_bytes)
        return {
            "flows": self.fabric.flow_results(),
            "links": self.fabric.link_results(),
            "clock": self.sim.now,
            "events": self.sim._sequence,
            "scheduler_stats": self.sim.scheduler_stats(),
            "work_s": self.work_s,
            "frames_sent": self.frames_sent,
            "frame_bytes": self.frame_bytes,
            "profile": self.profile_path,
        }


# ---------------------------------------------------------------------------
# worker pools
# ---------------------------------------------------------------------------
class _InProcessPool:
    """``workers=1``: every shard lives in this process — no subprocess,
    no serialization, same protocol, same per-channel frame accounting."""

    transport = "inproc"
    shm_spills = 0

    def __init__(self, scenario, partition, profile_for,
                 capture: bool = False):
        routes = compute_routes(scenario.structure)
        self.capture = capture
        self.workers = {
            sid: _ShardWorker(scenario, partition, sid, routes=routes,
                              profile_path=profile_for(sid),
                              capture=capture)
            for sid in range(partition.n_shards)}
        self._order = sorted(self.workers)
        self._inboxes: Dict[int, List[_Message]] = {
            sid: [] for sid in self.workers}

    def run_round(self, horizons):
        reports = {}
        inboxes = self._inboxes
        routed: Dict[int, List[_Message]] = {sid: []
                                             for sid in self._order}
        # Ascending shard order: a destination's inbox concatenates its
        # sources' frames lowest source first — the same order the shm
        # readers walk their in-channels.
        for sid in self._order:
            outmap, peek, meta = self.workers[sid].run_round(
                horizons[sid], inboxes[sid])
            reports[sid] = (peek, meta)
            if outmap:
                for dst, messages in outmap.items():
                    routed[dst].extend(messages)
        self._inboxes = routed
        return reports

    def finish(self):
        payloads = {sid: worker.finish()
                    for sid, worker in sorted(self.workers.items())}
        for payload in payloads.values():
            payload["barrier_wait_s"] = 0.0
        if self.capture:
            _attach_captures(self.workers, payloads)
        return payloads

    def close(self):
        pass


def _attach_captures(workers: Dict[int, _ShardWorker],
                     payloads: Dict[int, Dict[str, Any]]) -> None:
    """Bucket this process's tracer ring into per-shard captures and
    attach the wire form to each shard's finish payload.  Used both by
    the in-process pool (one shared ring, every shard) and inside each
    forked worker (its own ring, its resident shards) — the capture a
    shard ships is byte-identical either way."""
    metrics = {sid: worker.registry.snapshot_nested()
               for sid, worker in workers.items()
               if worker.registry is not None}
    captures = capture_shards(
        {sid: worker.trace_epoch for sid, worker in workers.items()},
        TRACE, metrics)
    for sid, cap in captures.items():
        payloads[sid]["obs"] = cap.to_wire()


def _subprocess_main(conn, scenario, partition, shard_ids,
                     profile_paths, transport, bus, capture,
                     trace_capacity) -> None:
    try:
        if capture:
            # Fork inherited the parent's armed recorder *and* a copy
            # of its buffer — restart for a clean per-worker ring (and
            # drop inherited registry collection) before any simulator
            # opens an epoch, so only this worker's shards record here.
            TRACE.clear()
            keep_registries(False)
            TRACE.start(trace_capacity)
        routes = compute_routes(scenario.structure)
        workers = {sid: _ShardWorker(scenario, partition, sid,
                                     routes=routes,
                                     profile_path=profile_paths.get(sid),
                                     capture=capture)
                   for sid in shard_ids}
        shm = transport == "shm"
        tables = CodecTables(scenario.structure, partition) if shm \
            else None
        channels = _ChannelMap(partition)
        conn.send(("ready", None))
        # Per-shard idle accounting: everything between one shard's
        # round work ending and its next round work starting — pipe
        # waits plus co-resident shards' run time — is that shard's
        # barrier wait.  (PR 8 charged the whole worker's pipe wait to
        # every shard it hosted, which is why BENCH_simcore.json showed
        # shards 4-7 repeating shards 0-3's values.)
        last_end = {sid: perf_counter() for sid in shard_ids}
        idle = {sid: 0.0 for sid in shard_ids}
        round_no = 0
        while True:
            command, payload = conn.recv()
            if command == "round":
                round_no += 1
                out = {}
                for sid in sorted(payload):
                    horizon, extra = payload[sid]
                    if shm:
                        inbound: List[_Message] = []
                        for _src, chan in channels.in_channels.get(sid,
                                                                   ()):
                            messages = bus.read_frame(chan, round_no - 1,
                                                      tables)
                            if messages is None and chan in extra:
                                messages = decode_frame(extra[chan],
                                                        tables)
                            if messages:
                                inbound.extend(messages)
                    else:
                        inbound = extra
                    start = perf_counter()
                    idle[sid] += start - last_end[sid]
                    outmap, peek, meta = workers[sid].run_round(horizon,
                                                                inbound)
                    last_end[sid] = perf_counter()
                    if shm:
                        out_chan = channels.out_chan.get(sid, {})
                        spills = {}
                        for dst, messages in outmap.items():
                            chan = out_chan[dst]
                            if not bus.write_frame(chan, round_no,
                                                   messages, tables):
                                spills[chan] = encode_frame(messages,
                                                            tables)
                        out[sid] = (peek, meta, spills)
                    else:
                        out[sid] = (peek, meta, outmap)
                conn.send(("round", out))
            elif command == "finish":
                results = {}
                for sid, worker in sorted(workers.items()):
                    result = worker.finish()
                    result["barrier_wait_s"] = idle[sid]
                    results[sid] = result
                if capture:
                    _attach_captures(workers, results)
                conn.send(("finish", results))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {command!r}")
    except Exception as exc:  # pragma: no cover - crash reporting
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
    finally:
        if bus is not None:
            bus.close()


class _SubprocessPool:
    """``workers>1``: shards spread round-robin over forked workers.

    Frames travel worker-to-worker through the shared-memory channel
    bus (created *before* forking, so children inherit the mapping);
    the duplex pipes carry control words — horizons and spilled frames
    down, peeks / per-channel meta / spills up.  With
    ``transport="pipe"`` the frames ride the pipes too (pickled), as
    the PR-8 fallback path.  The strict send-all / recv-all alternation
    cannot deadlock: a worker blocked sending a round reply has a
    parent that will reach its ``recv``, and the parent only sends the
    next command after draining every worker's previous reply.
    """

    def __init__(self, scenario, partition, n_workers, profile_for,
                 transport, capture: bool = False):
        ctx = get_context("fork")
        self.channels = _ChannelMap(partition)
        self.transport = transport
        self.bus = None
        if transport == "shm":
            try:
                self.bus = ShmChannelBus(len(self.channels.pairs))
            except OSError:            # no POSIX shm on this box
                self.transport = transport = "pipe"
        self.owner = {sid: sid % n_workers
                      for sid in range(partition.n_shards)}
        self.conns = []
        self.procs = []
        self.round_no = 0
        self.shm_spills = 0
        self._spills: Dict[int, bytes] = {}          # chan -> frame
        self._inbound: Dict[int, List[_Message]] = {
            sid: [] for sid in self.owner}
        for w in range(n_workers):
            mine = [sid for sid, owner in self.owner.items() if owner == w]
            parent_conn, child_conn = ctx.Pipe()
            profile_paths = {sid: profile_for(sid) for sid in mine}
            proc = ctx.Process(
                target=_subprocess_main,
                args=(child_conn, scenario, partition, mine,
                      profile_paths, transport, self.bus, capture,
                      TRACE.capacity),
                daemon=True)
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)
        for conn in self.conns:
            self._expect(conn, "ready")

    @staticmethod
    def _expect(conn, kind):
        tag, payload = conn.recv()
        if tag == "error":
            raise RuntimeError(f"shard worker failed: {payload}")
        if tag != kind:  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected {kind!r}, got {tag!r}")
        return payload

    def run_round(self, horizons):
        self.round_no += 1
        shm = self.transport == "shm"
        dst_of = self.channels.dst_of
        for w, conn in enumerate(self.conns):
            payload = {}
            for sid, owner in self.owner.items():
                if owner != w:
                    continue
                if shm:
                    extra = {chan: frame
                             for chan, frame in self._spills.items()
                             if dst_of[chan] == sid}
                else:
                    extra = self._inbound[sid]
                payload[sid] = (horizons[sid], extra)
            conn.send(("round", payload))
        merged = {}
        for conn in self.conns:
            merged.update(self._expect(conn, "round"))
        reports = {}
        new_spills: Dict[int, bytes] = {}
        new_inbound: Dict[int, List[_Message]] = {
            sid: [] for sid in self.owner}
        for sid in sorted(merged):
            peek, meta, extra = merged[sid]
            reports[sid] = (peek, meta)
            if shm:
                for chan, frame in extra.items():
                    new_spills[chan] = frame
                    self.shm_spills += 1
            else:
                for dst, messages in extra.items():
                    new_inbound[dst].extend(messages)
        self._spills = new_spills
        self._inbound = new_inbound
        return reports

    def finish(self):
        for conn in self.conns:
            conn.send(("finish", None))
        merged = {}
        for conn in self.conns:
            merged.update(self._expect(conn, "finish"))
        return merged

    def close(self):
        for conn in self.conns:
            conn.close()
        for proc in self.procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        if self.bus is not None:
            self.bus.close()
            self.bus.unlink()
            self.bus = None


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass
class ShardRunResult:
    """Merged outcome of a sharded run plus its sync accounting."""

    flows: Dict[int, Tuple[int, int, float, float]]
    link_stats: Dict[str, Dict[str, float]]
    fingerprint: str
    chaos_fingerprint: Optional[str]
    n_shards: int
    workers: int
    rounds: int
    until: float
    shard_clocks: List[float]
    events_per_shard: List[int]
    scheduler_stats: List[Dict[str, float]]
    work_s: List[float]
    barrier_wait_s: List[float]
    wall_s: float
    transport: str = "inproc"
    messages_relayed: int = 0
    frames_sent: int = 0
    transport_bytes: int = 0
    horizon_rounds_skipped: int = 0
    shm_spills: int = 0
    profiles: List[Optional[str]] = field(default_factory=list)
    # Observability side-band: the per-shard scheduler/sync metrics
    # namespace (always present) and, when the run executed with the
    # flight recorder armed, the merged-trace input (worker captures +
    # coordinator round telemetry).  Excluded from comparisons — they
    # describe the run, they are not part of its result.
    registry: Optional[MetricsRegistry] = field(
        default=None, repr=False, compare=False)
    obs: Optional[ShardObs] = field(
        default=None, repr=False, compare=False)

    @property
    def total_events(self) -> int:
        return sum(self.events_per_shard)

    @property
    def barriers_per_sec(self) -> float:
        return self.rounds / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def bytes_per_round(self) -> float:
        """Logical transport payload per barrier (codec frame bytes)."""
        return self.transport_bytes / self.rounds if self.rounds else 0.0

    @property
    def barriers_per_sim_sec(self) -> float:
        """Synchronization density: barriers per simulated second."""
        return self.rounds / self.until if self.until > 0 else 0.0

    def comparable_state(self) -> Dict[str, Any]:
        """Everything that must be byte-identical across worker counts
        *and* transports: results, fingerprints, per-shard event totals
        and scheduler stats, the barrier count, the final clocks, and
        the logical transport telemetry — all wall-time accounting
        excluded."""
        return {
            "flows": self.flows,
            "link_stats": self.link_stats,
            "fingerprint": self.fingerprint,
            "chaos_fingerprint": self.chaos_fingerprint,
            "n_shards": self.n_shards,
            "rounds": self.rounds,
            "shard_clocks": self.shard_clocks,
            "events_per_shard": self.events_per_shard,
            "scheduler_stats": self.scheduler_stats,
            "messages_relayed": self.messages_relayed,
            "frames_sent": self.frames_sent,
            "transport_bytes": self.transport_bytes,
            "horizon_rounds_skipped": self.horizon_rounds_skipped,
        }


@dataclass
class UnshardedRunResult:
    """Reference single-simulator run of the same scenario."""

    flows: Dict[int, Tuple[int, int, float, float]]
    link_stats: Dict[str, Dict[str, float]]
    fingerprint: str
    clock: float
    events: int
    scheduler_stats: Dict[str, float]
    wall_s: float


def results_identical(sharded: ShardRunResult,
                      unsharded: UnshardedRunResult) -> bool:
    """Result-level equality: same per-flow records, same (merged) link
    counters, same fingerprint.  Event *counts* are not compared here —
    the boundary stubs restructure events across simulators by design;
    count equality is asserted between worker counts instead."""
    return (sharded.flows == unsharded.flows
            and sharded.link_stats == unsharded.link_stats
            and sharded.fingerprint == unsharded.fingerprint)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def _coordinate(pool, partition: Partition, until: float,
                log: Optional[List[Dict[str, Any]]] = None
                ) -> Tuple[int, int, int]:
    """Run rounds until every clock reaches ``until`` and a full round
    moves no messages.  Returns (rounds, messages_relayed,
    horizon_rounds_skipped).  When ``log`` is given (traced runs), one
    telemetry dict per round is appended — the coordinator-side view
    (pre-round clocks, granted horizons, relaxed earliest-action bases,
    frame/byte traffic, cumulative skips and spills) that the merge
    exporter turns into barrier spans and counter tracks.

    Horizons are *adaptive*: shard ``s`` cannot act before
    ``E_s = min(peek_s, earliest pending boundary delivery to s)``,
    and a chain of cross-shard wakeups cannot reach it earlier than the
    Bellman-Ford fixed point of ``E_s = min(E_s, min_q (E_q + L_qs))``
    (all lookaheads positive, so <= n passes converge).  Any future
    boundary delivery into ``dst`` is then ``>= E_src + L``, so one
    barrier may advance ``dst`` through every lookahead window below
    that bound — ``k`` quiet windows cost one barrier, not ``k``.
    PR 8's quiescent-round promotion is the special case with nothing
    in flight; carrying the pending-delivery bounds in the control
    words makes it sound on *every* round.
    """
    n = partition.n_shards
    shard_range = range(n)
    in_channels: List[List[Tuple[int, float]]] = [[] for _ in shard_range]
    for (src_shard, dst_shard), bound in partition.lookahead:
        in_channels[dst_shard].append((src_shard, bound))

    channel_bounds = [(src, dst, la)
                      for (src, dst), la in partition.lookahead]
    min_la = partition.min_lookahead
    track_skips = 0.0 < min_la < _INF

    clocks = [0.0] * n
    peeks = [0.0] * n
    inbound_min = [_INF] * n
    rounds = 0
    relayed = 0
    skipped = 0
    while True:
        # Earliest-action bounds, relaxed over the channel graph.
        bases = [peek if peek < pending else pending
                 for peek, pending in zip(peeks, inbound_min)]
        for _ in shard_range:
            changed = False
            for src, dst, la in channel_bounds:
                relaxed = bases[src] + la
                if relaxed < bases[dst]:
                    bases[dst] = relaxed
                    changed = True
            if not changed:
                break
        horizons: List[float] = []
        for sid in shard_range:
            bound = until
            for src, la in in_channels[sid]:
                relaxed = bases[src] + la
                if relaxed < bound:
                    bound = relaxed
            clock = clocks[sid]
            horizons.append(bound if bound > clock else clock)
        if rounds and track_skips:
            # Telemetry: windows this barrier proved safe beyond the
            # single-window BSP advance (0 when any shard moved by just
            # one lookahead; pure arithmetic, so identical across
            # pools and transports).
            least = _INF
            for horizon, clock in zip(horizons, clocks):
                advance = horizon - clock
                if 0.0 < advance < least:
                    least = advance
            if least < _INF and least > min_la:
                extra = int(least / min_la) - 1
                if extra > 0:
                    skipped += extra
        reports = pool.run_round(horizons)
        rounds += 1
        prev_clocks = clocks
        clocks = horizons
        inbound_min = [_INF] * n
        moved = 0
        # Order-free merge: peek assignment is per-shard, the pending
        # minima commute.
        for sid, (peek, meta) in reports.items():
            peeks[sid] = peek
            for dst, (count, earliest) in meta.items():
                moved += count
                if earliest < inbound_min[dst]:
                    inbound_min[dst] = earliest
        relayed += moved
        if log is not None:
            frames = 0
            frame_bytes = 0
            for _sid, (_peek, meta) in reports.items():
                frames += len(meta)
                for count, _earliest in meta.values():
                    frame_bytes += frame_nbytes(count)
            log.append({
                "round": rounds,
                "clocks": list(prev_clocks),
                "horizons": list(horizons),
                "bases": [base if base < _INF else None
                          for base in bases],
                "moved": moved,
                "frames": frames,
                "bytes": frame_bytes,
                "skipped": skipped,
                "spills": getattr(pool, "shm_spills", 0),
            })
        if moved == 0 and all(clock >= until for clock in clocks):
            return rounds, relayed, skipped


def run_sharded(scenario: ShardScenario,
                partition: Optional[Partition] = None,
                n_shards: Optional[int] = None,
                workers: Optional[int] = None,
                transport: Optional[str] = None,
                profile_dir: Optional[str] = None) -> ShardRunResult:
    """Execute ``scenario`` sharded; ``workers=1`` stays in-process.

    ``transport`` picks the ``workers>1`` interconnect: ``"shm"``
    (zero-copy shared-memory frames, the default) or ``"pipe"`` (the
    pickled-pipe fallback); unset, ``$REPRO_SHARD_TRANSPORT`` decides.
    Results are bit-identical either way.
    """
    if partition is None:
        if n_shards is None:
            raise ValueError("pass a partition or n_shards")
        partition = partition_structure(scenario.structure, n_shards,
                                        cal=scenario.cal)
    if workers is None:
        workers = default_workers()
    workers = max(1, min(workers, partition.n_shards))

    def profile_for(sid: int) -> Optional[str]:
        if profile_dir is None:
            return None
        os.makedirs(profile_dir, exist_ok=True)
        return os.path.join(profile_dir, f"shard{sid}.prof")

    # Distributed capture piggybacks on the armed process-wide recorder:
    # a traced run (TRACE armed by the caller) makes every worker arm
    # its own ring and ship per-shard captures home at finish.
    capture = TRACE.enabled

    start = perf_counter()
    if workers == 1:
        pool = _InProcessPool(scenario, partition, profile_for, capture)
    else:
        pool = _SubprocessPool(scenario, partition, workers, profile_for,
                               transport or default_transport(), capture)
    try:
        rounds_log: Optional[List[Dict[str, Any]]] = \
            [] if capture else None
        rounds, relayed, skipped = _coordinate(pool, partition,
                                               scenario.until,
                                               log=rounds_log)
        payloads = pool.finish()
    finally:
        pool.close()
    wall = perf_counter() - start

    flows: Dict[int, Tuple[int, int, float, float]] = {}
    links: Dict[str, Dict[str, float]] = {}
    for sid in sorted(payloads):
        payload = payloads[sid]
        flows.update(payload["flows"])
        for name, counters in payload["links"].items():
            # Cut links report one half from each side; key-wise sums
            # reproduce the unsharded link's counters.
            if name in links:
                merged = links[name]
                for key, value in counters.items():
                    merged[key] = merged.get(key, 0) + value
            else:
                links[name] = dict(counters)

    ordered = [payloads[sid] for sid in range(partition.n_shards)]

    transport_totals: Dict[str, Any] = {
        "transport": pool.transport,
        "workers": workers,
        "rounds": rounds,
        "messages_relayed": relayed,
        "frames_sent": sum(p["frames_sent"] for p in ordered),
        "transport_bytes": sum(p["frame_bytes"] for p in ordered),
        "shm_spills": pool.shm_spills,
        "horizon_rounds_skipped": skipped,
    }
    # The sharded-run metrics namespace (always built, traced or not):
    # per-shard scheduler stats and barrier-wait accounting become
    # first-class registry entries so export_jsonl / snapshot-diff
    # cover sharded runs like any single-simulator deployment.
    registry = MetricsRegistry("shard-run")
    for sid, payload in enumerate(ordered):
        registry.register(f"shard{sid}.scheduler",
                          dict(payload["scheduler_stats"]))
        registry.register(f"shard{sid}.sync", {
            "clock_s": payload["clock"],
            "events": payload["events"],
            "work_s": payload["work_s"],
            "barrier_wait_s": payload["barrier_wait_s"],
            "frames_sent": payload["frames_sent"],
            "frame_bytes": payload["frame_bytes"]})
    registry.register("transport", transport_totals)

    obs: Optional[ShardObs] = None
    if capture:
        captures: Dict[int, ShardCapture] = {}
        for sid, payload in enumerate(ordered):
            wire = payload.get("obs")
            if wire is not None:
                captures[sid] = ShardCapture.from_wire(wire)
        obs = ShardObs(
            captures=captures,
            rounds=rounds_log or [],
            shards={sid: {"events": payload["events"],
                          "clock_s": payload["clock"],
                          "work_s": payload["work_s"],
                          "barrier_wait_s": payload["barrier_wait_s"]}
                    for sid, payload in enumerate(ordered)},
            transport=dict(transport_totals))

    return ShardRunResult(
        flows=flows,
        link_stats=links,
        fingerprint=_fingerprint(flows, links),
        chaos_fingerprint=scenario.chaos_fingerprint(),
        n_shards=partition.n_shards,
        workers=workers,
        rounds=rounds,
        until=scenario.until,
        shard_clocks=[p["clock"] for p in ordered],
        events_per_shard=[p["events"] for p in ordered],
        scheduler_stats=[p["scheduler_stats"] for p in ordered],
        work_s=[p["work_s"] for p in ordered],
        barrier_wait_s=[p["barrier_wait_s"] for p in ordered],
        wall_s=wall,
        transport=pool.transport,
        messages_relayed=relayed,
        frames_sent=sum(p["frames_sent"] for p in ordered),
        transport_bytes=sum(p["frame_bytes"] for p in ordered),
        horizon_rounds_skipped=skipped,
        shm_spills=pool.shm_spills,
        profiles=[p.get("profile") for p in ordered],
        registry=registry,
        obs=obs)


def run_unsharded(scenario: ShardScenario) -> UnshardedRunResult:
    """The reference run: whole structure, one simulator, one core."""
    start = perf_counter()
    sim = Simulator(seed=scenario.seed)
    fabric = build_fabric(sim, scenario.structure, cal=scenario.cal)
    _install_chaos(fabric, scenario, shard_of=None)
    fabric.install_workload(scenario.flows)
    sim.run(until=scenario.until)
    wall = perf_counter() - start
    flows = fabric.flow_results()
    links = fabric.link_results()
    return UnshardedRunResult(
        flows=flows,
        link_stats=links,
        fingerprint=_fingerprint(flows, links),
        clock=sim.now,
        events=sim._sequence,
        scheduler_stats=sim.scheduler_stats(),
        wall_s=wall)
