"""Sharded multi-core co-simulation (DESIGN.md §4.9).

Partition a topology at link boundaries into per-rack
:class:`~repro.netsim.simulator.Simulator` instances, run them in
parallel worker processes, and exchange cross-shard packets under a
conservative lookahead equal to each cut link's propagation delay.
``workers=1`` runs the identical protocol in-process;
``workers=N`` is byte-identical to it.
"""

from .boundary import IngressBridge, RemoteNode, ShardEgressLink
from .fabric import (FabricHost, FabricSwitch, FlowPacket, ShardFabric,
                     build_fabric, compute_routes)
from .partition import (CutLink, Partition, PartitionError,
                        partition_structure)
from .placement import ControlPlacement, plan_control_placement
from .runner import (ShardRunResult, UnshardedRunResult, WORKERS_ENV,
                     default_workers, results_identical, run_sharded,
                     run_unsharded)
from .spec import (FlowSpec, ShardScenario, rack_chaos_schedule,
                   synth_workload)

__all__ = [
    "FlowSpec", "ShardScenario", "synth_workload", "rack_chaos_schedule",
    "PartitionError", "CutLink", "Partition", "partition_structure",
    "RemoteNode", "ShardEgressLink", "IngressBridge",
    "FlowPacket", "FabricSwitch", "FabricHost", "ShardFabric",
    "build_fabric", "compute_routes",
    "ControlPlacement", "plan_control_placement",
    "WORKERS_ENV", "default_workers", "ShardRunResult",
    "UnshardedRunResult", "run_sharded", "run_unsharded",
    "results_identical",
]
