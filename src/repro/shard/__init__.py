"""Sharded multi-core co-simulation (DESIGN.md §4.9–4.10).

Partition a topology at link boundaries into per-rack
:class:`~repro.netsim.simulator.Simulator` instances, run them in
parallel worker processes, and exchange cross-shard packets under
adaptive conservative horizons derived from each cut link's
propagation delay.  Boundary traffic rides zero-copy shared-memory
frames packed by a fixed-width codec (``REPRO_SHARD_TRANSPORT=pipe``
selects the pickled-pipe fallback).  ``workers=1`` runs the identical
protocol in-process; ``workers=N`` is byte-identical to it under
either transport.
"""

from .boundary import IngressBridge, RemoteNode, ShardEgressLink
from .codec import CodecTables, decode_frame, encode_frame, frame_nbytes
from .fabric import (FabricHost, FabricSwitch, FlowPacket, ShardFabric,
                     build_fabric, compute_routes)
from .partition import (CutLink, Partition, PartitionError,
                        partition_structure)
from .placement import ControlPlacement, plan_control_placement
from .runner import (ShardRunResult, UnshardedRunResult, WORKERS_ENV,
                     default_workers, results_identical, run_sharded,
                     run_unsharded)
from .spec import (FlowSpec, ShardScenario, rack_chaos_schedule,
                   synth_workload)
from .transport import (ShmChannelBus, TRANSPORT_ENV, TRANSPORTS,
                        default_transport)

__all__ = [
    "FlowSpec", "ShardScenario", "synth_workload", "rack_chaos_schedule",
    "PartitionError", "CutLink", "Partition", "partition_structure",
    "RemoteNode", "ShardEgressLink", "IngressBridge",
    "FlowPacket", "FabricSwitch", "FabricHost", "ShardFabric",
    "build_fabric", "compute_routes",
    "ControlPlacement", "plan_control_placement",
    "WORKERS_ENV", "default_workers", "ShardRunResult",
    "UnshardedRunResult", "run_sharded", "run_unsharded",
    "results_identical",
    "CodecTables", "encode_frame", "decode_frame", "frame_nbytes",
    "TRANSPORT_ENV", "TRANSPORTS", "default_transport", "ShmChannelBus",
]
