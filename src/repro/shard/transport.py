"""Zero-copy shared-memory shard interconnect.

One :class:`ShmChannelBus` carries every directed shard channel of a
run.  Each channel owns **two fixed-size slots** in a single
``multiprocessing.shared_memory`` block — slot ``round % 2`` — and each
slot holds at most one *frame*: all of one round's boundary deliveries
for that channel, packed by :mod:`repro.shard.codec`.

Why two slots make locking unnecessary
--------------------------------------
The barrier protocol is lockstep: a frame written during round ``r`` is
read exactly once, during round ``r + 1``, and the coordinator only
issues round ``r + 1`` after *every* worker has replied to round ``r``.
So slot ``r % 2`` is written only during round ``r`` and read only
during round ``r + 1`` — with a full pipe barrier between the two —
while the concurrently-written slot of the *next* round is the other
slot.  No slot is ever accessed by two processes at once; no atomics,
no fences, no polling.  Stale slots are detected by the round stamp in
the slot header (stamps are 1-based; fresh shm memory is zero-filled,
so an unwritten slot can never alias round 1).

Writers pack records straight into the shared buffer with
``struct.pack_into`` (no intermediate bytes object, no pickle); readers
decode with ``iter_unpack`` over the same memory.  A frame larger than
the slot capacity is *spilled*: the writer returns it as standalone
frame bytes which travel to the receiver via the coordinator's control
pipe — a deterministic, content-only decision, so spilling can never
change results, only speed.

Lifecycle / crash cleanup: the coordinator creates the block *before*
forking (workers inherit the mapping — no attach, no resource-tracker
races), workers ``close()`` their mapping on exit, and the coordinator
``close()`` + ``unlink()`` in a ``finally``.  A hard-killed run can
leak a segment under ``/dev/shm/repro_shard_*``; ``unlink`` tolerates
the name being gone already, so cleanup is idempotent.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import List, Optional, Sequence

from .codec import (CodecTables, KIND_PACKED, KIND_PICKLED, Message, RECORD,
                    pack_records, packable, unpack_records)

__all__ = ["TRANSPORT_ENV", "TRANSPORTS", "SLOT_BYTES_ENV",
           "DEFAULT_SLOT_BYTES", "default_transport", "ShmChannelBus"]

TRANSPORT_ENV = "REPRO_SHARD_TRANSPORT"
TRANSPORTS = ("shm", "pipe")
SLOT_BYTES_ENV = "REPRO_SHARD_SHM_SLOT_BYTES"
DEFAULT_SLOT_BYTES = 1 << 18           # 256 KiB per (channel, parity) slot

# stamp (1-based round), payload nbytes, record count, frame kind
_SLOT_HEADER = struct.Struct("<QIIB")
_SLOT_HEADER_BYTES = 24                # header padded to a fixed stride


def default_transport() -> str:
    """Transport for ``workers>1`` runs: ``$REPRO_SHARD_TRANSPORT`` or
    shared memory.  ``pipe`` is the pickle-over-pipe fallback — same
    protocol, same results, no shm segment."""
    env = os.environ.get(TRANSPORT_ENV)
    if env is None:
        return "shm"
    if env not in TRANSPORTS:
        raise ValueError(f"{TRANSPORT_ENV}={env!r}; choose from "
                         f"{TRANSPORTS}")
    return env


class ShmChannelBus:
    """Double-slot shared-memory rings, one pair per directed channel."""

    def __init__(self, n_channels: int,
                 slot_bytes: Optional[int] = None):
        # Imported lazily so the pipe transport (and platforms without
        # POSIX shm) never touch the module.
        from multiprocessing import shared_memory
        if slot_bytes is None:
            slot_bytes = int(os.environ.get(SLOT_BYTES_ENV,
                                            DEFAULT_SLOT_BYTES))
        if slot_bytes < RECORD.size:
            raise ValueError(f"slot_bytes {slot_bytes} below one record "
                             f"({RECORD.size}B)")
        self.n_channels = n_channels
        self.slot_bytes = slot_bytes
        self._stride = _SLOT_HEADER_BYTES + slot_bytes
        size = max(1, n_channels * 2 * self._stride)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self.name = self._shm.name

    # -- geometry -------------------------------------------------------
    def _base(self, channel: int, round_no: int) -> int:
        return (channel * 2 + (round_no & 1)) * self._stride

    # -- data path ------------------------------------------------------
    def write_frame(self, channel: int, round_no: int,
                    messages: Sequence[Message],
                    tables: CodecTables) -> bool:
        """Pack one round's channel frame into its slot.  Returns False
        when the frame exceeds the slot capacity — the caller must spill
        it over the control pipe instead."""
        base = self._base(channel, round_no)
        buf = self._shm.buf
        count = len(messages)
        if packable(messages, tables):
            nbytes = count * RECORD.size
            if nbytes > self.slot_bytes:
                return False
            pack_records(messages, tables, buf,
                         base + _SLOT_HEADER_BYTES)
            _SLOT_HEADER.pack_into(buf, base, round_no, nbytes, count,
                                   KIND_PACKED)
            return True
        body = pickle.dumps(list(messages),
                            protocol=pickle.HIGHEST_PROTOCOL)
        if len(body) > self.slot_bytes:
            return False
        start = base + _SLOT_HEADER_BYTES
        buf[start:start + len(body)] = body
        _SLOT_HEADER.pack_into(buf, base, round_no, len(body), count,
                               KIND_PICKLED)
        return True

    def read_frame(self, channel: int, round_no: int,
                   tables: CodecTables) -> Optional[List[Message]]:
        """Decode the frame written for ``round_no``, or None if the
        slot holds no frame for that round (nothing sent, or spilled)."""
        if round_no < 1:               # round 0 never wrote anything;
            return None                # stamp 0 is the zero-fill value
        base = self._base(channel, round_no)
        buf = self._shm.buf
        stamp, nbytes, count, kind = _SLOT_HEADER.unpack_from(buf, base)
        if stamp != round_no:
            return None
        start = base + _SLOT_HEADER_BYTES
        if kind == KIND_PACKED:
            return unpack_records(buf, start, count, tables)
        return pickle.loads(bytes(buf[start:start + nbytes]))

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views alive
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
