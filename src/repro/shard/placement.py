"""Control-plane placement relative to a shard decomposition.

The NetRPC controller configures its switches with same-simulator
method calls (register writes over the simulated PCIe path, reboot
failover, timeout polling) — there is no message-passing boundary to
cut.  A sharded deployment therefore has to keep every switch a
controller manages inside one shard, and the controller lives there
with them.  :func:`plan_control_placement` checks that constraint
against a :class:`~repro.shard.partition.Partition` and either returns
the shard each control group lands on or the affinity sets that would
repair a split (feed them back as ``partition_structure(together=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from .partition import Partition, PartitionError

__all__ = ["ControlPlacement", "plan_control_placement"]


@dataclass(frozen=True)
class ControlPlacement:
    """Where each control group runs, or how to fix it if it cannot."""

    shard_of_controller: Tuple[Tuple[str, int], ...]
    split_controllers: Tuple[Tuple[str, Tuple[str, ...]], ...]

    @property
    def ok(self) -> bool:
        return not self.split_controllers

    def repair_affinities(self, rack_of: Mapping[str, str]
                          ) -> Tuple[Tuple[str, ...], ...]:
        """Affinity sets (rack labels) that co-locate each split
        controller's switches; pass to ``partition_structure``."""
        out: List[Tuple[str, ...]] = []
        for _name, switches in self.split_controllers:
            racks = []
            for switch in switches:
                rack = rack_of[switch]
                if rack not in racks:
                    racks.append(rack)
            out.append(tuple(racks))
        return tuple(out)


def plan_control_placement(partition: Partition,
                           controllers: Mapping[str, Sequence[str]],
                           strict: bool = False) -> ControlPlacement:
    """Map each controller (name -> managed switch names, e.g. from
    ``Controller.managed_switch_names()``) onto the shard holding its
    switches.  ``strict=True`` raises on any split controller."""
    shard_of = partition.shard_map()
    placed: List[Tuple[str, int]] = []
    split: List[Tuple[str, Tuple[str, ...]]] = []
    for name in sorted(controllers):
        switches = list(controllers[name])
        if not switches:
            raise PartitionError(f"controller {name!r} manages no "
                                 f"switches")
        shards = []
        for switch in switches:
            if switch not in shard_of:
                raise PartitionError(f"controller {name!r} manages "
                                     f"unknown switch {switch!r}")
            shard = shard_of[switch]
            if shard not in shards:
                shards.append(shard)
        if len(shards) == 1:
            placed.append((name, shards[0]))
        else:
            split.append((name, tuple(switches)))
    placement = ControlPlacement(tuple(placed), tuple(split))
    if strict and not placement.ok:
        names = ", ".join(name for name, _sw in placement.split_controllers)
        raise PartitionError(
            f"controller(s) {names} manage switches in multiple shards; "
            f"co-locate their racks via partition_structure(together=...)")
    return placement
