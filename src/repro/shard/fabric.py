"""The rack-scale flow fabric that sharded runs execute.

Rack-scale scenarios push raw packet forwarding — tens of thousands of
flows over hundreds of switches — through the exact ``Link`` transmit
model, with :class:`FabricSwitch` doing zero-latency ECMP next-hop
lookup (the link delays carry all the time, as in the NetRPC testbed's
cut-through switches) and :class:`FabricHost` endpoints emitting and
accounting flows.  Every forwarding decision is a pure function of the
*global* structure — BFS equal-cost next-hop sets plus a CRC32 flow
hash — so each shard, rebuilding only its own nodes, still forwards
exactly as the single-simulator run does.  (``zlib.crc32``, never
builtin ``hash``: the latter is salted per process.)

:func:`build_fabric` builds either the whole structure (unsharded
reference runs) or one shard of it, replacing each cut link with the
boundary stubs from :mod:`repro.shard.boundary`.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Structure, Topology

from .boundary import IngressBridge, ShardEgressLink
from .partition import Partition
from .spec import FlowSpec

__all__ = ["FlowPacket", "FabricSwitch", "FabricHost", "compute_routes",
           "build_fabric", "ShardFabric"]


class FlowPacket:
    """A minimal forwarded unit: addressable, sized, ECN-markable, and
    cheap to pickle across shard channels."""

    __slots__ = ("flow_id", "seq", "src", "dst", "size_bytes", "ecn")

    def __init__(self, flow_id: int, seq: int, src: str, dst: str,
                 size_bytes: int, ecn: bool = False):
        self.flow_id = flow_id
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.ecn = ecn

    def copy(self) -> "FlowPacket":
        return FlowPacket(self.flow_id, self.seq, self.src, self.dst,
                          self.size_bytes, self.ecn)

    def __reduce__(self):
        return (FlowPacket, (self.flow_id, self.seq, self.src, self.dst,
                             self.size_bytes, self.ecn))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FlowPacket f{self.flow_id}#{self.seq} "
                f"{self.src}->{self.dst} {self.size_bytes}B>")


def compute_routes(structure: Structure
                   ) -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """Equal-cost next-hop sets toward every host, for every node.

    One BFS per destination host over the undirected structure graph;
    ``routes[node][dst_host]`` is the sorted tuple of neighbors that lie
    on some shortest path to ``dst_host``.  Everything is derived from
    sorted names and fixed edge order, so all processes agree.
    """
    nodes, edges = structure
    adjacency: Dict[str, List[str]] = {name: [] for name, _r, _k in nodes}
    for a, b, _tier in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    for peers in adjacency.values():
        peers.sort()
    hosts = [name for name, role, _rack in nodes if role == "host"]

    routes: Dict[str, Dict[str, Tuple[str, ...]]] = {
        name: {} for name in adjacency}
    for dst in hosts:
        dist = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                d = dist[node] + 1
                for peer in adjacency[node]:
                    if peer not in dist:
                        dist[peer] = d
                        nxt.append(peer)
            frontier = nxt
        for node, peers in adjacency.items():
            if node == dst or node not in dist:
                continue
            here = dist[node]
            candidates = tuple(p for p in peers
                               if dist.get(p, here) == here - 1)
            routes[node][dst] = candidates
    return routes


class FabricSwitch(Node):
    """Zero-latency output-queued switch with per-flow ECMP.

    The next-hop choice hashes ``(flow_id, switch name)`` through CRC32
    so a flow pins one path per switch (no intra-flow reordering) while
    different flows spread across the equal-cost set.  The choice is
    cached per flow — forwarding is the hot path at rack scale.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.routes: Dict[str, Tuple[str, ...]] = {}
        self._flow_choice: Dict[int, str] = {}

    def receive(self, packet: Any, link: Any) -> None:
        flow_id = packet.flow_id
        peer = self._flow_choice.get(flow_id)
        if peer is None:
            hops = self.routes.get(packet.dst)
            if not hops:
                self.stats.add("no_route_drops")
                return
            if len(hops) == 1:
                peer = hops[0]
            else:
                key = f"{flow_id}:{self.name}".encode()
                peer = hops[zlib.crc32(key) % len(hops)]
            self._flow_choice[flow_id] = peer
        self.send(packet, peer)


class FabricHost(Node):
    """Flow endpoint: emits its flows and accounts what it receives.

    ``rx`` maps flow_id to ``[pkts, bytes, first_t, last_t]`` — the
    per-flow record the run fingerprint is built from.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.rx: Dict[int, List[float]] = {}
        self._uplink: Optional[str] = None

    def receive(self, packet: Any, link: Any) -> None:
        if packet.dst != self.name:
            self.stats.add("misrouted_pkts")
            return
        now = self.sim.now
        rec = self.rx.get(packet.flow_id)
        if rec is None:
            self.rx[packet.flow_id] = [1, packet.size_bytes, now, now]
        else:
            rec[0] += 1
            rec[1] += packet.size_bytes
            rec[3] = now

    def emit_flow(self, spec: FlowSpec) -> None:
        """Send the whole flow back-to-back into the uplink; the link's
        transmitter serializes (and drop-tails) it."""
        uplink = self._uplink
        if uplink is None:
            uplink = self._uplink = sorted(self.egress)[0]
        for seq in range(spec.n_pkts):
            self.send(FlowPacket(spec.flow_id, seq, spec.src, spec.dst,
                                 spec.pkt_bytes), uplink)


class ShardFabric:
    """One shard's live slice of the structure (or all of it).

    Holds the topology, the boundary stubs keyed by cut-link name, and
    the result-collection logic shared by sharded and unsharded runs.
    """

    def __init__(self, sim: Simulator, topo: Topology,
                 egress: Dict[str, ShardEgressLink],
                 ingress: Dict[str, IngressBridge]):
        self.sim = sim
        self.topo = topo
        self.egress = egress
        self.ingress = ingress
        self.egress_names: Tuple[str, ...] = tuple(sorted(egress))

    # -- workload -------------------------------------------------------
    def install_workload(self, flows: Sequence[FlowSpec]) -> int:
        """Schedule this shard's share of the flows (spec order —
        subset order is preserved, keeping same-timestamp cohort ties
        identical to the full-fabric installation)."""
        hosts = self.topo.nodes
        installed = 0
        for spec in flows:
            host = hosts.get(spec.src)
            if host is None:
                continue
            self.sim.schedule_at(spec.start_s, host.emit_flow, spec)
            installed += 1
        return installed

    # -- boundary draining ---------------------------------------------
    def drain_boundary(self) -> Dict[int, List[Tuple[str, float, Any]]]:
        """Drain every egress outbox into per-destination-shard message
        groups — exactly one group per directed channel this shard fed
        this round, each a frame's payload for the transport layer.

        Order is load-bearing: outboxes are walked in sorted link-name
        order (``egress_names``) and each keeps emission order, so a
        group's record sequence is identical no matter which pool or
        transport carries it — that is what keeps ``workers=1`` and
        ``workers=N`` injections byte-identical.
        """
        out: Dict[int, List[Tuple[str, float, Any]]] = {}
        egress = self.egress
        for name in self.egress_names:
            link = egress[name]
            outbox = link.outbox
            if outbox:
                group = out.get(link.dst_shard)
                if group is None:
                    group = out[link.dst_shard] = []
                group.extend((name, when, packet)
                             for when, packet in outbox)
                outbox.clear()
        return out

    # -- results --------------------------------------------------------
    def flow_results(self) -> Dict[int, Tuple[int, int, float, float]]:
        out: Dict[int, Tuple[int, int, float, float]] = {}
        for node in self.topo.nodes.values():
            if isinstance(node, FabricHost):
                for flow_id, rec in node.rx.items():
                    out[flow_id] = (int(rec[0]), int(rec[1]),
                                    float(rec[2]), float(rec[3]))
        return out

    def link_results(self) -> Dict[str, Dict[str, float]]:
        """Counters per link name; boundary halves report their split
        counters under the cut link's name, so summing the two shards'
        dicts key-wise reproduces the unsharded link's counters."""
        out: Dict[str, Dict[str, float]] = {}
        seen = set()
        for link in self.topo.links.values():
            if id(link) in seen:       # duplex registers both directions
                continue
            seen.add(id(link))
            counts = dict(link.stats._counts)
            if counts:
                out[link.name] = counts
        for name, link in self.egress.items():
            counts = dict(link.stats._counts)
            if counts:
                out[name] = counts
        for name, bridge in self.ingress.items():
            counts = dict(bridge.stats._counts)
            if counts:
                out[name] = counts
        return out


def _params(tier: str, cal: Calibration) -> Tuple[float, float, int, int]:
    delay = (cal.host_link_delay_s if tier == "host"
             else cal.switch_link_delay_s)
    return (cal.link_bandwidth_bps, delay, cal.switch_queue_capacity_pkts,
            cal.switch_ecn_threshold_pkts)


def build_fabric(sim: Simulator, structure: Structure,
                 cal: Calibration = DEFAULT_CALIBRATION,
                 partition: Optional[Partition] = None,
                 shard_id: Optional[int] = None,
                 routes: Optional[Dict[str, Dict[str, Tuple[str, ...]]]]
                 = None) -> ShardFabric:
    """Build the whole structure, or — given ``(partition, shard_id)`` —
    only that shard's slice with boundary stubs at every cut edge."""
    nodes, edges = structure
    shard_of = partition.shard_map() if partition is not None else None
    if routes is None:
        routes = compute_routes(structure)

    topo = Topology(sim)
    for name, role, rack in nodes:
        if shard_of is not None and shard_of[name] != shard_id:
            continue
        node: Node
        if role == "host":
            node = FabricHost(sim, name)
        else:
            node = FabricSwitch(sim, name)
            node.routes = routes[name]
        topo.add_node(node)
        topo.rack_of[name] = rack

    egress: Dict[str, ShardEgressLink] = {}
    ingress: Dict[str, IngressBridge] = {}
    for a, b, tier in edges:
        bandwidth, delay, capacity, ecn = _params(tier, cal)
        a_here = a in topo.nodes
        b_here = b in topo.nodes
        if a_here and b_here:
            topo.connect(topo.nodes[a], topo.nodes[b], bandwidth, delay,
                         queue_capacity_pkts=capacity,
                         ecn_threshold_pkts=ecn)
        elif a_here or b_here:
            local, remote = (a, b) if a_here else (b, a)
            node = topo.nodes[local]
            out = ShardEgressLink(sim, node, remote, bandwidth, delay,
                                  queue_capacity_pkts=capacity,
                                  ecn_threshold_pkts=ecn)
            out.dst_shard = shard_of[remote]
            node.attach_egress(out)
            egress[out.name] = out
            bridge = IngressBridge(sim, node, remote, bandwidth, delay)
            ingress[bridge.name] = bridge
    return ShardFabric(sim, topo, egress, ingress)
