"""Partition a topology structure into shards along link boundaries.

The partitioning rule is *by rack*: every node carries a rack label
(assigned by the rack-scale builders in :mod:`repro.netsim.topology`),
racks are assigned whole to shards, and every edge whose endpoints land
in different shards becomes a *cut link*.  Cut links must have strictly
positive propagation delay — that delay is the conservative lookahead
the barrier protocol in :mod:`repro.shard.runner` runs on, and a
zero-delay cut would stall the simulation clock.

The partition is a pure function of ``(structure, n_shards, together)``
— no RNG, no dict-order dependence — so every worker process derives
the identical decomposition independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.netsim import Calibration, DEFAULT_CALIBRATION
from repro.netsim.topology import Structure

__all__ = ["PartitionError", "CutLink", "Partition", "partition_structure"]


class PartitionError(ValueError):
    """The requested decomposition is invalid (zero-delay cut, unknown
    rack, empty shard...)."""


@dataclass(frozen=True)
class CutLink:
    """One *directed* link crossing a shard boundary."""

    src: str
    dst: str
    tier: str
    delay_s: float
    src_shard: int
    dst_shard: int

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True)
class Partition:
    """A validated decomposition of a structure into shards.

    ``channels`` maps each directed shard pair that exchanges traffic to
    its cut links, sorted by name — the fixed order every injection and
    merge walks, which is what keeps ``workers=1`` and ``workers=N``
    byte-identical.  ``lookahead`` is the per-channel conservative bound:
    the minimum propagation delay over the channel's links.
    """

    n_shards: int
    shard_of: Tuple[Tuple[str, int], ...]          # (node, shard) pairs
    members: Tuple[Tuple[str, ...], ...]           # nodes per shard
    rack_shard: Tuple[Tuple[str, int], ...]        # (rack, shard) pairs
    cut_links: Tuple[CutLink, ...]                 # sorted by name
    channels: Tuple[Tuple[Tuple[int, int], Tuple[CutLink, ...]], ...]
    lookahead: Tuple[Tuple[Tuple[int, int], float], ...]

    def shard_map(self) -> Dict[str, int]:
        return dict(self.shard_of)

    def channel_map(self) -> Dict[Tuple[int, int], Tuple[CutLink, ...]]:
        return dict(self.channels)

    def lookahead_map(self) -> Dict[Tuple[int, int], float]:
        return dict(self.lookahead)

    @property
    def min_lookahead(self) -> float:
        bounds = [la for _pair, la in self.lookahead]
        return min(bounds) if bounds else float("inf")


def _edge_delay(tier: str, cal: Calibration) -> float:
    return (cal.host_link_delay_s if tier == "host"
            else cal.switch_link_delay_s)


def partition_structure(structure: Structure, n_shards: int,
                        cal: Calibration = DEFAULT_CALIBRATION,
                        together: Sequence[Sequence[str]] = (),
                        ) -> Partition:
    """Assign racks to ``n_shards`` shards round-robin, cut the rest.

    Racks are taken in order of first appearance in the structure's node
    list (a deterministic order by construction) and grouped by the
    ``together`` affinity sets — every rack named in one affinity set
    lands in the same shard, which is how a controller's racks are kept
    co-resident (:mod:`repro.shard.placement`).  If there are fewer rack
    groups than requested shards, the shard count silently shrinks to
    the group count: an empty shard would add a barrier participant that
    can never do work.
    """
    if n_shards < 1:
        raise PartitionError(f"need >= 1 shard, got {n_shards}")
    nodes, edges = structure
    racks: List[str] = []
    rack_of: Dict[str, str] = {}
    for name, _role, rack in nodes:
        rack_of[name] = rack
        if rack not in racks:
            racks.append(rack)

    # Union racks through the affinity sets: each group keeps the
    # position of its earliest member rack.
    group_of: Dict[str, int] = {}
    groups: List[List[str]] = []
    for rack in racks:
        group_of[rack] = len(groups)
        groups.append([rack])
    for affinity in together:
        affinity = list(affinity)
        for rack in affinity:
            if rack not in group_of:
                raise PartitionError(f"together names unknown rack "
                                     f"{rack!r}")
        target = min(group_of[rack] for rack in affinity)
        for rack in affinity:
            src = group_of[rack]
            if src == target:
                continue
            for moved in groups[src]:
                group_of[moved] = target
            groups[target].extend(groups[src])
            groups[src] = []
    live_groups = [g for g in groups if g]

    n_shards = min(n_shards, len(live_groups))
    rack_shard: Dict[str, int] = {}
    for index, group in enumerate(live_groups):
        for rack in group:
            rack_shard[rack] = index % n_shards

    shard_of = {name: rack_shard[rack_of[name]] for name, _r, _k in nodes}
    members: List[List[str]] = [[] for _ in range(n_shards)]
    for name, _role, _rack in nodes:
        members[shard_of[name]].append(name)

    cuts: List[CutLink] = []
    for a, b, tier in edges:
        sa, sb = shard_of[a], shard_of[b]
        if sa == sb:
            continue
        delay = _edge_delay(tier, cal)
        if delay <= 0.0:
            raise PartitionError(
                f"cut edge {a}<->{b} has non-positive delay {delay!r}; "
                f"zero-lookahead cuts cannot be synchronized "
                f"conservatively — keep racks {rack_of[a]!r} and "
                f"{rack_of[b]!r} together or give the link delay")
        cuts.append(CutLink(a, b, tier, delay, sa, sb))
        cuts.append(CutLink(b, a, tier, delay, sb, sa))
    cuts.sort(key=lambda c: (c.src, c.dst))

    channels: Dict[Tuple[int, int], List[CutLink]] = {}
    for cut in cuts:
        channels.setdefault((cut.src_shard, cut.dst_shard), []).append(cut)
    channel_items = tuple(
        (pair, tuple(channels[pair])) for pair in sorted(channels))
    lookahead = tuple(
        (pair, min(c.delay_s for c in links))
        for pair, links in channel_items)

    return Partition(
        n_shards=n_shards,
        shard_of=tuple(sorted(shard_of.items())),
        members=tuple(tuple(m) for m in members),
        rack_shard=tuple(sorted(rack_shard.items())),
        cut_links=tuple(cuts),
        channels=channel_items,
        lookahead=lookahead)
