"""Boundary stubs for links that cross shard boundaries.

Every cut link becomes a pair: a :class:`ShardEgressLink` in the
sender's shard and an :class:`IngressBridge` in the receiver's shard.
The egress half keeps the *entire* transmitter model — drop-tail queue
occupancy, ECN marking, serialization timing — and emits finished
``(deliver_time, packet)`` records into an outbox instead of scheduling
local delivery events.  The ingress half replays those records with
``schedule_at``, so the receiver sees deliveries at the very same
float timestamps a same-simulator :class:`~repro.netsim.link.Link`
would have produced.

Timing identity is load-bearing and pinned by a differential test
(``tests/shard/test_boundary.py``): the serialization expressions below
must stay *byte-identical* to ``Link``'s three paths —

* idle transmitter:   ``free = now + (size + OH) * 8.0 / bandwidth``
* queued packet:      same expression evaluated at ``now == _free_at``
* batched backlog:    ``free = free + (size + OH) * 8.0 / bandwidth``

all of which reduce to the single accumulation used here, with the
serialization start parked in the virtual-occupancy deque exactly as
``Link._drain_batch`` does.  Lookahead comes for free: the record for a
packet is known at serialization-*scheduling* time, a full propagation
delay before its delivery, so the barrier protocol always has
``delay_s`` of safe horizon per channel.

Lossy/faulted cut links (rare; the chaos generator avoids them) fall
back to ``Link``'s legacy two-event path so loss draws still happen at
serialization end against this shard's RNG — only the final delivery
scheduling is redirected into the outbox.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.netsim.link import ETHERNET_OVERHEAD_BYTES, Link
from repro.netsim.simulator import Simulator
from repro.netsim.trace import Counter
from repro.obs.tracer import TRACE

__all__ = ["RemoteNode", "ShardEgressLink", "IngressBridge"]


class RemoteNode:
    """Placeholder ``dst`` for an egress link whose receiver lives in
    another shard.  It must never receive anything locally."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def receive(self, packet: Any, link: Any) -> None:
        raise AssertionError(
            f"packet delivered locally to remote node {self.name!r}; "
            f"boundary egress must route through the outbox")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteNode {self.name}>"


class ShardEgressLink(Link):
    """Sender half of a cut link: a full transmitter, no local delivery.

    ``outbox`` accumulates ``(deliver_time, packet)`` in emission order;
    the shard runner drains it at every barrier.  Counter split across
    the cut: this side counts ``offered_pkts``/``queue_drops``/
    ``ecn_marks``/``sent_pkts``/``sent_bytes`` (and ``wire_drops`` on
    the lossy path); the matching :class:`IngressBridge` counts
    ``delivered_pkts``.  Summing the two halves reproduces the counters
    a same-simulator ``Link`` reports.
    """

    def __init__(self, sim: Simulator, src: Any, dst_name: str,
                 bandwidth_bps: float, delay_s: float, **kwargs):
        if delay_s <= 0.0:
            raise ValueError(
                f"boundary link to {dst_name!r} needs positive delay "
                f"(it is the channel lookahead), got {delay_s!r}")
        super().__init__(sim, src, RemoteNode(dst_name), bandwidth_bps,
                         delay_s, **kwargs)
        self.outbox: List[Tuple[float, Any]] = []
        # The receiving shard, set by build_fabric; lets the runner
        # group drained records into one frame per (channel, round).
        self.dst_shard: int = -1

    def send(self, packet: Any) -> bool:
        if not self._fused:
            # Lossy path: Link's legacy two-event machinery runs
            # unchanged; only _tx_done (below) diverts deliveries.
            return super().send(packet)
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["offered_pkts"] += 1
            except KeyError:
                counts["offered_pkts"] = 1
        now = self.sim.now
        starts = self._virtual_starts
        while starts and starts[0] <= now:
            starts.popleft()
        qlen = len(starts)
        if qlen >= self.queue_capacity_pkts:
            stats.add("queue_drops")
            if TRACE.enabled:
                TRACE.instant("link.drop", now, self.name, ("queue",))
            return False
        if qlen >= self.ecn_threshold_pkts and hasattr(packet, "ecn"):
            packet.ecn = True
            stats.add("ecn_marks")
            if TRACE.enabled:
                TRACE.instant("link.ecn", now, self.name)
        free_at = self._free_at
        start = free_at if free_at > now else now
        size = getattr(packet, "_size", None) or packet.size_bytes
        free = start + (size + ETHERNET_OVERHEAD_BYTES) * 8.0 \
            / self.bandwidth_bps
        self._free_at = free
        if start > now:
            # A queued packet occupies the queue until its serialization
            # start passes — same convention as Link._drain_batch, and
            # the same "start <= now means popped" tie-breaking.
            starts.append(start)
        if stats.enabled:
            counts = stats._counts
            try:
                counts["sent_pkts"] += 1
            except KeyError:
                counts["sent_pkts"] = 1
            try:
                counts["sent_bytes"] += size
            except KeyError:
                counts["sent_bytes"] = size
        self.outbox.append((free + self.delay_s, packet))
        if TRACE.enabled:
            # (flow, seq) is one half of the cross-shard stitch key —
            # the matching IngressBridge records the other half under
            # the same cut-link name (DESIGN.md §4.11).
            flow_id = getattr(packet, "flow_id", None)
            TRACE.record("link.serialize", start, free, self.name,
                         None if flow_id is None
                         else (flow_id, getattr(packet, "seq", -1)))
            TRACE.record("link.propagate", free, free + self.delay_s,
                         self.name)
        return True

    # -- legacy (lossy) path: divert deliveries into the outbox --------
    def _tx_done(self, packet: Any) -> None:
        self.stats.add("sent_pkts")
        self.stats.add("sent_bytes", packet.size_bytes)
        now = self.sim.now
        plan = getattr(self._loss, "plan", None)
        if plan is not None:
            deliveries = list(plan(packet, self))
            if TRACE.enabled and not deliveries:
                TRACE.instant("link.drop", now, self.name, ("wire",))
            for extra, out in deliveries:
                self.outbox.append((now + self.delay_s + extra, out))
                if TRACE.enabled:
                    TRACE.record("link.propagate", now,
                                 now + self.delay_s + extra, self.name)
        elif self._loss.drops(packet, self.sim.rng):
            self.stats.add("wire_drops")
            if TRACE.enabled:
                TRACE.instant("link.drop", now, self.name, ("wire",))
        else:
            self.outbox.append((now + self.delay_s, packet))
            if TRACE.enabled:
                TRACE.record("link.propagate", now, now + self.delay_s,
                             self.name)
        self._transmit_next()

    def _deliver_fused(self, packet: Any) -> None:  # pragma: no cover
        raise AssertionError("egress stub must never deliver locally")

    def _deliver(self, packet: Any) -> None:  # pragma: no cover
        raise AssertionError("egress stub must never deliver locally")


class IngressBridge:
    """Receiver half of a cut link: replays boundary deliveries.

    Quacks enough like a :class:`~repro.netsim.link.Link` (``name``,
    ``src``/``dst``, ``delay_s``, ``stats``) for receive handlers that
    inspect their ingress link.  ``inject`` is called by the shard
    runner at a barrier, always with ``when`` strictly ahead of this
    shard's clock — the conservative bound guarantees it, and
    ``schedule_at`` enforces it.
    """

    def __init__(self, sim: Simulator, dst: Any, src_name: str,
                 bandwidth_bps: float, delay_s: float):
        self.sim = sim
        self.src = RemoteNode(src_name)
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.name = f"{src_name}->{getattr(dst, 'name', dst)}"
        self.stats = Counter()

    def inject(self, when: float, packet: Any) -> None:
        self.sim.schedule_at(when, self._deliver, packet)

    def _deliver(self, packet: Any) -> None:
        stats = self.stats
        if stats.enabled:
            counts = stats._counts
            try:
                counts["delivered_pkts"] += 1
            except KeyError:
                counts["delivered_pkts"] = 1
        if TRACE.enabled:
            flow_id = getattr(packet, "flow_id", None)
            TRACE.instant("boundary.deliver", self.sim.now, self.name,
                          None if flow_id is None
                          else (flow_id, getattr(packet, "seq", -1)))
        self.dst.receive(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IngressBridge {self.name}>"
