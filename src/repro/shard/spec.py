"""Picklable scenario specs for sharded runs.

A sharded run ships *specifications*, never live objects, to its worker
processes: the topology structure (names/roles/racks/edges from
:mod:`repro.netsim.topology`), a flow workload, and an optional chaos
schedule.  Everything here is a pure function of its inputs — the same
``(structure, seed)`` always yields the same workload and the same
chaos schedule, which is what makes ``workers=1`` and ``workers=N``
runs byte-comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim import Calibration, ChaosSchedule, DEFAULT_CALIBRATION
from repro.netsim.faults import LinkFault
from repro.netsim.topology import Structure

__all__ = ["FlowSpec", "ShardScenario", "synth_workload",
           "rack_chaos_schedule"]


@dataclass(frozen=True)
class FlowSpec:
    """One unidirectional flow: ``n_pkts`` packets of ``pkt_bytes`` each,
    emitted back-to-back at ``start_s`` from ``src`` toward ``dst``."""

    flow_id: int
    src: str
    dst: str
    start_s: float
    n_pkts: int
    pkt_bytes: int


@dataclass(frozen=True)
class ShardScenario:
    """Everything a worker needs to rebuild its shard of the world.

    ``structure`` is the pure topology description; workers reconstruct
    only their own shard's nodes from it, but compute routes over the
    whole structure so forwarding decisions are globally consistent.
    """

    structure: Structure
    flows: Tuple[FlowSpec, ...]
    until: float
    seed: int
    cal: Calibration = DEFAULT_CALIBRATION
    chaos: Optional[ChaosSchedule] = None

    def chaos_fingerprint(self) -> Optional[str]:
        return self.chaos.fingerprint() if self.chaos is not None else None


def synth_workload(structure: Structure, n_flows: int, seed: int,
                   t0: float, t1: float,
                   intra_rack_frac: float = 0.3,
                   pkts_range: Tuple[int, int] = (1, 8),
                   bytes_range: Tuple[int, int] = (128, 1480),
                   ) -> Tuple[FlowSpec, ...]:
    """A workload that is a pure function of ``(structure, seed)``.

    Uses its own ``random.Random(seed)`` over rack-sorted host lists
    (mirroring :meth:`ChaosSchedule.random`), so construction order and
    simulator state never leak into the draw sequence.  A fraction
    ``intra_rack_frac`` of flows stays inside the source rack — those
    never cross a shard boundary under per-rack partitioning, which is
    the locality that makes sharding pay.
    """
    if t1 < t0:
        raise ValueError("t1 must be >= t0")
    nodes, _edges = structure
    hosts = [name for name, role, _rack in nodes if role == "host"]
    if len(hosts) < 2:
        raise ValueError("workload needs at least two hosts")
    by_rack: Dict[str, List[str]] = {}
    for name, role, rack in nodes:
        if role == "host":
            by_rack.setdefault(rack, []).append(name)
    rack_of = {name: rack for name, role, rack in nodes if role == "host"}
    rng = random.Random(seed)
    span = t1 - t0
    lo_p, hi_p = pkts_range
    lo_b, hi_b = bytes_range
    flows: List[FlowSpec] = []
    for flow_id in range(n_flows):
        src = hosts[rng.randrange(len(hosts))]
        mates = by_rack[rack_of[src]]
        if rng.random() < intra_rack_frac and len(mates) > 1:
            dst = src
            while dst == src:
                dst = mates[rng.randrange(len(mates))]
        else:
            dst = src
            while dst == src:
                dst = hosts[rng.randrange(len(hosts))]
        flows.append(FlowSpec(
            flow_id=flow_id, src=src, dst=dst,
            start_s=t0 + rng.random() * span,
            n_pkts=rng.randrange(lo_p, hi_p + 1),
            pkt_bytes=rng.randrange(lo_b, hi_b + 1)))
    return tuple(flows)


def rack_chaos_schedule(structure: Structure, shard_of: Dict[str, int],
                        seed: int, t0: float, t1: float,
                        n_link_faults: int = 4,
                        kinds: Sequence[str] = ("reorder", "duplicate",
                                                "corrupt", "flap"),
                        ) -> ChaosSchedule:
    """A chaos schedule restricted to *intra-shard* links.

    Cross-shard links are excluded by construction: their loss draws
    would come from the owning shard's RNG, which diverges from the
    single-simulator draw order, and the conservative lookahead bound
    assumes boundary deliveries are never jittered below the propagation
    delay.  The draw idiom mirrors :meth:`ChaosSchedule.random` (own
    ``Random(seed)``, sorted candidate list) so the schedule — and its
    fingerprint — is a pure function of ``(structure, shard_of, seed)``.
    """
    if t1 < t0:
        raise ValueError("t1 must be >= t0")
    _nodes, edges = structure
    candidates: List[Tuple[str, str]] = []
    for a, b, _tier in edges:
        if shard_of[a] == shard_of[b]:
            candidates.append((a, b))
            candidates.append((b, a))
    if not candidates:
        raise ValueError("no intra-shard links to fault")
    candidates.sort()
    rng = random.Random(seed)
    span = t1 - t0
    events: List[LinkFault] = []
    for _ in range(n_link_faults):
        src, dst = candidates[rng.randrange(len(candidates))]
        kind = kinds[rng.randrange(len(kinds))]
        at = t0 + rng.random() * span
        if kind == "flap":
            duration = span * (0.05 + 0.15 * rng.random())
        else:
            duration = span * (0.2 + 0.6 * rng.random())
        events.append(LinkFault(
            src=src, dst=dst, kind=kind, at=at, duration_s=duration,
            rate=0.05 + 0.25 * rng.random(),
            jitter_s=span * 0.1 * rng.random()))
    return ChaosSchedule(events)
