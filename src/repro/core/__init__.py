"""The NetRPC RPC layer: IDL, IEDTs, NetFilters, channels, and stubs.

This is the paper's primary user-facing contribution (§4): a gRPC-style
programming model where declaring fields with INC-enabled data types and
attaching a NetFilter to an ``rpc`` definition offloads the method's
computation into the network.
"""

from .iedt import IEDTKind, decode_items, default_value, encode_items, is_iedt
from .idl import (
    MethodDescriptor,
    ProtoFile,
    ProtoSyntaxError,
    ServiceDescriptor,
    parse_proto,
)
from .messages import FieldDescriptor, Message, MessageDescriptor
from .netfilter import NetFilterError, netfilter_to_json, parse_netfilter
from .service import NetRPCService, RegisteredService, register_service
from .status import RpcError, Status, StatusCode
from .stubs import CallInfo, Channel, ClientStub, ServerStub

__all__ = [
    "parse_proto", "ProtoFile", "ProtoSyntaxError",
    "ServiceDescriptor", "MethodDescriptor",
    "Message", "MessageDescriptor", "FieldDescriptor",
    "IEDTKind", "is_iedt", "encode_items", "decode_items", "default_value",
    "parse_netfilter", "netfilter_to_json", "NetFilterError",
    "NetRPCService", "RegisteredService", "register_service",
    "Channel", "ClientStub", "ServerStub", "CallInfo",
    "Status", "StatusCode", "RpcError",
]
