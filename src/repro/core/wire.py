"""Varint-based wire encoding for NetRPC messages.

A protobuf-style binary format: varints for integers (zigzag for signed
values), 8-byte IEEE doubles for floats, and length-delimited byte
strings.  The RPC layer uses it to marshal non-IEDT message fields into
the opaque packet payload, exactly as the paper's gRPC plugin would.
"""

from __future__ import annotations

import struct
from typing import Tuple

__all__ = [
    "encode_varint", "decode_varint",
    "zigzag", "unzigzag",
    "encode_signed", "decode_signed",
    "encode_double", "decode_double",
    "encode_bytes", "decode_bytes",
]


def encode_varint(value: int) -> bytes:
    """LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise ValueError("varints encode non-negative integers; "
                         "use encode_signed for signed values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Returns (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def zigzag(value: int) -> int:
    """Map a signed integer to unsigned zigzag form."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def encode_signed(value: int) -> bytes:
    return encode_varint(zigzag(value))


def decode_signed(data: bytes, offset: int = 0) -> Tuple[int, int]:
    raw, offset = decode_varint(data, offset)
    return unzigzag(raw), offset


def encode_double(value: float) -> bytes:
    return struct.pack("<d", value)


def decode_double(data: bytes, offset: int = 0) -> Tuple[float, int]:
    if offset + 8 > len(data):
        raise ValueError("truncated double")
    (value,) = struct.unpack_from("<d", data, offset)
    return value, offset + 8


def encode_bytes(value: bytes) -> bytes:
    return encode_varint(len(value)) + value


def decode_bytes(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    length, offset = decode_varint(data, offset)
    if offset + length > len(data):
        raise ValueError("truncated byte string")
    return data[offset:offset + length], offset + length
