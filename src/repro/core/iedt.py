"""INC-enabled data types (IEDTs), paper §4.

IEDTs are the field types NetRPC recognises and processes in the
network: floating-point/integer arrays and string/integer-keyed maps.
Everything else in a message is a plain gRPC field that rides along as
opaque payload.

Each IEDT knows how to turn a Python value into the INC layer's
``(key, int32)`` item stream (quantizing floats with the application's
precision) and back.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Tuple

from repro.protocol import Quantizer

__all__ = ["IEDTKind", "IEDT_TYPES", "is_iedt", "iedt_kind",
           "encode_items", "decode_items", "default_value"]


class IEDTKind(enum.Enum):
    """The collection shapes NetRPC can process in-network (Table 1)."""

    FP_ARRAY = "netrpc.FPArray"        # float values, integer indices
    INT_ARRAY = "netrpc.INT32Array"    # int32 values, integer indices
    STR_INT_MAP = "netrpc.STRINTMap"   # string keys -> int32 values
    INT_INT_MAP = "netrpc.INTINTMap"   # integer keys -> int32 values
    FP_MAP = "netrpc.STRFPMap"         # string keys -> float values

    @property
    def is_array(self) -> bool:
        return self in (IEDTKind.FP_ARRAY, IEDTKind.INT_ARRAY)

    @property
    def is_map(self) -> bool:
        return not self.is_array

    @property
    def is_float(self) -> bool:
        return self in (IEDTKind.FP_ARRAY, IEDTKind.FP_MAP)


IEDT_TYPES: Dict[str, IEDTKind] = {kind.value: kind for kind in IEDTKind}


def is_iedt(type_name: str) -> bool:
    return type_name in IEDT_TYPES


def iedt_kind(type_name: str) -> IEDTKind:
    try:
        return IEDT_TYPES[type_name]
    except KeyError:
        raise ValueError(f"{type_name!r} is not an INC-enabled data type; "
                         f"known IEDTs: {sorted(IEDT_TYPES)}") from None


def default_value(kind: IEDTKind) -> Any:
    return [] if kind.is_array else {}


def encode_items(kind: IEDTKind, value: Any, quantizer: Quantizer
                 ) -> Tuple[List[Tuple[Any, int]], int]:
    """Convert an IEDT field value into INC stream items.

    Returns ``(items, precheck_overflows)`` where items are
    ``(key_or_index, int32_value)`` pairs and the overflow count reports
    values the quantizer could not fit (the agent routes whole chunks
    through the server when the switch reports overflow, so a saturated
    encoding is still corrected downstream — but callers may want to
    warn).
    """
    overflows = 0
    items: List[Tuple[Any, int]] = []
    if kind.is_array:
        for index, element in enumerate(value):
            fixed, over = _encode_one(kind, element, quantizer)
            overflows += over
            items.append((index, fixed))
        return items, overflows
    for key, element in value.items():
        _check_key(kind, key)
        fixed, over = _encode_one(kind, element, quantizer)
        overflows += over
        items.append((key, fixed))
    return items, overflows


def decode_items(kind: IEDTKind, values: Dict[Any, int],
                 quantizer: Quantizer, length: int = 0) -> Any:
    """Convert INC result values back into an IEDT field value."""
    if kind.is_array:
        out = []
        for index in range(length):
            fixed = values.get(index, 0)
            out.append(quantizer.decode(fixed) if kind.is_float
                       else int(fixed))
        return out
    if kind.is_float:
        return {key: quantizer.decode(v) for key, v in values.items()}
    return {key: int(v) for key, v in values.items()}


def _encode_one(kind: IEDTKind, element: Any, quantizer: Quantizer
                ) -> Tuple[int, int]:
    if kind.is_float:
        fixed, over = quantizer.encode(float(element))
        return fixed, int(over)
    if not isinstance(element, int) or isinstance(element, bool):
        raise TypeError(f"{kind.value} holds integers, got "
                        f"{type(element).__name__}")
    return element, 0


def _check_key(kind: IEDTKind, key: Any) -> None:
    if kind is IEDTKind.INT_INT_MAP:
        if not isinstance(key, int):
            raise TypeError(f"{kind.value} keys must be int, got "
                            f"{type(key).__name__}")
    elif not isinstance(key, str):
        raise TypeError(f"{kind.value} keys must be str, got "
                        f"{type(key).__name__}")
