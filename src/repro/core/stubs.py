"""Client and server stubs: the gRPC-style call interface (paper §4).

The client stub marshals a request message, routes its IEDT fields
through the INC channel (as a :class:`~repro.inc.app.Task`) and the
plain fields as opaque payload, then assembles the reply from the INC
results and/or the server's reply bytes — "completely identical to
vanilla gRPC, hiding INC details from the users" (Figure 4).

The server stub binds user handler functions to methods and wires them
to the server agent's upcalls: per-round handlers for synchronous
aggregation, data handlers for push-style methods, and plain handlers
for vanilla RPCs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.inc import Task, TaskResult
from repro.netsim.events import Event
from repro.protocol import Quantizer

from .iedt import decode_items, encode_items
from .messages import Message
from .service import RegisteredService
from .status import RpcError, StatusCode

__all__ = ["Channel", "ClientStub", "ServerStub", "CallInfo"]


class CallInfo:
    """Per-call INC statistics exposed next to the reply."""

    __slots__ = ("cache_hit_ratio", "overflow_chunks", "fallback_pairs",
                 "mapped_pairs")

    def __init__(self, result: TaskResult):
        self.cache_hit_ratio = result.cache_hit_ratio
        self.overflow_chunks = result.overflow_chunks
        self.fallback_pairs = result.fallback_pairs
        self.mapped_pairs = result.mapped_pairs


class Channel:
    """A client host's connection point (CreateCustomChannel equivalent)."""

    def __init__(self, registered: RegisteredService, client_host: str):
        if client_host not in registered.clients:
            raise ValueError(
                f"{client_host!r} is not a registered client of "
                f"{registered.service.app_name}; clients: "
                f"{registered.clients}")
        self.registered = registered
        self.deployment = registered.deployment
        self.client_host = client_host
        self.agent = self.deployment.client_agents[client_host]

    def stub(self) -> "ClientStub":
        return ClientStub(self)


class ClientStub:
    """Issues calls on a channel.  ``stub.MethodName(request)`` works."""

    def __init__(self, channel: Channel):
        self._channel = channel
        self._registered = channel.registered
        self._rounds: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def call_async(self, method_name: str, request: Message,
                   round: Optional[int] = None) -> Event:
        """Start a call; the event succeeds with ``(reply, CallInfo)``."""
        binding = self._registered.binding(method_name)
        config = self._registered.config(method_name)
        if request.descriptor.name != binding.request.name:
            raise RpcError(StatusCode.INVALID_ARGUMENT,
                           f"{method_name} expects {binding.request.name}, "
                           f"got {request.descriptor.name}")
        if round is None:
            round = self._rounds.get(method_name, 0)
            self._rounds[method_name] = round + 1

        quantizer = config.codec
        items: list = []
        stream_len = 0
        if binding.stream_field is not None:
            value = getattr(request, binding.stream_field.name)
            items, _overflows = encode_items(
                binding.stream_field.kind, value, quantizer)
            stream_len = len(items)

        scalar_bytes = request.to_bytes(include_iedt=False)
        payload = None
        payload_bytes = 0
        if binding.is_plain:
            payload = ("rpc-call", request.to_bytes())
            payload_bytes = len(payload[1]) + 8
        elif scalar_bytes:
            payload = ("rpc-data", method_name, scalar_bytes)
            payload_bytes = len(scalar_bytes) + 8

        program = binding.program
        indexed = bool(config.linear and binding.stream_field is not None
                       and binding.stream_field.kind.is_map)
        task = Task(app=config, items=items, round=round,
                    expect_result=(program.uses_get
                                   or program.cntfwd.counts
                                   or binding.is_plain),
                    payload=payload, payload_bytes=payload_bytes,
                    indexed=indexed)
        inner = self._channel.agent.submit(task)
        outer = self._channel.deployment.sim.event()
        inner.add_callback(
            lambda event: self._finish(event, binding, quantizer,
                                       stream_len, outer))
        return outer

    def _finish(self, event: Event, binding, quantizer: Quantizer,
                stream_len: int, outer: Event) -> None:
        if not event.ok:  # pragma: no cover - defensive
            outer.fail(event.value)
            return
        result: TaskResult = event.value
        reply = binding.reply()
        if isinstance(result.payload, tuple) and result.payload and \
                result.payload[0] == "rpc-reply" and result.payload[1]:
            served = Message.from_bytes(binding.reply, result.payload[1])
            for fd in binding.reply.fields:
                setattr(reply, fd.name, getattr(served, fd.name))
        if binding.result_field is not None:
            kind = binding.result_field.kind
            length = stream_len if kind.is_array else 0
            setattr(reply, binding.result_field.name,
                    decode_items(kind, result.values, quantizer,
                                 length=length))
        outer.succeed((reply, CallInfo(result)))

    # ------------------------------------------------------------------
    def call(self, method_name: str, request: Message,
             round: Optional[int] = None, timeout: float = 30.0
             ) -> Tuple[Message, CallInfo]:
        """Blocking convenience call: drives the simulator to completion.

        Only usable from *outside* the simulation (tests, benchmarks).
        Application processes running inside the simulator must
        ``yield call_async(...)`` instead.
        """
        sim = self._channel.deployment.sim
        event = self.call_async(method_name, request, round=round)
        try:
            return sim.run_until(event, limit=sim.now + timeout)
        except Exception as exc:
            raise RpcError(StatusCode.DEADLINE_EXCEEDED, str(exc)) from exc

    def __getattr__(self, name: str) -> Callable:
        """gRPC style: ``stub.Update(request)`` dispatches by method name."""
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            self._registered.binding(name)
        except KeyError:
            raise AttributeError(
                f"service has no method {name!r}") from None

        def invoke(request: Message, round: Optional[int] = None,
                   timeout: float = 30.0):
            return self.call(name, request, round=round, timeout=timeout)

        return invoke


class ServerStub:
    """Binds user handlers to the service on the server host."""

    def __init__(self, registered: RegisteredService):
        self._registered = registered
        self.deployment = registered.deployment
        self.agent = self.deployment.server_agents[registered.server]
        self._app_key = registered.service.app_name
        self._call_handlers: Dict[str, Callable[[str, Message], Message]] = {}
        self._data_handlers: Dict[str, Callable[[str, Message], None]] = {}
        self._round_handler: Optional[Callable[[int, dict], None]] = None
        self.agent.set_call_handler(self._app_key, self._on_call)
        self.agent.set_data_handler(self._app_key, self._on_data)

    # ------------------------------------------------------------------
    def bind(self, method_name: str,
             handler: Callable[[str, Message], Message]) -> None:
        """Plain-call handler: ``handler(client, request) -> reply``."""
        self._registered.binding(method_name)  # validates the name
        self._call_handlers[method_name] = handler

    def bind_data(self, method_name: str,
                  handler: Callable[[str, Message], None]) -> None:
        """Push-data handler for methods whose stream reaches the server."""
        self._registered.binding(method_name)
        self._data_handlers[method_name] = handler

    def bind_round(self, handler: Callable[[int, dict], None]) -> None:
        """Synchronous-aggregation handler: ``handler(round, values)``.

        ``values`` maps array index -> aggregated int32; invoked once per
        completed round under the copy clear policy.
        """
        self._round_handler = handler
        self.agent.set_round_handler(self._app_key, handler)

    # ------------------------------------------------------------------
    def inc_map_snapshot(self, include_switch: bool = True) -> Dict[Any, int]:
        """Authoritative view of the application's INC map.

        Merges the server's software map with the exact switch register
        values of every granted key (a control-plane read).
        """
        state = self.agent.app_state(self._app_key)
        snapshot = dict(state.soft.snapshot())
        if include_switch and state.mm is not None:
            for logical in state.mm.mapped_logicals():
                key = state.key_of_logical.get(logical)
                phys = state.mm.lookup(logical)
                if key is None or phys is None:
                    continue
                for switch in state.switches:
                    if switch.owns(phys):
                        value = switch.ctrl_read([phys])[0][1]
                        snapshot[key] = snapshot.get(key, 0) + value
                        break
        return snapshot

    # ------------------------------------------------------------------
    def _on_call(self, client: str, gaid: int, request_bytes: bytes) -> bytes:
        binding = self._registered.binding_for_gaid(gaid)
        handler = self._call_handlers.get(binding.name)
        if handler is None:
            return b""
        request = Message.from_bytes(binding.request, request_bytes)
        reply = handler(client, request)
        if reply is None:
            return b""
        return reply.to_bytes()

    def _on_data(self, client: str, pkt) -> None:
        payload = pkt.payload
        if not (isinstance(payload, tuple) and payload
                and payload[0] == "rpc-data"):
            return
        _tag, method_name, scalar_bytes = payload
        handler = self._data_handlers.get(method_name)
        if handler is None:
            return
        binding = self._registered.binding(method_name)
        request = Message.from_bytes(binding.request, scalar_bytes)
        handler(client, request)
