"""gRPC-style status codes and errors for the NetRPC RPC layer."""

from __future__ import annotations

import enum

__all__ = ["StatusCode", "Status", "RpcError"]


class StatusCode(enum.Enum):
    OK = 0
    CANCELLED = 1
    UNKNOWN = 2
    INVALID_ARGUMENT = 3
    DEADLINE_EXCEEDED = 4
    NOT_FOUND = 5
    UNIMPLEMENTED = 12
    UNAVAILABLE = 14


class Status:
    """Outcome of an RPC, modelled on grpc::Status."""

    __slots__ = ("code", "details")

    def __init__(self, code: StatusCode = StatusCode.OK, details: str = ""):
        self.code = code
        self.details = details

    def ok(self) -> bool:
        return self.code is StatusCode.OK

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Status({self.code.name}, {self.details!r})"


class RpcError(Exception):
    """Raised by stubs on a failed call."""

    def __init__(self, code: StatusCode, details: str = ""):
        super().__init__(f"{code.name}: {details}")
        self.code = code
        self.details = details
