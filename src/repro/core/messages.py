"""Message descriptors and dynamic message objects.

A :class:`MessageDescriptor` is built by the IDL parser (one per
``message`` block); calling it produces :class:`Message` instances with
attribute access, validation, equality, and a binary wire format.

IEDT fields (``netrpc.FPArray`` etc.) are first-class: the stubs pull
them out of a message to feed the INC channel, while scalar fields are
marshalled into the opaque payload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from . import wire
from .iedt import IEDTKind, default_value, iedt_kind, is_iedt

__all__ = ["FieldDescriptor", "MessageDescriptor", "Message",
           "SCALAR_TYPES"]

SCALAR_TYPES = {
    "int32", "int64", "uint32", "uint64", "sint32", "sint64",
    "bool", "double", "float", "string", "bytes",
}

_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_BYTES = 2


class FieldDescriptor:
    """One field of a message: name, type, tag."""

    __slots__ = ("name", "type_name", "tag", "kind")

    def __init__(self, name: str, type_name: str, tag: int):
        if not name.isidentifier():
            raise ValueError(f"invalid field name {name!r}")
        if tag < 1:
            raise ValueError(f"field tags start at 1, got {tag}")
        if type_name not in SCALAR_TYPES and not is_iedt(type_name):
            raise ValueError(
                f"unknown field type {type_name!r} for field {name!r}")
        self.name = name
        self.type_name = type_name
        self.tag = tag
        self.kind: Optional[IEDTKind] = (
            iedt_kind(type_name) if is_iedt(type_name) else None)

    @property
    def is_iedt(self) -> bool:
        return self.kind is not None

    def default(self) -> Any:
        if self.kind is not None:
            return default_value(self.kind)
        if self.type_name in ("double", "float"):
            return 0.0
        if self.type_name == "bool":
            return False
        if self.type_name == "string":
            return ""
        if self.type_name == "bytes":
            return b""
        return 0

    def validate(self, value: Any) -> Any:
        if self.kind is not None:
            if self.kind.is_array and not isinstance(value, list):
                raise TypeError(f"{self.name}: expected list for "
                                f"{self.type_name}")
            if self.kind.is_map and not isinstance(value, dict):
                raise TypeError(f"{self.name}: expected dict for "
                                f"{self.type_name}")
            return value
        expected = {
            "double": float, "float": float, "bool": bool,
            "string": str, "bytes": bytes,
        }.get(self.type_name, int)
        if expected is float and isinstance(value, int) and \
                not isinstance(value, bool):
            return float(value)
        if expected is int and isinstance(value, bool):
            raise TypeError(f"{self.name}: expected int, got bool")
        if not isinstance(value, expected):
            raise TypeError(
                f"{self.name}: expected {expected.__name__}, got "
                f"{type(value).__name__}")
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Field {self.type_name} {self.name} = {self.tag}>"


class MessageDescriptor:
    """A named message type with ordered fields."""

    def __init__(self, name: str, fields: List[FieldDescriptor]):
        self.name = name
        self.fields = list(fields)
        self.by_name = {f.name: f for f in fields}
        self.by_tag = {f.tag: f for f in fields}
        if len(self.by_name) != len(fields):
            raise ValueError(f"duplicate field names in message {name}")
        if len(self.by_tag) != len(fields):
            raise ValueError(f"duplicate field tags in message {name}")

    def iedt_fields(self) -> List[FieldDescriptor]:
        return [f for f in self.fields if f.is_iedt]

    def scalar_fields(self) -> List[FieldDescriptor]:
        return [f for f in self.fields if not f.is_iedt]

    def __call__(self, **kwargs) -> "Message":
        return Message(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MessageDescriptor {self.name} ({len(self.fields)} fields)>"


class Message:
    """A dynamic message instance with attribute-style field access."""

    __slots__ = ("_descriptor", "_values")

    def __init__(self, descriptor: MessageDescriptor, **kwargs):
        object.__setattr__(self, "_descriptor", descriptor)
        object.__setattr__(self, "_values",
                           {f.name: f.default() for f in descriptor.fields})
        for name, value in kwargs.items():
            setattr(self, name, value)

    @property
    def descriptor(self) -> MessageDescriptor:
        return self._descriptor

    def __getattr__(self, name: str) -> Any:
        values = object.__getattribute__(self, "_values")
        if name in values:
            return values[name]
        raise AttributeError(
            f"message {self._descriptor.name} has no field {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        field = self._descriptor.by_name.get(name)
        if field is None:
            raise AttributeError(
                f"message {self._descriptor.name} has no field {name!r}")
        self._values[name] = field.validate(value)

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Message)
                and other._descriptor.name == self._descriptor.name
                and other._values == self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"{self._descriptor.name}({inner})"

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_bytes(self, include_iedt: bool = True) -> bytes:
        """Marshal to the binary wire format.

        ``include_iedt=False`` marshals only the plain gRPC fields — the
        form the client stub uses for the packet payload while the IEDT
        fields travel as INC streams.
        """
        out = bytearray()
        for field in self._descriptor.fields:
            if field.is_iedt and not include_iedt:
                continue
            value = self._values[field.name]
            out += _encode_field(field, value)
        return bytes(out)

    @classmethod
    def from_bytes(cls, descriptor: MessageDescriptor, data: bytes
                   ) -> "Message":
        msg = cls(descriptor)
        offset = 0
        while offset < len(data):
            header, offset = wire.decode_varint(data, offset)
            tag, wtype = header >> 3, header & 0x7
            field = descriptor.by_tag.get(tag)
            value, offset = _decode_field_value(field, wtype, data, offset)
            if field is not None:
                msg._values[field.name] = value
        return msg

    def byte_size(self, include_iedt: bool = True) -> int:
        return len(self.to_bytes(include_iedt=include_iedt))


# ---------------------------------------------------------------------------
def _header(tag: int, wtype: int) -> bytes:
    return wire.encode_varint(tag << 3 | wtype)


def _encode_field(field: FieldDescriptor, value: Any) -> bytes:
    if field.kind is not None:
        return _header(field.tag, _WIRE_BYTES) + \
            wire.encode_bytes(_encode_iedt(field.kind, value))
    t = field.type_name
    if t in ("double", "float"):
        return _header(field.tag, _WIRE_FIXED64) + wire.encode_double(value)
    if t == "string":
        return _header(field.tag, _WIRE_BYTES) + \
            wire.encode_bytes(value.encode("utf-8"))
    if t == "bytes":
        return _header(field.tag, _WIRE_BYTES) + wire.encode_bytes(value)
    if t == "bool":
        return _header(field.tag, _WIRE_VARINT) + \
            wire.encode_varint(int(value))
    if t in ("uint32", "uint64"):
        return _header(field.tag, _WIRE_VARINT) + wire.encode_varint(value)
    return _header(field.tag, _WIRE_VARINT) + wire.encode_signed(value)


def _decode_field_value(field: Optional[FieldDescriptor], wtype: int,
                        data: bytes, offset: int) -> Tuple[Any, int]:
    if wtype == _WIRE_VARINT:
        raw, offset = wire.decode_varint(data, offset)
        if field is None:
            return None, offset
        if field.type_name == "bool":
            return bool(raw), offset
        if field.type_name in ("uint32", "uint64"):
            return raw, offset
        return wire.unzigzag(raw), offset
    if wtype == _WIRE_FIXED64:
        value, offset = wire.decode_double(data, offset)
        return (value if field is not None else None), offset
    if wtype == _WIRE_BYTES:
        blob, offset = wire.decode_bytes(data, offset)
        if field is None:
            return None, offset
        if field.kind is not None:
            return _decode_iedt(field.kind, blob), offset
        if field.type_name == "string":
            return blob.decode("utf-8"), offset
        return blob, offset
    raise ValueError(f"unsupported wire type {wtype}")


def _encode_iedt(kind: IEDTKind, value: Any) -> bytes:
    out = bytearray()
    if kind.is_array:
        out += wire.encode_varint(len(value))
        for element in value:
            if kind.is_float:
                out += wire.encode_double(float(element))
            else:
                out += wire.encode_signed(element)
        return bytes(out)
    out += wire.encode_varint(len(value))
    for key, element in value.items():
        if kind is IEDTKind.INT_INT_MAP:
            out += wire.encode_signed(key)
        else:
            out += wire.encode_bytes(key.encode("utf-8"))
        if kind.is_float:
            out += wire.encode_double(float(element))
        else:
            out += wire.encode_signed(element)
    return bytes(out)


def _decode_iedt(kind: IEDTKind, data: bytes) -> Any:
    count, offset = wire.decode_varint(data, 0)
    if kind.is_array:
        out_list = []
        for _ in range(count):
            if kind.is_float:
                element, offset = wire.decode_double(data, offset)
            else:
                element, offset = wire.decode_signed(data, offset)
            out_list.append(element)
        return out_list
    out_map: Dict[Any, Any] = {}
    for _ in range(count):
        if kind is IEDTKind.INT_INT_MAP:
            key, offset = wire.decode_signed(data, offset)
        else:
            raw, offset = wire.decode_bytes(data, offset)
            key = raw.decode("utf-8")
        if kind.is_float:
            element, offset = wire.decode_double(data, offset)
        else:
            element, offset = wire.decode_signed(data, offset)
        out_map[key] = element
    return out_map
