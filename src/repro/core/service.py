"""Service definitions: binding IDL, NetFilters, and INC deployments.

:class:`NetRPCService` couples a parsed proto file with the NetFilter
configurations its ``filter`` clauses reference, validating that every
filter's ``get``/``addTo`` references name real IEDT fields of the
method's request/reply types.

:func:`register_service` performs the paper's registration step: it
asks the controller for switch memory and GAIDs and wires the client
and server agents, returning a :class:`RegisteredService` that stubs
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control import Deployment
from repro.inc import AppConfig
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

from .idl import MethodDescriptor, ProtoFile, ServiceDescriptor, parse_proto
from .messages import FieldDescriptor, MessageDescriptor
from .netfilter import NetFilterError, parse_netfilter

__all__ = ["NetRPCService", "RegisteredService", "register_service"]


@dataclass
class _MethodBinding:
    """Resolved view of one RPC method."""

    descriptor: MethodDescriptor
    request: MessageDescriptor
    reply: MessageDescriptor
    program: RIPProgram
    stream_field: Optional[FieldDescriptor] = None  # request-side IEDT
    result_field: Optional[FieldDescriptor] = None  # reply-side IEDT

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def linear(self) -> bool:
        for fd in (self.stream_field, self.result_field):
            if fd is not None and fd.kind is not None and fd.kind.is_array:
                return True
        return False

    @property
    def is_plain(self) -> bool:
        """True when the method carries no INC stream (vanilla gRPC)."""
        return self.stream_field is None and self.result_field is None


class NetRPCService:
    """A parsed service plus its NetFilter programs, ready to register."""

    def __init__(self, proto: ProtoFile, service_name: str,
                 filters: Optional[Dict[str, object]] = None,
                 app_name: Optional[str] = None):
        self.proto = proto
        self.descriptor: ServiceDescriptor = proto.service(service_name)
        filters = filters or {}
        self.bindings: List[_MethodBinding] = []
        app_names = set()
        for method in self.descriptor.methods:
            program = self._compile_filter(method, filters, service_name)
            binding = self._bind(method, program)
            self.bindings.append(binding)
            app_names.add(program.app_name)
        if len(app_names) > 1:
            raise NetFilterError(
                f"all NetFilters of service {service_name} must share one "
                f"AppName; got {sorted(app_names)}")
        self.app_name = app_name or (app_names.pop() if app_names
                                     else service_name)

    @classmethod
    def from_text(cls, proto_text: str, service_name: str,
                  filters: Optional[Dict[str, object]] = None
                  ) -> "NetRPCService":
        return cls(parse_proto(proto_text), service_name, filters)

    # ------------------------------------------------------------------
    def _compile_filter(self, method: MethodDescriptor,
                        filters: Dict[str, object],
                        service_name: str) -> RIPProgram:
        if method.filter_file is None:
            # Vanilla gRPC method: a pass-through program to the server.
            return RIPProgram(app_name=service_name,
                              cntfwd=CntFwdSpec(
                                  target=ForwardTarget.SERVER, threshold=0))
        try:
            source = filters[method.filter_file]
        except KeyError:
            raise NetFilterError(
                f"rpc {method.name} references NetFilter "
                f"{method.filter_file!r} but no such filter was provided; "
                f"available: {sorted(filters)}") from None
        return parse_netfilter(source)

    def _bind(self, method: MethodDescriptor, program: RIPProgram
              ) -> _MethodBinding:
        request = self.proto.message(method.request_type)
        reply = self.proto.message(method.reply_type)
        stream_field = self._resolve_reference(
            program.add_to_field, method, request, "addTo")
        result_field = self._resolve_reference(
            program.get_field, method, reply, "get")
        needs_stream = program.uses_map or \
            program.cntfwd.target is not ForwardTarget.SERVER
        if stream_field is None and needs_stream:
            # get-only / counting / broadcast methods stream the keys of
            # the request's first IEDT field (values may be dummies).
            iedts = request.iedt_fields()
            if iedts:
                stream_field = iedts[0]
        return _MethodBinding(descriptor=method, request=request,
                              reply=reply, program=program,
                              stream_field=stream_field,
                              result_field=result_field)

    @staticmethod
    def _resolve_reference(reference: Optional[str],
                           method: MethodDescriptor,
                           message: MessageDescriptor,
                           which: str) -> Optional[FieldDescriptor]:
        if reference is None:
            return None
        type_name, _, field_name = reference.partition(".")
        if type_name != message.name:
            raise NetFilterError(
                f"rpc {method.name}: {which}={reference!r} does not "
                f"reference the method's {message.name} message")
        fd = message.by_name.get(field_name)
        if fd is None:
            raise NetFilterError(
                f"rpc {method.name}: {which}={reference!r} names an "
                f"unknown field of {message.name}")
        if not fd.is_iedt:
            raise NetFilterError(
                f"rpc {method.name}: field {reference!r} is not an "
                f"INC-enabled data type")
        return fd

    def binding(self, method_name: str) -> _MethodBinding:
        for binding in self.bindings:
            if binding.name == method_name:
                return binding
        raise KeyError(f"service {self.descriptor.name} has no method "
                       f"{method_name!r}")


@dataclass
class RegisteredService:
    """A service registered with the controller and wired to agents."""

    service: NetRPCService
    deployment: Deployment
    server: str
    clients: Tuple[str, ...]
    configs: Dict[str, AppConfig] = field(default_factory=dict)

    def config(self, method_name: str) -> AppConfig:
        return self.configs[method_name]

    def binding(self, method_name: str):
        return self.service.binding(method_name)

    def binding_for_gaid(self, gaid: int):
        for name, config in self.configs.items():
            if config.gaid == gaid:
                return self.service.binding(name)
        raise KeyError(f"no method bound to GAID {gaid}")


def register_service(deployment: Deployment, service: NetRPCService,
                     server: str, clients: Sequence[str],
                     value_slots: int = 65536, counter_slots: int = 4096,
                     cache_policy: str = "netrpc", cc_enabled: bool = True,
                     flows_per_host: int = 0, software_only: bool = False,
                     linear_overrides: Optional[Dict[str, bool]] = None,
                     mcast_groups: Optional[Dict[str, Sequence[str]]] = None
                     ) -> RegisteredService:
    """Register a service's INC applications with the controller.

    ``linear_overrides`` forces index addressing for named methods whose
    stream field is a map type (e.g. one vote counter per consensus
    instance, addressed by instance number).  ``mcast_groups`` narrows a
    method's CntFwd "ALL" multicast to a subset of the clients.
    """
    overrides = linear_overrides or {}
    groups = mcast_groups or {}
    programs = [binding.program for binding in service.bindings]
    linear = [overrides.get(binding.name, binding.linear)
              for binding in service.bindings]
    group_list = [groups.get(binding.name) for binding in service.bindings]
    needs_counters = any(p.cntfwd.counts for p in programs)
    configs = deployment.controller.register(
        programs, server=server, clients=list(clients),
        value_slots=value_slots,
        counter_slots=counter_slots if needs_counters else 0,
        linear=linear, cache_policy=cache_policy, cc_enabled=cc_enabled,
        flows_per_host=flows_per_host, software_only=software_only,
        mcast_groups=group_list)
    registered = RegisteredService(
        service=service, deployment=deployment, server=server,
        clients=tuple(clients))
    for binding, config in zip(service.bindings, configs):
        registered.configs[binding.name] = config
    return registered
