"""Parser for NetRPC's interface definition language (paper Figure 2).

The IDL is the protobuf subset the paper's examples use, with one
extension: an optional ``filter "file.nf"`` clause after an ``rpc``
definition naming the NetFilter that configures the method's in-network
processing.

Supported syntax::

    import "netrpc.proto";

    message NewGrad {
      netrpc.FPArray tensor = 1;
      string note = 2;
    }

    service GradientService {
      rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .messages import FieldDescriptor, MessageDescriptor

__all__ = ["ProtoFile", "ServiceDescriptor", "MethodDescriptor",
           "parse_proto", "ProtoSyntaxError"]


class ProtoSyntaxError(ValueError):
    """Raised on malformed IDL input, with a line number."""


@dataclass
class MethodDescriptor:
    """One ``rpc`` definition inside a service."""

    name: str
    request_type: str
    reply_type: str
    filter_file: Optional[str] = None


@dataclass
class ServiceDescriptor:
    name: str
    methods: List[MethodDescriptor] = field(default_factory=list)

    def method(self, name: str) -> MethodDescriptor:
        for method in self.methods:
            if method.name == name:
                return method
        raise KeyError(f"service {self.name} has no method {name!r}")


@dataclass
class ProtoFile:
    """The parsed result: message types plus service definitions."""

    messages: Dict[str, MessageDescriptor] = field(default_factory=dict)
    services: Dict[str, ServiceDescriptor] = field(default_factory=dict)
    imports: List[str] = field(default_factory=list)

    def message(self, name: str) -> MessageDescriptor:
        try:
            return self.messages[name]
        except KeyError:
            raise KeyError(f"undefined message type {name!r}") from None

    def service(self, name: str) -> ServiceDescriptor:
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(f"undefined service {name!r}") from None


_TOKEN_RE = re.compile(r"""
    (?P<comment>//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[{}()=;])
  | (?P<space>\s+)
  | (?P<bad>.)
""", re.VERBOSE)


def _tokenize(text: str):
    line = 1
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind in ("space", "comment"):
            line += value.count("\n")
            continue
        if kind == "bad":
            raise ProtoSyntaxError(
                f"line {line}: unexpected character {value!r}")
        yield kind, value, line
        line += value.count("\n")


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(_tokenize(text))
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise ProtoSyntaxError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value, line = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            want = value or kind
            raise ProtoSyntaxError(
                f"line {line}: expected {want!r}, got {got_value!r}")
        return got_value

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and \
                (value is None or token[1] == value):
            self.pos += 1
            return True
        return False

    # ------------------------------------------------------------------
    def parse(self) -> ProtoFile:
        proto = ProtoFile()
        while self.peek() is not None:
            kind, value, line = self.peek()
            if kind == "ident" and value == "import":
                self.next()
                name = self.expect("string")
                proto.imports.append(name.strip('"'))
                self.accept("punct", ";")
            elif kind == "ident" and value == "syntax":
                self.next()
                self.expect("punct", "=")
                self.expect("string")
                self.accept("punct", ";")
            elif kind == "ident" and value == "message":
                descriptor = self._parse_message()
                if descriptor.name in proto.messages:
                    raise ProtoSyntaxError(
                        f"line {line}: duplicate message "
                        f"{descriptor.name!r}")
                proto.messages[descriptor.name] = descriptor
            elif kind == "ident" and value == "service":
                service = self._parse_service(proto)
                if service.name in proto.services:
                    raise ProtoSyntaxError(
                        f"line {line}: duplicate service {service.name!r}")
                proto.services[service.name] = service
            else:
                raise ProtoSyntaxError(
                    f"line {line}: expected import/message/service, got "
                    f"{value!r}")
        return proto

    def _parse_message(self) -> MessageDescriptor:
        self.expect("ident", "message")
        name = self.expect("ident")
        self.expect("punct", "{")
        fields = []
        while not self.accept("punct", "}"):
            type_name = self.expect("ident")
            field_name = self.expect("ident")
            self.expect("punct", "=")
            _, tag_text, line = self.next()
            if not tag_text.isdigit():
                raise ProtoSyntaxError(
                    f"line {line}: field tag must be a number")
            self.expect("punct", ";")
            try:
                fields.append(FieldDescriptor(field_name, type_name,
                                              int(tag_text)))
            except ValueError as exc:
                raise ProtoSyntaxError(f"line {line}: {exc}") from None
        return MessageDescriptor(name, fields)

    def _parse_service(self, proto: ProtoFile) -> ServiceDescriptor:
        self.expect("ident", "service")
        service = ServiceDescriptor(self.expect("ident"))
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            self.expect("ident", "rpc")
            method_name = self.expect("ident")
            self.expect("punct", "(")
            request_type = self.expect("ident")
            self.expect("punct", ")")
            self.expect("ident", "returns")
            self.expect("punct", "(")
            reply_type = self.expect("ident")
            self.expect("punct", ")")
            if self.accept("punct", "{"):
                self.expect("punct", "}")
            filter_file = None
            if self.accept("ident", "filter"):
                filter_file = self.expect("string").strip('"')
            self.accept("punct", ";")
            for type_name in (request_type, reply_type):
                if type_name not in proto.messages:
                    raise ProtoSyntaxError(
                        f"rpc {method_name}: undefined message type "
                        f"{type_name!r} (define messages before services)")
            service.methods.append(MethodDescriptor(
                method_name, request_type, reply_type, filter_file))
        return service


def parse_proto(text: str) -> ProtoFile:
    """Parse IDL text into a :class:`ProtoFile`."""
    return _Parser(text).parse()
