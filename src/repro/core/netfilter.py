"""NetFilter parsing: the user's JSON INC configuration (paper Figure 3).

A NetFilter names the application, sets the floating-point precision,
and wires message fields to the five reliable INC primitives.  It
compiles into a :class:`~repro.protocol.rips.RIPProgram`, the
network-facing form consumed by switches and agents.

Example (the paper's gradient-aggregation filter)::

    {
      "AppName": "DT-1",
      "Precision": 8,
      "get": "AgtrGrad.tensor",
      "addTo": "NewGrad.tensor",
      "clear": "copy",
      "modify": "nop",
      "CntFwd": {"to": "ALL", "threshold": 2, "key": "ClientID"}
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.protocol import (
    AggOp,
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    RIPProgram,
    RetryMode,
    StreamOp,
)

__all__ = ["parse_netfilter", "netfilter_to_json", "NetFilterError"]

_KNOWN_KEYS = {"AppName", "Precision", "get", "addTo", "clear", "modify",
               "CntFwd", "retry", "agg"}


class NetFilterError(ValueError):
    """Raised for malformed NetFilter configurations."""


def parse_netfilter(source: Any) -> RIPProgram:
    """Compile a NetFilter into a RIP program.

    ``source`` may be a JSON string or an already-decoded dict.
    """
    if isinstance(source, (str, bytes)):
        try:
            config = json.loads(source)
        except json.JSONDecodeError as exc:
            raise NetFilterError(f"invalid NetFilter JSON: {exc}") from None
    elif isinstance(source, dict):
        config = dict(source)
    else:
        raise NetFilterError(
            f"NetFilter must be JSON text or a dict, got "
            f"{type(source).__name__}")

    unknown = set(config) - _KNOWN_KEYS
    if unknown:
        raise NetFilterError(
            f"unknown NetFilter keys: {sorted(unknown)}; "
            f"allowed: {sorted(_KNOWN_KEYS)}")

    app_name = config.get("AppName")
    if not app_name or not isinstance(app_name, str):
        raise NetFilterError("NetFilter requires a string AppName")

    precision = config.get("Precision", 0)
    if not isinstance(precision, int):
        raise NetFilterError("Precision must be an integer")

    get_field = _field_or_none(config.get("get", "nop"), "get")
    add_field = _field_or_none(config.get("addTo", "nop"), "addTo")

    clear_text = config.get("clear", "nop")
    try:
        clear = ClearPolicy.parse(clear_text)
    except ValueError as exc:
        raise NetFilterError(str(exc)) from None

    modify_op, modify_para = _parse_modify(config.get("modify", "nop"))
    cntfwd = _parse_cntfwd(config.get("CntFwd"))

    agg_text = config.get("agg", "add")
    if not isinstance(agg_text, str):
        raise NetFilterError("agg must be a string operator name")
    try:
        agg = AggOp.parse(agg_text)
    except ValueError as exc:
        raise NetFilterError(str(exc)) from None

    retry_text = config.get("retry")
    if retry_text is not None:
        try:
            retry = RetryMode.parse(retry_text)
        except ValueError as exc:
            raise NetFilterError(str(exc)) from None
    else:
        # test&set (threshold 1) implies re-arm-on-retry spin semantics.
        retry = RetryMode.FRESH if cntfwd.is_test_and_set \
            else RetryMode.PERSIST

    try:
        return RIPProgram(
            app_name=app_name, precision=precision, get_field=get_field,
            add_to_field=add_field, clear=clear, modify_op=modify_op,
            modify_para=modify_para, cntfwd=cntfwd, retry=retry, agg=agg)
    except ValueError as exc:
        raise NetFilterError(str(exc)) from None


def _field_or_none(value: Any, which: str) -> Optional[str]:
    if not isinstance(value, str):
        raise NetFilterError(f"{which} must be a string field reference "
                             f"or \"nop\"")
    if value.lower() == "nop":
        return None
    if "." not in value:
        raise NetFilterError(
            f"{which} must reference Message.field, got {value!r}")
    return value


def _parse_modify(value: Any) -> Tuple[StreamOp, int]:
    if isinstance(value, str):
        if ":" in value:
            op_text, para_text = value.split(":", 1)
            try:
                para = int(para_text)
            except ValueError:
                raise NetFilterError(
                    f"modify parameter must be an integer, got "
                    f"{para_text!r}") from None
        else:
            op_text, para = value, 0
        try:
            return StreamOp.parse(op_text), para
        except ValueError as exc:
            raise NetFilterError(str(exc)) from None
    if isinstance(value, dict):
        try:
            op = StreamOp.parse(value.get("op", "nop"))
        except ValueError as exc:
            raise NetFilterError(str(exc)) from None
        para = value.get("para", 0)
        if not isinstance(para, int):
            raise NetFilterError("modify para must be an integer")
        return op, para
    raise NetFilterError("modify must be \"op\", \"op:para\", or "
                         "{\"op\": ..., \"para\": ...}")


def _parse_cntfwd(value: Any) -> CntFwdSpec:
    if value is None:
        return CntFwdSpec()
    if not isinstance(value, dict):
        raise NetFilterError("CntFwd must be an object")
    unknown = set(value) - {"to", "threshold", "key"}
    if unknown:
        raise NetFilterError(f"unknown CntFwd keys: {sorted(unknown)}")
    try:
        target = ForwardTarget.parse(value.get("to", "SERVER"))
    except ValueError as exc:
        raise NetFilterError(str(exc)) from None
    threshold = value.get("threshold", 0)
    if not isinstance(threshold, int) or threshold < 0:
        raise NetFilterError("CntFwd threshold must be a non-negative int")
    key = value.get("key", "NULL")
    if not isinstance(key, str):
        raise NetFilterError("CntFwd key must be a string")
    return CntFwdSpec(target=target, threshold=threshold, key=key)


def netfilter_to_json(program: RIPProgram) -> str:
    """Render a RIP program back to canonical NetFilter JSON."""
    config: Dict[str, Any] = {
        "AppName": program.app_name,
        "Precision": program.precision,
        "get": program.get_field or "nop",
        "addTo": program.add_to_field or "nop",
        "clear": program.clear.value,
        "modify": (program.modify_op.value if program.modify_para == 0
                   else f"{program.modify_op.value}:{program.modify_para}"),
        "CntFwd": {
            "to": program.cntfwd.target.value.upper(),
            "threshold": program.cntfwd.threshold,
            "key": program.cntfwd.key,
        },
        "retry": program.retry.value,
        "agg": program.agg.value,
    }
    return json.dumps(config, indent=2)
