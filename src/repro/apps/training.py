"""Distributed ML training on NetRPC (SyncAgtr, paper §6.3 / Figure 6).

A BytePS-style data-parallel training loop: each worker computes a
gradient (modelled as compute time from the DNN profile), pushes it
through the ``Update`` RPC — whose NetFilter aggregates it in-network —
and waits for the aggregated result before the next iteration.

Gradient size is scaled down by ``scale`` (simulating 138M-element
tensors packet-by-packet is infeasible); the compute time is scaled by
the same factor, so the communication/computation ratio — the quantity
Figure 6 actually depends on — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control import Deployment
from repro.core import Channel, NetRPCService, ServerStub, register_service
from repro.workloads import ModelProfile, synthetic_gradient

__all__ = ["TrainingJob", "TrainingReport", "GRAD_PROTO", "gradient_filter"]

GRAD_PROTO = """
import "netrpc.proto";
message NewGrad { netrpc.FPArray tensor = 1; }
message AgtrGrad { netrpc.FPArray tensor = 1; }
service GradientService {
  rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
}
"""


def gradient_filter(n_workers: int, clear: str = "copy",
                    precision: int = 6) -> str:
    """The paper's Figure 3 NetFilter, parameterised."""
    return f"""{{
      "AppName": "DT-1",
      "Precision": {precision},
      "get": "AgtrGrad.tensor",
      "addTo": "NewGrad.tensor",
      "clear": "{clear}",
      "modify": "nop",
      "CntFwd": {{"to": "ALL", "threshold": {n_workers},
                  "key": "ClientID"}}
    }}"""


@dataclass
class TrainingReport:
    """Result of a training run."""

    model: str
    iterations: int
    elapsed_s: float
    samples_per_iteration: int
    scale: int
    per_worker_speeds: List[float] = field(default_factory=list)

    @property
    def images_per_second(self) -> float:
        """Average per-worker training speed (Figure 6's metric)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.iterations * self.samples_per_iteration / self.elapsed_s


class TrainingJob:
    """Drives synchronous data-parallel training over a deployment."""

    def __init__(self, deployment: Deployment, model: ModelProfile,
                 workers: Optional[List[str]] = None, server: str = "s0",
                 scale: int = 2000, clear: str = "copy",
                 value_slots: int = 65536, counter_slots: int = 4096):
        self.deployment = deployment
        self.model = model
        self.workers = workers or deployment.client_names
        self.scale = scale
        self.grad_len = max(32, (model.parameters // scale) // 32 * 32)
        self.compute_s = model.compute_s / scale * \
            (self.grad_len / (model.parameters / scale))
        service = NetRPCService.from_text(
            GRAD_PROTO, "GradientService",
            {"agtr.nf": gradient_filter(len(self.workers), clear=clear)})
        self.registered = register_service(
            deployment, service, server=server, clients=self.workers,
            value_slots=value_slots, counter_slots=counter_slots)
        self.server_stub = ServerStub(self.registered)
        self._stubs = {w: Channel(self.registered, w).stub()
                       for w in self.workers}
        self.iterations_done: Dict[str, int] = {w: 0 for w in self.workers}

    # ------------------------------------------------------------------
    def _worker_process(self, worker: str, iterations: int):
        sim = self.deployment.sim
        stub = self._stubs[worker]
        request_type = self.registered.binding("Update").request
        gradient = synthetic_gradient(self.grad_len,
                                      seed=hash(worker) % 2**31)
        for iteration in range(iterations):
            yield sim.timeout(self.compute_s)   # forward + backward pass
            request = request_type(tensor=gradient)
            reply_event = stub.call_async("Update", request,
                                          round=iteration)
            yield reply_event                   # wait for the aggregate
            self.iterations_done[worker] += 1

    def run(self, iterations: int = 10, limit: float = 300.0
            ) -> TrainingReport:
        """Run ``iterations`` synchronous rounds; returns the report."""
        sim = self.deployment.sim
        start = sim.now
        processes = [sim.process(self._worker_process(w, iterations),
                                 name=f"train-{w}")
                     for w in self.workers]
        done = sim.all_of(processes)
        sim.run_until(done, limit=start + limit)
        elapsed = sim.now - start
        # Normalise speed back to full-model scale: one simulated
        # iteration trains `samples_per_iteration` images in
        # elapsed/iterations of *scaled* time.
        return TrainingReport(
            model=self.model.name, iterations=iterations,
            elapsed_s=elapsed * self.scale *
            (self.model.parameters / self.scale) / self.grad_len,
            samples_per_iteration=self.model.samples_per_iteration,
            scale=self.scale)
