"""Distributed ML training on NetRPC (SyncAgtr, paper §6.3 / Figure 6).

A BytePS-style data-parallel training loop: each worker computes a
gradient (modelled as compute time from the DNN profile), pushes it
through the ``Update`` RPC — whose NetFilter aggregates it in-network —
and waits for the aggregated result before the next iteration.

Gradient size is scaled down by ``scale`` (simulating 138M-element
tensors packet-by-packet is infeasible); the compute time is scaled by
the same factor, so the communication/computation ratio — the quantity
Figure 6 actually depends on — is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control import Deployment
from repro.core import Channel, NetRPCService, ServerStub, register_service
from repro.inc import Task
from repro.protocol import (
    AggOp,
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    Int8BlockCodec,
    RIPProgram,
    topk_indices,
)
from repro.workloads import ModelProfile, synthetic_gradient

__all__ = ["TrainingJob", "TrainingReport", "GRAD_PROTO", "gradient_filter",
           "ConvergenceJob", "ConvergenceReport", "CONVERGENCE_MODES"]

GRAD_PROTO = """
import "netrpc.proto";
message NewGrad { netrpc.FPArray tensor = 1; }
message AgtrGrad { netrpc.FPArray tensor = 1; }
service GradientService {
  rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
}
"""


def gradient_filter(n_workers: int, clear: str = "copy",
                    precision: int = 6, agg: str = "add") -> str:
    """The paper's Figure 3 NetFilter, parameterised.

    ``agg`` selects the aggregation operator ("add", "fadd", "fmax",
    "qadd", "topk"); fp operators require ``precision=0`` — they carry
    their own codec.
    """
    return f"""{{
      "AppName": "DT-1",
      "Precision": {precision},
      "get": "AgtrGrad.tensor",
      "addTo": "NewGrad.tensor",
      "clear": "{clear}",
      "modify": "nop",
      "agg": "{agg}",
      "CntFwd": {{"to": "ALL", "threshold": {n_workers},
                  "key": "ClientID"}}
    }}"""


@dataclass
class TrainingReport:
    """Result of a training run."""

    model: str
    iterations: int
    elapsed_s: float
    samples_per_iteration: int
    scale: int
    per_worker_speeds: List[float] = field(default_factory=list)

    @property
    def images_per_second(self) -> float:
        """Average per-worker training speed (Figure 6's metric)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.iterations * self.samples_per_iteration / self.elapsed_s


class TrainingJob:
    """Drives synchronous data-parallel training over a deployment."""

    def __init__(self, deployment: Deployment, model: ModelProfile,
                 workers: Optional[List[str]] = None, server: str = "s0",
                 scale: int = 2000, clear: str = "copy",
                 value_slots: int = 65536, counter_slots: int = 4096):
        self.deployment = deployment
        self.model = model
        self.workers = workers or deployment.client_names
        self.scale = scale
        self.grad_len = max(32, (model.parameters // scale) // 32 * 32)
        self.compute_s = model.compute_s / scale * \
            (self.grad_len / (model.parameters / scale))
        service = NetRPCService.from_text(
            GRAD_PROTO, "GradientService",
            {"agtr.nf": gradient_filter(len(self.workers), clear=clear)})
        self.registered = register_service(
            deployment, service, server=server, clients=self.workers,
            value_slots=value_slots, counter_slots=counter_slots)
        self.server_stub = ServerStub(self.registered)
        self._stubs = {w: Channel(self.registered, w).stub()
                       for w in self.workers}
        self.iterations_done: Dict[str, int] = {w: 0 for w in self.workers}

    # ------------------------------------------------------------------
    def _worker_process(self, worker: str, iterations: int):
        sim = self.deployment.sim
        stub = self._stubs[worker]
        request_type = self.registered.binding("Update").request
        gradient = synthetic_gradient(self.grad_len,
                                      seed=hash(worker) % 2**31)
        for iteration in range(iterations):
            yield sim.timeout(self.compute_s)   # forward + backward pass
            request = request_type(tensor=gradient)
            reply_event = stub.call_async("Update", request,
                                          round=iteration)
            yield reply_event                   # wait for the aggregate
            self.iterations_done[worker] += 1

    def run(self, iterations: int = 10, limit: float = 300.0
            ) -> TrainingReport:
        """Run ``iterations`` synchronous rounds; returns the report."""
        sim = self.deployment.sim
        start = sim.now
        processes = [sim.process(self._worker_process(w, iterations),
                                 name=f"train-{w}")
                     for w in self.workers]
        done = sim.all_of(processes)
        sim.run_until(done, limit=start + limit)
        elapsed = sim.now - start
        # Normalise speed back to full-model scale: one simulated
        # iteration trains `samples_per_iteration` images in
        # elapsed/iterations of *scaled* time.
        return TrainingReport(
            model=self.model.name, iterations=iterations,
            elapsed_s=elapsed * self.scale *
            (self.model.parameters / self.scale) / self.grad_len,
            samples_per_iteration=self.model.samples_per_iteration,
            scale=self.scale)


# ---------------------------------------------------------------------------
# Seeded convergence trajectories: fp / quantized INC vs exact reduction
# ---------------------------------------------------------------------------

#: "exact" is the host-side float64 all-reduce reference; the other
#: three run the real deployment with the corresponding aggregation op.
CONVERGENCE_MODES = ("exact", "fp", "int8", "topk")


@dataclass
class ConvergenceReport:
    """Loss trajectory of one seeded convergence run."""

    mode: str
    workers: int
    dim: int
    seed: int
    losses: List[float]
    overflow_chunks: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def _make_dataset(dim: int, workers: int, samples: int, seed: int
                  ) -> Tuple[List[float], List[Tuple[list, list]]]:
    """Deterministic linear-regression shards: one (X, y) per worker."""
    rng = random.Random(seed)
    w_true = [rng.gauss(0.0, 1.0) for _ in range(dim)]
    shards = []
    for worker in range(workers):
        wrng = random.Random(seed * 7919 + worker)
        xs = [[wrng.gauss(0.0, 1.0) for _ in range(dim)]
              for _ in range(samples)]
        ys = [sum(a * b for a, b in zip(x, w_true)) + wrng.gauss(0.0, 0.01)
              for x in xs]
        shards.append((xs, ys))
    return w_true, shards


def _shard_gradient(weights: Sequence[float], xs: list, ys: list
                    ) -> List[float]:
    """Full-batch MSE gradient of one worker's shard."""
    n = len(xs)
    dim = len(weights)
    grad = [0.0] * dim
    for x, y in zip(xs, ys):
        err = sum(a * b for a, b in zip(x, weights)) - y
        step = 2.0 * err / n
        for j in range(dim):
            grad[j] += step * x[j]
    return grad


def _global_loss(weights: Sequence[float], shards: list) -> float:
    total = 0.0
    count = 0
    for xs, ys in shards:
        for x, y in zip(xs, ys):
            err = sum(a * b for a, b in zip(x, weights)) - y
            total += err * err
            count += 1
    return total / count


class ConvergenceJob:
    """Seeded SGD whose gradient all-reduce runs through the INC path.

    Four modes (:data:`CONVERGENCE_MODES`):

    * ``exact`` — host-side float64 reduction, no network: the reference
      the differential tests compare everything against;
    * ``fp`` — table-float INC (``agg=fadd``): workers push fp ordered
      encodings, the switch runs the NetFC-style lookup-table add;
    * ``int8`` — block-quantized INC (``agg=qadd``): workers quantize to
      int8 codes under a shared per-round scale (in a real deployment a
      scalar all-reduce precedes the tensor push; here the harness
      computes it), the switch saturating-adds the codes;
    * ``topk`` — coordinated sparse INC (``agg=topk``): every worker
      sends the same k coordinates — ranked on the *previous* round's
      aggregate, so selection is data-driven yet identical across
      workers — and the switch dense-merges them.

    All workers apply the identical broadcast aggregate, so weights
    never diverge across workers and the trajectory is a single loss
    curve.  Everything is seeded: same seed => bit-identical trajectory.
    """

    def __init__(self, deployment: Optional[Deployment], mode: str,
                 workers: int = 2, dim: int = 64, samples: int = 16,
                 seed: int = 7, lr: float = 0.05, topk: int = 16,
                 value_slots: int = 2048, counter_slots: int = 256):
        if mode not in CONVERGENCE_MODES:
            raise ValueError(f"unknown convergence mode {mode!r}; "
                             f"expected one of {CONVERGENCE_MODES}")
        if mode != "exact" and deployment is None:
            raise ValueError(f"mode {mode!r} needs a deployment")
        self.mode = mode
        self.workers = workers
        self.dim = dim
        self.seed = seed
        self.lr = lr
        self.topk = min(topk, dim)
        self.deployment = deployment
        self.w_true, self.shards = _make_dataset(dim, workers, samples, seed)
        self.overflow_chunks = 0
        self._int8 = Int8BlockCodec()
        self.config = None
        if mode != "exact":
            agg = {"fp": AggOp.FADD, "int8": AggOp.QADD,
                   "topk": AggOp.TOPK}[mode]
            program = RIPProgram(
                app_name=f"CONV-{mode}",
                precision=0 if agg.is_float else 6,
                get_field="AgtrGrad.tensor", add_to_field="NewGrad.tensor",
                clear=ClearPolicy.COPY, agg=agg,
                cntfwd=CntFwdSpec(target=ForwardTarget.ALL,
                                  threshold=workers))
            (self.config,) = deployment.controller.register(
                [program], server=deployment.server_name,
                clients=deployment.client_names[:workers],
                value_slots=value_slots, counter_slots=counter_slots,
                linear=True)

    # ------------------------------------------------------------------
    def _reduce_exact(self, grads: List[List[float]]) -> List[float]:
        return [sum(col) for col in zip(*grads)]

    def _reduce_inc(self, grads: List[List[float]], round_no: int,
                    prev_agg: List[float]) -> List[float]:
        """Push one gradient per worker through the deployment and
        decode the switch's broadcast aggregate."""
        deployment = self.deployment
        config = self.config
        codec = config.codec
        indexed = False
        if self.mode == "fp":
            per_worker = [[(j, codec.encode(g[j])[0])
                           for j in range(self.dim)] for g in grads]
            decode = codec.decode
            scale = None
        elif self.mode == "int8":
            # Shared clip scale: max|g| over every worker this round.
            peak = max((max(abs(v) for v in g) for g in grads), default=0.0)
            scale = peak / 127  # underflows to 0.0 for denormal peaks
            if scale <= 0:
                scale = 1.0
            per_worker = []
            for g in grads:
                _s, codes = self._int8.encode_block(g, scale=scale)
                per_worker.append(list(enumerate(codes)))
            decode = None
        else:  # topk: coordinated selection on the previous aggregate
            if round_no == 0 or not any(prev_agg):
                selected = list(range(self.topk))
            else:
                selected = topk_indices(prev_agg, self.topk)
            per_worker = [[(j, codec.encode(g[j])[0]) for j in selected]
                          for g in grads]
            decode = codec.decode
            indexed = True
            scale = None
        sim = deployment.sim
        start = sim.now
        events = [
            deployment.client_agent(w).submit(
                Task(app=config, round=round_no, items=per_worker[w],
                     expect_result=True, indexed=indexed))
            for w in range(self.workers)]
        results = [sim.run_until(e, limit=start + 5.0) for e in events]
        self.overflow_chunks += sum(r.overflow_chunks for r in results)
        # Settle: let clears/ACKs drain so the next round starts clean.
        sim.run(until=sim.now + 1e-4)
        values = results[0].values
        if self.mode == "int8":
            codes = [values.get(j, 0) for j in range(self.dim)]
            return self._int8.decode_block(scale, codes)
        return [decode(values[j]) if j in values else 0.0
                for j in range(self.dim)]

    # ------------------------------------------------------------------
    def run(self, rounds: int = 12) -> ConvergenceReport:
        weights = [0.0] * self.dim
        losses = [_global_loss(weights, self.shards)]
        prev_agg = [0.0] * self.dim
        for round_no in range(rounds):
            grads = [_shard_gradient(weights, xs, ys)
                     for xs, ys in self.shards]
            if self.mode == "exact":
                agg = self._reduce_exact(grads)
            else:
                agg = self._reduce_inc(grads, round_no, prev_agg)
            prev_agg = agg
            step = self.lr / self.workers
            for j in range(self.dim):
                weights[j] -= step * agg[j]
            losses.append(_global_loss(weights, self.shards))
        return ConvergenceReport(
            mode=self.mode, workers=self.workers, dim=self.dim,
            seed=self.seed, losses=losses,
            overflow_chunks=self.overflow_chunks)
