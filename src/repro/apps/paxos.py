"""Paxos on NetRPC: the Agreement application (paper §6.3 / Figure 7).

Following the paper's design choice, the *leader/sequencer and vote
counting* run on the switch (CntFwd) while the acceptors stay in
software on ordinary hosts — costing one extra round trip versus P4xos
but keeping acceptor placement and replication flexible.

Steady-state protocol per consensus instance (phase-2, stable leader,
as in the P4xos evaluation):

1. a proposer broadcasts ``Propose(instance, value)`` — a CntFwd
   threshold-0 multicast, one switch trip;
2. each acceptor receiving the proposal accepts it and sends
   ``Vote(instance)`` — counted on the switch;
3. when the majority threshold is reached the switch multicasts the
   decision to everyone; learners record it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.control import Deployment
from repro.core import Channel, Message, NetRPCService, register_service
from repro.netsim import LatencyRecorder

__all__ = ["PaxosCluster", "PAXOS_PROTO", "paxos_filters"]

PAXOS_PROTO = """
import "netrpc.proto";
message Proposal {
  netrpc.INTINTMap inst = 1;
  string value = 2;
  double sent_at = 3;
  int32 attempt = 4;
}
message ProposalAck { string msg = 1; }
message Vote {
  netrpc.INTINTMap inst = 1;
  string value = 2;
  double sent_at = 3;
}
message VoteAck { string msg = 1; }
service Paxos {
  rpc Propose (Proposal) returns (ProposalAck) {} filter "propose.nf"
  rpc CastVote (Vote) returns (VoteAck) {} filter "vote.nf"
}
"""


def paxos_filters(majority: int, app_name: str = "PAXOS-1"
                  ) -> Dict[str, str]:
    return {
        "propose.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "nop", "addTo": "nop",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "ALL", "threshold": 0, "key": "NULL"}}
        }}""",
        "vote.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "nop", "addTo": "nop",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "ALL", "threshold": {majority},
                      "key": "instance"}}
        }}""",
    }


@dataclass
class PaxosReport:
    decided: Dict[int, str]
    throughput_msgs_per_s: float
    latency: LatencyRecorder
    elapsed_s: float


class PaxosCluster:
    """Proposers, acceptors, and learners over one NetRPC deployment."""

    def __init__(self, deployment: Deployment, proposers: List[str],
                 acceptors: List[str], learners: List[str],
                 server: str = "s0", value_slots: int = 16384,
                 counter_slots: int = 16384):
        self.deployment = deployment
        self.proposers = proposers
        self.acceptors = acceptors
        self.learners = learners
        self.majority = len(acceptors) // 2 + 1
        participants = list(dict.fromkeys(proposers + acceptors + learners))
        service = NetRPCService.from_text(
            PAXOS_PROTO, "Paxos", paxos_filters(self.majority))
        proposal_group = list(dict.fromkeys(proposers + acceptors))
        self.registered = register_service(
            deployment, service, server=server, clients=participants,
            value_slots=value_slots, counter_slots=counter_slots,
            linear_overrides={"Propose": True, "CastVote": True},
            # Learners only need decisions, not the proposal broadcast.
            mcast_groups={"Propose": proposal_group})
        self._propose_gaid = self.registered.config("Propose").gaid
        self._vote_gaid = self.registered.config("CastVote").gaid
        self._stubs = {h: Channel(self.registered, h).stub()
                       for h in participants}
        self._vote_msg = self.registered.binding("CastVote").request
        self._proposal_msg = self.registered.binding("Propose").request

        self.decided: Dict[int, str] = {}
        self.latency = LatencyRecorder("consensus")
        self._accepted: Dict[Tuple[str, int], str] = {}
        # Undecided proposals awaiting re-proposal (classic Paxos
        # proposer retry): instance -> [proposer, value, first_sent_at,
        # attempt].
        self._pending: Dict[int, list] = {}
        self._acceptor_attempts: Dict[Tuple[str, int], int] = {}
        self._watchdog_on = False
        for acceptor in acceptors:
            self._install_acceptor(acceptor)
        for learner in learners:
            self._install_learner(learner)

    # ------------------------------------------------------------------
    def _install_acceptor(self, acceptor: str) -> None:
        agent = self.deployment.client_agents[acceptor]
        stub = self._stubs[acceptor]
        app_key = self.registered.service.app_name
        sim = self.deployment.sim

        def on_broadcast(pkt, _acceptor=acceptor, _stub=stub):
            if pkt.gaid != self._propose_gaid or not pkt.kv:
                return
            proposal = self._decode_scalars(pkt, self._proposal_msg)
            if proposal is None:
                return
            for instance in pkt.kv.keys or ():
                if instance is None or instance in self.decided:
                    continue
                # Accept: first proposal wins.  Re-votes happen only on an
                # explicit watchdog re-proposal (attempt > last seen), not
                # on transport-level duplicates; instances are sharded
                # one-value-per-instance, so extra counts can only
                # re-announce the same value, never decide a wrong one.
                seen = self._acceptor_attempts.get((_acceptor, instance))
                if seen is not None and proposal.attempt <= seen:
                    continue
                self._acceptor_attempts[(_acceptor, instance)] = \
                    proposal.attempt
                self._accepted[(_acceptor, instance)] = proposal.value
                vote = self._vote_msg(inst={instance: 1},
                                      value=proposal.value,
                                      sent_at=proposal.sent_at)
                _stub.call_async("CastVote", vote, round=instance)

        self._chain_broadcast(agent, app_key, on_broadcast)

    def _install_learner(self, learner: str) -> None:
        agent = self.deployment.client_agents[learner]
        app_key = self.registered.service.app_name
        sim = self.deployment.sim

        def on_broadcast(pkt):
            if pkt.gaid != self._vote_gaid or not pkt.kv:
                return
            vote = self._decode_scalars(pkt, self._vote_msg)
            if vote is None:
                return
            for instance in pkt.kv.keys or ():
                if instance is None or instance in self.decided:
                    continue
                self.decided[instance] = vote.value
                self._pending.pop(instance, None)
                self.latency.record(sim.now - vote.sent_at)

        self._chain_broadcast(agent, app_key, on_broadcast)

    @staticmethod
    def _chain_broadcast(agent, app_key: str, handler) -> None:
        """Hosts can play several roles; chain their broadcast handlers."""
        state = agent.app_state(app_key)
        previous = state.broadcast_handler

        def chained(pkt):
            if previous is not None:
                previous(pkt)
            handler(pkt)

        agent.set_broadcast_handler(app_key, chained)

    @staticmethod
    def _decode_scalars(pkt, descriptor) -> Optional[Message]:
        payload = pkt.payload
        if not (isinstance(payload, tuple) and payload
                and payload[0] == "rpc-data"):
            return None
        return Message.from_bytes(descriptor, payload[2])

    # ------------------------------------------------------------------
    def _proposer_process(self, proposer: str, instances: List[int],
                          window: int, gap_s: float = 0.0):
        sim = self.deployment.sim
        stub = self._stubs[proposer]
        outstanding: List = []
        for instance in instances:
            value = f"cmd-{proposer}-{instance}"
            proposal = self._proposal_msg(
                inst={instance: 1}, value=value, sent_at=sim.now,
                attempt=0)
            self._pending[instance] = [proposer, value, sim.now, 0]
            outstanding.append(stub.call_async("Propose", proposal,
                                               round=instance))
            if len(outstanding) >= window:
                yield outstanding.pop(0)
            if gap_s > 0:
                yield sim.timeout(gap_s)
        for event in outstanding:
            yield event

    def _watchdog_process(self, interval_s: float = 2e-3):
        """Re-propose instances whose decision has not arrived.

        Covers multicast copies lost to individual acceptors — the
        proposer-retry of classic Paxos.  Each retry carries a fresh
        attempt number so acceptors re-vote exactly once per retry.
        """
        sim = self.deployment.sim
        while self._watchdog_on:
            yield sim.timeout(interval_s)
            now = sim.now
            for instance, entry in list(self._pending.items()):
                proposer, value, sent_at, attempt = entry
                if instance in self.decided or now - sent_at < interval_s:
                    continue
                entry[3] = attempt + 1
                proposal = self._proposal_msg(
                    inst={instance: 1}, value=value, sent_at=sent_at,
                    attempt=entry[3])
                self._stubs[proposer].call_async("Propose", proposal,
                                                 round=instance)

    def run(self, n_instances: int, window: int = 8, limit: float = 60.0,
            settle_s: float = 0.002, gap_s: float = 0.0) -> PaxosReport:
        """Drive ``n_instances`` consensus instances, split across proposers.

        Returns throughput (decisions/second) and decision latency.
        """
        sim = self.deployment.sim
        start = sim.now
        shards: Dict[str, List[int]] = {p: [] for p in self.proposers}
        for instance in range(n_instances):
            shards[self.proposers[instance % len(self.proposers)]].append(
                instance)
        self._watchdog_on = True
        watchdog = sim.process(self._watchdog_process(),
                               name="paxos-watchdog")
        processes = [sim.process(self._proposer_process(p, insts, window,
                                                        gap_s),
                                 name=f"proposer-{p}")
                     for p, insts in shards.items()]
        sim.run_until(sim.all_of(processes), limit=start + limit)
        # Let the last votes land.
        deadline = sim.now + limit
        while len(self.decided) < n_instances and sim.now < deadline and \
                sim.peek() != float("inf"):
            sim.step()
        self._watchdog_on = False
        watchdog.interrupt()
        sim.run(until=sim.now + settle_s)
        elapsed = sim.now - start
        throughput = len(self.decided) / elapsed if elapsed > 0 else 0.0
        return PaxosReport(decided=dict(self.decided),
                           throughput_msgs_per_s=throughput,
                           latency=self.latency, elapsed_s=elapsed)
