"""Network monitoring on NetRPC: the KeyValue application (paper App. D).

Reproduces the Figure 22-24 example: monitoring points stream per-flow
metrics through ``MonitorCall`` (the switch accumulates them in the INC
map and forwards the payload to the collector), and operators read
counters back with sub-RTT ``Query`` calls that bounce at the switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.control import Deployment
from repro.core import Channel, NetRPCService, ServerStub, register_service
from repro.workloads import FlowRecord

__all__ = ["FlowMonitor", "MONITOR_PROTO", "monitor_filters"]

MONITOR_PROTO = """
import "netrpc.proto";
message MonitorRequest {
  netrpc.STRINTMap kvs = 1;
  string payload = 2;
}
message MonitorReply { string payload = 1; }
message QueryRequest { netrpc.STRINTMap kvs = 1; }
message QueryReply { netrpc.STRINTMap kvs = 1; }
service Monitor {
  rpc MonitorCall (MonitorRequest) returns (MonitorReply) {} filter "monitor.nf"
  rpc Query (QueryRequest) returns (QueryReply) {} filter "query.nf"
}
"""


def monitor_filters(app_name: str = "MON-1") -> Dict[str, str]:
    """The paper's Figure 23 NetFilters."""
    return {
        "monitor.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "nop", "addTo": "MonitorRequest.kvs",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "SERVER", "threshold": 0, "key": "NULL"}}
        }}""",
        "query.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "QueryReply.kvs", "addTo": "nop",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "SRC", "threshold": 0, "key": "NULL"}}
        }}""",
    }


@dataclass
class MonitorStats:
    packets_observed: int
    batches_sent: int
    elapsed_s: float
    query_latencies: List[float]


class FlowMonitor:
    """Streams flow observations into the INC map and answers queries."""

    def __init__(self, deployment: Deployment,
                 monitors: Optional[List[str]] = None, server: str = "s0",
                 value_slots: int = 65536, batch_flows: int = 32):
        self.deployment = deployment
        self.monitors = monitors or deployment.client_names
        self.batch_flows = batch_flows
        service = NetRPCService.from_text(MONITOR_PROTO, "Monitor",
                                          monitor_filters())
        self.registered = register_service(
            deployment, service, server=server, clients=self.monitors,
            value_slots=value_slots)
        self.server_stub = ServerStub(self.registered)
        self.collector_log: List[str] = []
        self.server_stub.bind_data(
            "MonitorCall",
            lambda client, request: self.collector_log.append(
                request.payload))
        self._stubs = {m: Channel(self.registered, m).stub()
                       for m in self.monitors}
        self.packets_observed = 0
        self.batches_sent = 0

    # ------------------------------------------------------------------
    def _monitor_process(self, monitor: str, records: Sequence[FlowRecord]):
        stub = self._stubs[monitor]
        request_type = self.registered.binding("MonitorCall").request
        batch: Dict[str, int] = {}
        inflight = []
        for record in records:
            flow_id = record.flow_id
            if flow_id in batch:
                batch[flow_id] += 1
            else:
                batch[flow_id] = 1
            self.packets_observed += 1
            if len(batch) >= self.batch_flows:
                inflight.append(stub.call_async(
                    "MonitorCall",
                    request_type(kvs=dict(batch), payload="report")))
                self.batches_sent += 1
                batch = {}
                if len(inflight) >= 8:
                    yield inflight.pop(0)
        if batch:
            inflight.append(stub.call_async(
                "MonitorCall", request_type(kvs=batch, payload="report")))
            self.batches_sent += 1
        for event in inflight:
            yield event

    def feed(self, shards: Dict[str, Sequence[FlowRecord]],
             limit: float = 300.0) -> MonitorStats:
        """Stream per-monitor trace shards into the network."""
        sim = self.deployment.sim
        start = sim.now
        processes = [sim.process(self._monitor_process(m, records),
                                 name=f"mon-{m}")
                     for m, records in shards.items()]
        sim.run_until(sim.all_of(processes), limit=start + limit)
        return MonitorStats(packets_observed=self.packets_observed,
                            batches_sent=self.batches_sent,
                            elapsed_s=sim.now - start, query_latencies=[])

    # ------------------------------------------------------------------
    def query(self, flow_ids: Iterable[str], monitor: Optional[str] = None,
              limit: float = 30.0) -> Dict[str, int]:
        """Sub-RTT read of flow counters (bounces at the switch)."""
        sim = self.deployment.sim
        stub = self._stubs[monitor or self.monitors[0]]
        query_type = self.registered.binding("Query").request
        flow_ids = list(flow_ids)
        counts: Dict[str, int] = {}
        for begin in range(0, len(flow_ids), 512):
            chunk = flow_ids[begin:begin + 512]
            reply, _ = stub.call("Query",
                                 query_type(kvs={f: 0 for f in chunk}),
                                 timeout=limit)
            counts.update(reply.kvs)
        return counts

    def query_latency(self, flow_id: str, monitor: Optional[str] = None
                      ) -> float:
        """Latency of a single-counter query (Table 5's monitor delay)."""
        sim = self.deployment.sim
        stub = self._stubs[monitor or self.monitors[0]]
        query_type = self.registered.binding("Query").request
        start = sim.now
        stub.call("Query", query_type(kvs={flow_id: 0}))
        return sim.now - start
