"""The four INC application types built on the NetRPC public API.

Maps to the paper's Table 1: distributed training (SyncAgtr), WordCount
MapReduce (AsyncAgtr), network monitoring (KeyValue), and Paxos plus a
lock server (Agreement).
"""

from .lock import LOCK_PROTO, LockService, lock_filters
from .monitoring import MONITOR_PROTO, FlowMonitor, monitor_filters
from .paxos import PAXOS_PROTO, PaxosCluster, paxos_filters
from .training import (
    CONVERGENCE_MODES,
    GRAD_PROTO,
    ConvergenceJob,
    ConvergenceReport,
    TrainingJob,
    TrainingReport,
    gradient_filter,
)
from .wordcount import MR_PROTO, WordCountJob, mr_filters

__all__ = [
    "TrainingJob", "TrainingReport", "GRAD_PROTO", "gradient_filter",
    "ConvergenceJob", "ConvergenceReport", "CONVERGENCE_MODES",
    "WordCountJob", "MR_PROTO", "mr_filters",
    "FlowMonitor", "MONITOR_PROTO", "monitor_filters",
    "PaxosCluster", "PAXOS_PROTO", "paxos_filters",
    "LockService", "LOCK_PROTO", "lock_filters",
]
