"""WordCount over NetRPC: the MapReduce (AsyncAgtr) application.

Reproduces the paper's Figure 16-18 example: mappers count words in
their document shards locally, push the partial counts through the
``ReduceByKey`` RPC — the switch aggregates them in-network — and any
client reads the totals back with ``Query``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.control import Deployment
from repro.core import Channel, NetRPCService, ServerStub, register_service
from repro.workloads import word_count

__all__ = ["WordCountJob", "MR_PROTO", "mr_filters"]

MR_PROTO = """
import "netrpc.proto";
message ReduceRequest { netrpc.STRINTMap kvs = 1; }
message ReduceReply { string msg = 1; }
message QueryRequest { netrpc.STRINTMap kvs = 1; }
message QueryReply { netrpc.STRINTMap kvs = 1; }
service MapReduce {
  rpc ReduceByKey (ReduceRequest) returns (ReduceReply) {} filter "reduce.nf"
  rpc Query (QueryRequest) returns (QueryReply) {} filter "query.nf"
}
"""


def mr_filters(app_name: str = "MR-1") -> Dict[str, str]:
    """The paper's Figure 17 NetFilters."""
    return {
        "reduce.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "nop", "addTo": "ReduceRequest.kvs",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "SRC", "threshold": 0, "key": "NULL"}}
        }}""",
        "query.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "QueryReply.kvs", "addTo": "nop",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "SRC", "threshold": 0, "key": "NULL"}}
        }}""",
    }


@dataclass
class WordCountResult:
    counts: Dict[str, int]
    elapsed_s: float
    cache_hit_ratio: float
    documents: int


class WordCountJob:
    """Distributed word count across the deployment's client hosts."""

    def __init__(self, deployment: Deployment,
                 mappers: Optional[List[str]] = None, server: str = "s0",
                 value_slots: int = 65536, cache_policy: str = "netrpc",
                 batch_words: int = 512):
        self.deployment = deployment
        self.mappers = mappers or deployment.client_names
        self.batch_words = batch_words
        service = NetRPCService.from_text(MR_PROTO, "MapReduce",
                                          mr_filters())
        self.registered = register_service(
            deployment, service, server=server, clients=self.mappers,
            value_slots=value_slots, cache_policy=cache_policy)
        self.server_stub = ServerStub(self.registered)
        self._stubs = {m: Channel(self.registered, m).stub()
                       for m in self.mappers}
        self._hits = 0
        self._total_pairs = 0

    # ------------------------------------------------------------------
    def _mapper_process(self, mapper: str, documents: Sequence[str]):
        stub = self._stubs[mapper]
        request_type = self.registered.binding("ReduceByKey").request
        batch: Dict[str, int] = {}
        batch_size = 0
        for document in documents:
            for word in document.split():
                batch[word] = batch.get(word, 0) + 1
                batch_size += 1
                if batch_size >= self.batch_words:
                    yield from self._flush(stub, request_type, batch)
                    batch, batch_size = {}, 0
        if batch:
            yield from self._flush(stub, request_type, batch)

    def _flush(self, stub, request_type, batch):
        event = stub.call_async("ReduceByKey", request_type(kvs=dict(batch)))
        _reply, info = yield event
        self._hits += info.mapped_pairs
        self._total_pairs += info.mapped_pairs + info.fallback_pairs

    # ------------------------------------------------------------------
    def run(self, shards: Dict[str, Sequence[str]], limit: float = 300.0
            ) -> WordCountResult:
        """Count words in per-mapper document shards, then query totals."""
        sim = self.deployment.sim
        start = sim.now
        processes = [sim.process(self._mapper_process(m, docs),
                                 name=f"map-{m}")
                     for m, docs in shards.items()]
        sim.run_until(sim.all_of(processes), limit=start + limit)
        elapsed = sim.now - start

        # Query the aggregate: ask for every word any shard produced.
        vocabulary = sorted(word_count(
            doc for docs in shards.values() for doc in docs))
        query_stub = self._stubs[self.mappers[0]]
        query_type = self.registered.binding("Query").request
        counts: Dict[str, int] = {}
        for begin in range(0, len(vocabulary), 512):
            chunk = vocabulary[begin:begin + 512]
            reply, _ = query_stub.call(
                "Query", query_type(kvs={w: 0 for w in chunk}),
                timeout=limit)
            counts.update(reply.kvs)
        chr_value = self._hits / self._total_pairs if self._total_pairs \
            else 0.0
        n_docs = sum(len(d) for d in shards.values())
        return WordCountResult(counts=counts, elapsed_s=elapsed,
                               cache_hit_ratio=chr_value,
                               documents=n_docs)
