"""Distributed lock server on NetRPC (paper Appendix D, Figures 19-21).

A test&set lock: ``GetLock`` counts on the lock key with threshold 1 —
the first requester's packet bounces back granted, later requesters'
packets are absorbed by the switch and their agents spin with fresh
attempts until ``Release`` clears the counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.control import Deployment
from repro.core import Channel, NetRPCService, ServerStub, register_service
from repro.netsim.events import Event

__all__ = ["LockService", "LOCK_PROTO", "lock_filters"]

LOCK_PROTO = """
import "netrpc.proto";
message LockRequest { netrpc.STRINTMap map = 1; }
message LockReply { string msg = 1; }
message ReleaseRequest { netrpc.STRINTMap map = 1; }
message ReleaseReply { string msg = 1; }
service Lock {
  rpc GetLock (LockRequest) returns (LockReply) {} filter "lock.nf"
  rpc Release (ReleaseRequest) returns (ReleaseReply) {} filter "release.nf"
}
"""


def lock_filters(app_name: str = "LS-1") -> Dict[str, str]:
    """The paper's Figure 20 NetFilters."""
    return {
        "lock.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "nop", "addTo": "nop",
          "clear": "nop", "modify": "nop",
          "CntFwd": {{"to": "SRC", "threshold": 1,
                      "key": "LockRequest.map"}}
        }}""",
        "release.nf": f"""{{
          "AppName": "{app_name}", "Precision": 0,
          "get": "nop", "addTo": "nop",
          "clear": "copy", "modify": "nop",
          "CntFwd": {{"to": "SRC", "threshold": 0,
                      "key": "ReleaseRequest.map"}}
        }}""",
    }


class LockService:
    """Client-side handle to the distributed lock application."""

    def __init__(self, deployment: Deployment,
                 clients: Optional[List[str]] = None, server: str = "s0",
                 value_slots: int = 8192):
        self.deployment = deployment
        self.clients = clients or deployment.client_names
        service = NetRPCService.from_text(LOCK_PROTO, "Lock",
                                          lock_filters())
        self.registered = register_service(
            deployment, service, server=server, clients=self.clients,
            value_slots=value_slots)
        self.server_stub = ServerStub(self.registered)
        self._stubs = {c: Channel(self.registered, c).stub()
                       for c in self.clients}

    # ------------------------------------------------------------------
    def acquire_async(self, client: str, lock_name: str) -> Event:
        """Blocking-lock acquisition: the event fires once granted."""
        stub = self._stubs[client]
        request = self.registered.binding("GetLock").request(
            map={lock_name: 1})
        return stub.call_async("GetLock", request)

    def release_async(self, client: str, lock_name: str) -> Event:
        stub = self._stubs[client]
        request = self.registered.binding("Release").request(
            map={lock_name: 1})
        return stub.call_async("Release", request)

    def acquire(self, client: str, lock_name: str, timeout: float = 30.0):
        sim = self.deployment.sim
        return sim.run_until(self.acquire_async(client, lock_name),
                             limit=sim.now + timeout)

    def release(self, client: str, lock_name: str, timeout: float = 30.0):
        sim = self.deployment.sim
        return sim.run_until(self.release_async(client, lock_name),
                             limit=sim.now + timeout)

    # ------------------------------------------------------------------
    def holder_view(self, lock_name: str) -> int:
        """Current raw counter value (diagnostic; >=1 means held)."""
        state = self.deployment.server_agents[
            self.registered.server].app_state(
            self.registered.service.app_name)
        from repro.inc.addressing import logical_address
        if state.mm is None:
            return state.soft.counter(lock_name) or \
                state.soft.get(lock_name)
        phys = state.mm.lookup(logical_address(lock_name))
        if phys is None:
            return state.soft.counter(lock_name)
        for switch in state.switches:
            if switch.owns(phys):
                return switch.ctrl_read([phys])[0][1]
        return 0
