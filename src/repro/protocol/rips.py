"""Reliable INC Primitive (RIP) programs.

A :class:`RIPProgram` is the compiled form of a user's NetFilter file
(paper §4, Figure 3): which of the five primitives are enabled and with
what arguments.  The same object is consumed by three parties:

* the RPC layer, to know which message fields feed the INC data stream;
* the switch pipeline, to drive per-packet processing (Figure 15);
* the host agents, to execute the identical semantics in software on
  the fallback path.

Parsing of the user-facing JSON lives in :mod:`repro.core.netfilter`;
this module only holds the validated, network-facing representation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .ops import StreamOp

__all__ = [
    "AggOp",
    "ClearPolicy",
    "ForwardTarget",
    "RetryMode",
    "CntFwdSpec",
    "RIPProgram",
]


class AggOp(enum.Enum):
    """Aggregation operator applied by ``Map.addTo`` (NetFilter ``agg``).

    ``ADD`` is the paper's 32-bit saturating integer accumulate.  The
    remaining modes extend it:

    * ``FADD``/``FMAX`` — table-based floating point à la NetFC; register
      contents are :mod:`~repro.protocol.fpcodec` ordered encodings and
      the switch runs the lookup-table add / integer-max kernels.
    * ``QADD`` — int8 block-quantized add: clients pre-quantize to int8
      codes under a shared scale, the switch accumulates the codes with
      the plain integer kernel (host-side decode restores floats).
    * ``TOPK`` — coordinated top-k sparse updates; clients send only the
      selected coordinates, the switch dense-merges them with the plain
      integer kernel.

    ``QADD``/``TOPK`` therefore change nothing in the dataplane — the op
    tag exists so hosts choose the right codec and the overflow-recovery
    path computes corrected aggregates in the right arithmetic.
    """

    ADD = "add"
    FADD = "fadd"
    FMAX = "fmax"
    QADD = "qadd"
    TOPK = "topk"

    @classmethod
    def parse(cls, text: str) -> "AggOp":
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(op.value for op in cls)
            raise ValueError(
                f"unknown agg op {text!r}; expected one of: {valid}"
            ) from None

    @property
    def is_float(self) -> bool:
        """Whether register contents are fp ordered encodings."""
        return self is AggOp.FADD or self is AggOp.FMAX


class ClearPolicy(enum.Enum):
    """How ``Map.clear`` reclaims accumulator state (paper §5.2.2)."""

    NOP = "nop"        # the application never clears
    COPY = "copy"      # server backs up, return stream clears
    SHADOW = "shadow"  # double-buffered registers, recirculating clear
    LAZY = "lazy"      # never clear; hosts subtract the saved baseline

    @classmethod
    def parse(cls, text: str) -> "ClearPolicy":
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown clear policy {text!r}; expected one of: {valid}"
            ) from None


class ForwardTarget(enum.Enum):
    """Where CntFwd sends a packet once the threshold is reached."""

    SERVER = "server"  # continue to the server agent
    SRC = "src"        # bounce back to the sender (sub-RTT response)
    ALL = "all"        # multicast to every registered client

    @classmethod
    def parse(cls, text: str) -> "ForwardTarget":
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(t.value for t in cls)
            raise ValueError(
                f"unknown CntFwd target {text!r}; expected one of: {valid}"
            ) from None


class RetryMode(enum.Enum):
    """Client behaviour when a CntFwd packet is intentionally dropped.

    ``PERSIST`` retransmits the same sequence number; the switch's
    flip-bit check keeps the counter idempotent and the eventual
    threshold-reached forward doubles as the ACK (voting, aggregation).
    ``FRESH`` issues a brand-new attempt after the retry timeout; each
    attempt increments the counter again, giving spin-lock (test&set)
    semantics.  The NetFilter defaults to FRESH when ``threshold == 1``.
    """

    PERSIST = "persist"
    FRESH = "fresh"

    @classmethod
    def parse(cls, text: str) -> "RetryMode":
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown retry mode {text!r}; expected one of: {valid}"
            ) from None


@dataclass(frozen=True)
class CntFwdSpec:
    """Arguments of the CntFwd primitive (Table 2).

    ``threshold == 0`` disables counting: every packet forwards
    unconditionally to ``target`` (the common case for plain map access,
    e.g. the paper's query/monitor NetFilters).
    """

    target: ForwardTarget = ForwardTarget.SERVER
    threshold: int = 0
    key: str = "NULL"

    def __post_init__(self):
        if self.threshold < 0:
            raise ValueError(
                f"CntFwd threshold must be >= 0, got {self.threshold}")

    @property
    def counts(self) -> bool:
        """Whether this spec actually counts (vs. unconditional forward)."""
        return self.threshold > 0

    @property
    def is_test_and_set(self) -> bool:
        return self.threshold == 1


@dataclass(frozen=True)
class RIPProgram:
    """A validated RIP configuration for one application.

    ``get_field``/``add_to_field`` name the protobuf fields whose values
    feed ``Map.get``/``Map.addTo`` (``None`` disables the primitive, the
    NetFilter spelling being ``"nop"``).
    """

    app_name: str
    precision: int = 0
    get_field: Optional[str] = None
    add_to_field: Optional[str] = None
    clear: ClearPolicy = ClearPolicy.NOP
    modify_op: StreamOp = StreamOp.NOP
    modify_para: int = 0
    cntfwd: CntFwdSpec = field(default_factory=CntFwdSpec)
    retry: RetryMode = RetryMode.PERSIST
    agg: AggOp = AggOp.ADD

    def __post_init__(self):
        if not self.app_name:
            raise ValueError("RIPProgram requires a non-empty app_name")
        if not 0 <= self.precision <= 9:
            raise ValueError(
                f"precision must be in [0, 9], got {self.precision}")
        if self.agg.is_float:
            # Fp registers hold ordered encodings: fixed-point scaling,
            # Stream.modify integer ops, and LAZY's baseline subtraction
            # are all meaningless on them.
            if self.precision > 0:
                raise ValueError(
                    f"agg={self.agg.value} carries its own float codec; "
                    f"precision must be 0, got {self.precision}")
            if self.modify_op is not StreamOp.NOP:
                raise ValueError(
                    f"agg={self.agg.value} cannot combine with "
                    f"Stream.modify ({self.modify_op.value}): the modify "
                    f"ALU is integer-only")
            if self.clear is ClearPolicy.LAZY:
                raise ValueError(
                    f"agg={self.agg.value} cannot use clear=lazy: hosts "
                    f"cannot subtract a baseline in table-fp arithmetic")

    # ------------------------------------------------------------------
    @property
    def uses_get(self) -> bool:
        return self.get_field is not None

    @property
    def uses_add_to(self) -> bool:
        return self.add_to_field is not None

    @property
    def uses_map(self) -> bool:
        """Whether any primitive touches INC map registers.

        ``Map.clear`` counts: a clearing method must address the real
        registers of its keys even when it neither reads nor adds.
        """
        return (self.uses_get or self.uses_add_to or self.cntfwd.counts
                or self.clear is not ClearPolicy.NOP)

    @property
    def uses_floats(self) -> bool:
        return self.precision > 0

    def describe(self) -> str:
        """One-line human summary, used in controller logs."""
        parts = [f"app={self.app_name}", f"precision={self.precision}"]
        if self.agg is not AggOp.ADD:
            parts.append(f"agg={self.agg.value}")
        if self.uses_get:
            parts.append(f"get={self.get_field}")
        if self.uses_add_to:
            parts.append(f"addTo={self.add_to_field}")
        if self.clear is not ClearPolicy.NOP:
            parts.append(f"clear={self.clear.value}")
        if self.modify_op is not StreamOp.NOP:
            parts.append(f"modify={self.modify_op.value}({self.modify_para})")
        if self.cntfwd.counts:
            parts.append(f"cntfwd(to={self.cntfwd.target.value}, "
                         f"th={self.cntfwd.threshold})")
        else:
            parts.append(f"fwd={self.cntfwd.target.value}")
        return " ".join(parts)
