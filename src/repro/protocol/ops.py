"""``Stream.modify`` arithmetic operations (paper Appendix A, Table 8).

These run on the packet's value stream at line rate without touching
the INC map.  All operations are 32-bit: arithmetic saturates, bitwise
operations wrap, shifts behave like the switch ALU (logical shift on
the 32-bit pattern).
"""

from __future__ import annotations

import enum
from typing import Tuple

from .arith import UINT32_MASK, saturating_add, wrap32

__all__ = ["StreamOp", "apply_stream_op"]


class StreamOp(enum.Enum):
    """The operation selector carried in the packet's OpType field."""

    NOP = "nop"
    MAX = "max"
    MIN = "min"
    ADD = "add"
    ASSIGN = "assign"
    SHIFTL = "shiftl"
    SHIFTR = "shiftr"
    BAND = "band"
    BOR = "bor"
    BNOT = "bnot"
    BXOR = "bxor"

    @classmethod
    def parse(cls, text: str) -> "StreamOp":
        """Parse the NetFilter spelling of an operation (case-insensitive)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            valid = ", ".join(op.value for op in cls)
            raise ValueError(
                f"unknown Stream.modify op {text!r}; expected one of: {valid}"
            ) from None


def apply_stream_op(op: StreamOp, value: int, para: int) -> Tuple[int, bool]:
    """Apply ``op`` to one stream value; returns ``(result, overflowed)``.

    ``para`` is the static operand from the NetFilter (Table 2:
    ``stream.value = op(stream.value, para)``).
    """
    if op is StreamOp.NOP:
        return value, False
    if op is StreamOp.MAX:
        return max(value, para), False
    if op is StreamOp.MIN:
        return min(value, para), False
    if op is StreamOp.ADD:
        return saturating_add(value, para)
    if op is StreamOp.ASSIGN:
        return para, False
    if op is StreamOp.SHIFTL:
        return wrap32((value & UINT32_MASK) << (para & 31)), False
    if op is StreamOp.SHIFTR:
        return wrap32((value & UINT32_MASK) >> (para & 31)), False
    if op is StreamOp.BAND:
        return wrap32(value & para), False
    if op is StreamOp.BOR:
        return wrap32(value | para), False
    if op is StreamOp.BNOT:
        return wrap32(~value), False
    if op is StreamOp.BXOR:
        return wrap32(value ^ para), False
    raise AssertionError(f"unhandled op {op}")  # pragma: no cover
