"""Columnar kv payload: the packet's data section as parallel columns.

The paper's headline numbers come from the switch processing all 32 kv
slots of a packet in one pipeline pass (Fig. 14, §5.2.3).  Modelling
that payload as 32 ``KVPair`` objects made every multicast,
retransmission, and server return pay 32 object constructions and every
pipeline primitive pay 32 rounds of attribute chasing.  :class:`KVBlock`
stores the same data as parallel columns:

* ``addrs``  — ``array('q')`` of switch addresses (physical when mapped,
  logical otherwise);
* ``values`` — ``array('q')`` of slot values (int32 payloads; 64-bit
  headroom for the software path's exact arithmetic);
* ``mapped_mask`` — an int bitmask, bit *i* set when slot *i* carries a
  granted physical address;
* ``keys``   — a side list of opaque application keys, or ``None`` when
  every key is ``None``.

Copying a block is a handful of C-level buffer copies
(:meth:`KVBlock.copy`), and slot access from the batch kernels
(:meth:`~repro.switchsim.registers.RegisterFile.add_block` and friends)
is index arithmetic on the columns.  :class:`KVSlot` is a write-through
view of one slot, so existing row-oriented code (``pkt.kv[0].value``)
keeps working without materialising objects on the hot paths.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, List, Optional

from .ops import StreamOp, apply_stream_op

__all__ = ["KVBlock", "KVSlot"]


class KVSlot:
    """Write-through view of one kv slot of a :class:`KVBlock`.

    Mirrors the old ``KVPair`` attribute interface (``addr``, ``value``,
    ``mapped``, ``key``); reads and writes go straight to the block's
    columns.  Created on demand by ``block[i]`` / iteration — hot code
    should index the columns instead.
    """

    __slots__ = ("_block", "_index")

    def __init__(self, block: "KVBlock", index: int):
        self._block = block
        self._index = index

    @property
    def addr(self) -> int:
        return self._block.addrs[self._index]

    @addr.setter
    def addr(self, addr: int) -> None:
        self._block.addrs[self._index] = addr

    @property
    def value(self) -> int:
        return self._block.values[self._index]

    @value.setter
    def value(self, value: int) -> None:
        self._block.values[self._index] = value

    @property
    def mapped(self) -> bool:
        return bool(self._block.mapped_mask >> self._index & 1)

    @mapped.setter
    def mapped(self, mapped: bool) -> None:
        if mapped:
            self._block.mapped_mask |= 1 << self._index
        else:
            self._block.mapped_mask &= ~(1 << self._index)

    @property
    def key(self) -> Any:
        keys = self._block.keys
        return keys[self._index] if keys is not None else None

    @key.setter
    def key(self, key: Any) -> None:
        block = self._block
        if block.keys is None:
            if key is None:
                return
            block.keys = [None] * len(block.addrs)
        block.keys[self._index] = key

    def copy(self):
        """A detached row-object snapshot of this slot (a ``KVPair``)."""
        from .packets import KVPair
        return KVPair(self.addr, self.value, self.mapped, self.key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<KVSlot addr={self.addr} value={self.value} "
                f"mapped={self.mapped} key={self.key!r}>")


class KVBlock:
    """Columnar storage for a packet's kv slots (up to 32 of them)."""

    __slots__ = ("addrs", "values", "mapped_mask", "keys")

    def __init__(self, addrs: Optional[array] = None,
                 values: Optional[array] = None,
                 mapped_mask: int = 0,
                 keys: Optional[List[Any]] = None):
        self.addrs = addrs if addrs is not None else array("q")
        self.values = values if values is not None else array("q")
        self.mapped_mask = mapped_mask
        self.keys = keys

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Any]) -> "KVBlock":
        """Build a block from row objects (``KVPair`` or slot views)."""
        addrs = array("q")
        values = array("q")
        mask = 0
        keys: Optional[List[Any]] = None
        for index, pair in enumerate(pairs):
            addrs.append(pair.addr)
            values.append(pair.value)
            if pair.mapped:
                mask |= 1 << index
            key = pair.key
            if key is not None and keys is None:
                keys = [None] * index
            if keys is not None:
                keys.append(key)
        return cls(addrs, values, mask, keys)

    @classmethod
    def from_columns(cls, addrs: Iterable[int], values: Iterable[int],
                     mapped_mask: int = 0,
                     keys: Optional[List[Any]] = None) -> "KVBlock":
        """Build directly from columns (no per-slot object traffic).

        ``mapped_mask`` of ``-1`` selects every slot.  ``keys`` is kept
        by reference — hand over a fresh list.
        """
        addr_col = array("q", addrs)
        block = cls(addr_col, array("q", values),
                    mapped_mask if mapped_mask >= 0
                    else (1 << len(addr_col)) - 1,
                    keys)
        return block

    def append(self, addr: int, value: int, mapped: bool = False,
               key: Any = None) -> None:
        index = len(self.addrs)
        self.addrs.append(addr)
        self.values.append(value)
        if mapped:
            self.mapped_mask |= 1 << index
        if key is not None and self.keys is None:
            self.keys = [None] * index
        if self.keys is not None:
            self.keys.append(key)

    # ------------------------------------------------------------------
    # container protocol (compat with the old List[KVPair] interface)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.addrs)

    def __bool__(self) -> bool:
        return len(self.addrs) > 0

    def __getitem__(self, index: int) -> KVSlot:
        n = len(self.addrs)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"kv slot {index} out of range (block of {n})")
        return KVSlot(self, index)

    def __iter__(self) -> Iterator[KVSlot]:
        for index in range(len(self.addrs)):
            yield KVSlot(self, index)

    def key_at(self, index: int) -> Any:
        keys = self.keys
        return keys[index] if keys is not None else None

    # ------------------------------------------------------------------
    # bulk operations (the packet-copy / kernel fast paths)
    # ------------------------------------------------------------------
    def copy(self) -> "KVBlock":
        """O(columns) duplicate: buffer copies, no per-slot objects."""
        keys = self.keys
        return KVBlock(self.addrs[:], self.values[:], self.mapped_mask,
                       keys[:] if keys is not None else None)

    @property
    def any_mapped(self) -> bool:
        return self.mapped_mask != 0

    def full_mask(self) -> int:
        return (1 << len(self.addrs)) - 1

    def selected_contains(self, addr: int, select: int) -> bool:
        """Whether any ``select``-ed slot carries ``addr``.

        The full-selection case (the common one: every slot mapped and
        bitmap-selected) is a single C-level membership test.
        """
        addrs = self.addrs
        if select == (1 << len(addrs)) - 1:
            return addr in addrs
        for index, slot_addr in enumerate(addrs):
            if slot_addr == addr and select >> index & 1:
                return True
        return False

    def modify(self, op: StreamOp, para: int, select: int) -> bool:
        """Batch ``Stream.modify`` over the selected slots.

        Applies ``op`` in slot order (identical to the old per-kv loop)
        and returns whether any slot overflowed int32.
        """
        values = self.values
        overflowed = False
        for index in range(len(values)):
            if select >> index & 1:
                values[index], of = apply_stream_op(op, values[index], para)
                if of:
                    overflowed = True
        return overflowed

    def values_list(self) -> List[int]:
        """Plain-list snapshot of the value column."""
        return self.values.tolist()

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, KVBlock):
            return NotImplemented
        if (self.addrs != other.addrs or self.values != other.values
                or self.mapped_mask != other.mapped_mask):
            return False
        a, b = self.keys, other.keys
        if a == b:
            return True
        # A keys column of all-None is equivalent to no keys column.
        none_a = a is None or not any(k is not None for k in a)
        none_b = b is None or not any(k is not None for k in b)
        return none_a and none_b

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<KVBlock n={len(self.addrs)} "
                f"mapped={self.mapped_mask:#x} "
                f"keys={'yes' if self.keys is not None else 'no'}>")
