"""32-bit switch arithmetic and floating-point quantization (paper §5.2.1).

Programmable switch ALUs operate on 32-bit integers only.  NetRPC maps
floats to fixed point by multiplying with ``10**precision`` on the client
agent and dividing on the way back.  When an addition overflows the
32-bit range the switch clamps the result to ``INT32_MAX``/``INT32_MIN``
and sets the packet's overflow flag; the host agents treat any clamped
value as a suspected overflow and re-execute in software (§5.2.1,
including the documented MAX_INT false-positive).
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = [
    "INT32_MAX",
    "INT32_MIN",
    "UINT32_MASK",
    "saturating_add",
    "wrap32",
    "is_overflow_sentinel",
    "Quantizer",
]

INT32_MAX = 2**31 - 1
INT32_MIN = -(2**31)
UINT32_MASK = 2**32 - 1


def wrap32(value: int) -> int:
    """Two's-complement wrap of an arbitrary int into int32 range."""
    value &= UINT32_MASK
    return value - 2**32 if value > INT32_MAX else value


def saturating_add(a: int, b: int) -> Tuple[int, bool]:
    """Add two int32s the way the switch ALU does.

    Returns ``(result, overflowed)``; on overflow the result saturates to
    the nearest representable bound.
    """
    total = a + b
    if total > INT32_MAX:
        return INT32_MAX, True
    if total < INT32_MIN:
        return INT32_MIN, True
    return total, False


def is_overflow_sentinel(value: int) -> bool:
    """Whether a value *looks* overflowed to a host agent.

    Agents cannot distinguish a saturated result from a legitimate
    MAX_INT/MIN_INT; the paper accepts the false positive (an extra
    retry, never an incorrect result).
    """
    return value == INT32_MAX or value == INT32_MIN


class Quantizer:
    """Fixed-point codec for one application's ``Precision`` setting.

    ``precision`` is the number of decimal digits preserved after the
    point (the NetFilter ``Precision`` field).  ``precision=0`` means the
    application's values are already integers.
    """

    def __init__(self, precision: int = 0):
        if precision < 0:
            raise ValueError(f"precision must be >= 0, got {precision}")
        if precision > 9:
            raise ValueError(
                f"precision {precision} leaves no integer range in int32")
        self.precision = precision
        self.scale = 10 ** precision

    def encode(self, value: float) -> Tuple[int, bool]:
        """Quantize to fixed point.

        Returns ``(fixed, overflowed)``.  A value too large for int32
        saturates and reports overflow so the agent can route it through
        the software path up front; ±inf saturates the same way rather
        than leaking ``round()``'s OverflowError.  NaN is rejected — it
        has no fixed-point image and silently aggregating one would
        poison the result.
        """
        if not math.isfinite(value):
            if math.isnan(value):
                raise ValueError("cannot quantize NaN to fixed point")
            return (INT32_MAX if value > 0 else INT32_MIN), True
        fixed = round(value * self.scale)
        if fixed > INT32_MAX:
            return INT32_MAX, True
        if fixed < INT32_MIN:
            return INT32_MIN, True
        return int(fixed), False

    def decode(self, fixed: int) -> float:
        """Map a fixed-point value back to float."""
        if self.scale == 1:
            return float(fixed)
        return fixed / self.scale

    def roundtrip_error_bound(self) -> float:
        """Worst-case absolute quantization error for one value."""
        return 0.5 / self.scale

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Quantizer(precision={self.precision})"
