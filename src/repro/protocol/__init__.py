"""Wire-level protocol shared by the switch model, host agents, and RPC layer.

Contains the packet format (Figure 14), the RIP program representation
(the compiled NetFilter), 32-bit switch arithmetic with quantization
(§5.2.1), and the ``Stream.modify`` operation set (Appendix A).
"""

from .arith import (
    INT32_MAX,
    INT32_MIN,
    Quantizer,
    is_overflow_sentinel,
    saturating_add,
    wrap32,
)
from .fpcodec import (
    DEFAULT_FMAX_CODEC,
    DEFAULT_FP_CODEC,
    FPCodec,
    OrderedMaxCodec,
)
from .kvblock import KVBlock, KVSlot
from .ops import StreamOp, apply_stream_op
from .packets import KV_PAIRS_PER_PACKET, KVPair, Packet, full_bitmap
from .quantize import Int8BlockCodec, topk_indices, topk_sparsify
from .rips import (
    AggOp,
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    RIPProgram,
    RetryMode,
)

__all__ = [
    "INT32_MAX", "INT32_MIN", "Quantizer", "is_overflow_sentinel",
    "saturating_add", "wrap32",
    "FPCodec", "OrderedMaxCodec", "DEFAULT_FP_CODEC", "DEFAULT_FMAX_CODEC",
    "Int8BlockCodec", "topk_indices", "topk_sparsify",
    "StreamOp", "apply_stream_op",
    "Packet", "KVPair", "KVBlock", "KVSlot", "KV_PAIRS_PER_PACKET",
    "full_bitmap",
    "RIPProgram", "CntFwdSpec", "ClearPolicy", "ForwardTarget", "RetryMode",
    "AggOp",
]
