"""The NetRPC packet format (paper Figure 14, Appendix B.1).

One packet carries up to 32 key-value pairs plus three groups of header
fields: computation control (primitive selection, op type, bitmap,
CntFwd counter index), transmission control (GAID, sequence number,
flip bit, SRRT slot, routing flags), and optional non-INC payload.

The size model follows the paper's reported range: 192 bytes for a
fully linear packet (keys elided) up to 320 bytes with explicit keys
and CntFwd fields.  The ``payload`` rides along opaquely (collision
keys, plain gRPC fields) and only contributes its byte count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from .kvblock import KVBlock, KVSlot
from .ops import StreamOp

__all__ = ["KVPair", "KVBlock", "KVSlot", "Packet", "KV_PAIRS_PER_PACKET",
           "full_bitmap"]

KV_PAIRS_PER_PACKET = 32

# Header byte budget (matching the paper's 192-320 byte packets):
#   Ethernet + IPv4 + UDP framing               42
#   GAID, seq, flip/SRRT, flags, bitmap, op     14
_BASE_HEADER_BYTES = 56
_BYTES_PER_VALUE = 4
_BYTES_PER_KEY = 4
_CNTFWD_FIELD_BYTES = 8
_GRANT_BYTES = 8
_ACK_SEQ_BYTES = 4

_packet_ids = itertools.count()


def full_bitmap(n: int = KV_PAIRS_PER_PACKET) -> int:
    """Bitmap selecting the first ``n`` kv slots for processing."""
    if not 0 <= n <= KV_PAIRS_PER_PACKET:
        raise ValueError(f"bitmap width must be in [0, {KV_PAIRS_PER_PACKET}]")
    return (1 << n) - 1


@dataclass(slots=True)
class KVPair:
    """One <key/index, value> tuple in the packet's data section.

    ``addr`` is a *physical* switch address when the client already holds
    a mapping grant, otherwise the 32-bit logical address (the ``mapped``
    flag distinguishes them).  ``key`` keeps the original application key
    so the server agent can process fallback pairs without a reverse map.
    """

    addr: int
    value: int
    mapped: bool = False
    key: Any = None

    def copy(self) -> "KVPair":
        return KVPair(self.addr, self.value, self.mapped, self.key)


@dataclass
class Packet:
    """A NetRPC wire packet.

    Mutable on purpose: the switch rewrites values in place as the paper's
    pipeline does.  Use :meth:`copy` before multicasting or retransmitting
    so receivers do not alias each other's data.
    """

    gaid: int
    src: str                       # sending host name
    dst: str                       # destination host name
    seq: int = 0
    flip: int = 0
    srrt: int = -1                 # switch bitmap slot; -1 = no reliable state
    flow_id: int = 0               # sender-local flow (worker thread) index

    # --- computation control ------------------------------------------
    op_type: StreamOp = StreamOp.NOP
    op_para: int = 0
    bitmap: int = 0
    is_cnf: bool = False
    cnt_index: int = 0
    is_clr: bool = False
    is_of: bool = False
    # Shadow clear policy: signed offset from each kv address to its
    # mirror register, cleared while this packet's data accumulates in
    # the active region (§5.2.2, "shadow").  0 disables.
    shadow_offset: int = 0

    # --- routing / transmission control --------------------------------
    is_cross: bool = False         # must reach the server agent
    is_sa: bool = False            # originates from the server agent
    is_mcast: bool = False
    is_ack: bool = False
    ecn: bool = False              # link-level mark on THIS packet
    # Switch-recorded data-path congestion echoed on return packets (the
    # paper's "ECN written to the INC map", §5.1): tells the *sender's*
    # flows to slow down, independent of reverse-path congestion.
    ecn_echo: bool = False
    client_id: int = 0

    # --- data -----------------------------------------------------------
    # Stored columnar (a KVBlock); list-of-KVPair arguments are converted
    # in __post_init__ so row-oriented construction keeps working.
    kv: KVBlock = field(default_factory=KVBlock)
    linear_base: Optional[int] = None  # linear addressing: keys elided
    payload: Any = None
    payload_bytes: int = 0

    # --- piggybacked transport/control info -----------------------------
    acks: Tuple[int, ...] = ()
    grants: Tuple[Tuple[int, int], ...] = ()   # (logical, physical) pairs
    revokes: Tuple[int, ...] = ()              # logical addrs being evicted
    ack_flow: int = 0                          # flow the acks refer to

    # --- task framing (4 bytes each, folded into the header budget) ------
    task_id: int = -1
    offset: int = 0                # first kv's position within the task
    task_total: int = 0            # total kv pairs in the task (0 = unknown)
    round: int = 0                 # application round (RPC call ordinal)
    uid: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: float = 0.0
    is_retransmit: bool = False

    # Cached wire size (plain class attribute, not a dataclass field).
    # Every size-affecting field is settled before a packet first hits a
    # link, so the first ``size_bytes`` read freezes the value; ``copy``
    # drops the cache.
    _size = None

    def __post_init__(self):
        if not isinstance(self.kv, KVBlock):
            self.kv = KVBlock.from_pairs(self.kv)
        if len(self.kv) > KV_PAIRS_PER_PACKET:
            raise ValueError(
                f"a packet carries at most {KV_PAIRS_PER_PACKET} kv pairs, "
                f"got {len(self.kv)}")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """On-the-wire size under the paper's packing optimisations."""
        size = self._size
        if size is not None:
            return size
        nkv = len(self.kv)
        size = _BASE_HEADER_BYTES + nkv * _BYTES_PER_VALUE
        if self.linear_base is None:
            size += nkv * _BYTES_PER_KEY
        if self.is_cnf:
            size += _CNTFWD_FIELD_BYTES
        size += len(self.grants) * _GRANT_BYTES
        size += len(self.acks) * _ACK_SEQ_BYTES
        size += len(self.revokes) * _ACK_SEQ_BYTES
        size += self.payload_bytes
        self._size = size
        return size

    @property
    def chunk_id(self) -> Tuple[int, int]:
        """Identifies the logical data chunk across all senders.

        Used to match CntFwd result packets back to each client's pending
        sequence number.
        """
        return (self.task_id, self.offset)

    def slot_selected(self, index: int) -> bool:
        """Whether kv slot ``index`` is selected by the bitmap."""
        return bool(self.bitmap >> index & 1)

    def select_all_slots(self) -> None:
        self.bitmap = full_bitmap(len(self.kv))

    def copy(self) -> "Packet":
        """Deep-enough copy for multicast/retransmission (kv duplicated)."""
        # Hand-rolled (no dataclasses.replace): copy() sits on the
        # retransmit and multicast hot paths and replace() re-runs the
        # 30-field __init__.  Non-field state (the size cache, the
        # switch's recirculation mark) deliberately does not carry over,
        # matching replace() semantics.
        dup = object.__new__(Packet)
        state = dict(self.__dict__)
        state["kv"] = self.kv.copy()
        state["uid"] = next(_packet_ids)
        state.pop("_size", None)
        state.pop("_recirculated", None)
        # First transmissions put the pending-table entry itself on the
        # wire, so the switch's processed mark lands on the sender's own
        # object; a retransmit copy must not inherit that first trip.
        state.pop("switch_processed", None)
        dup.__dict__.update(state)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "ACK" if self.is_ack else ("SA" if self.is_sa else "DATA")
        return (f"<Packet {kind} gaid={self.gaid} seq={self.seq} "
                f"{self.src}->{self.dst} kv={len(self.kv)} "
                f"{self.size_bytes}B>")
