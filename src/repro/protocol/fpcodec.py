"""Table-based floating point for the switch dataplane (NetFC-style).

Programmable switch ALUs have no floating-point unit.  NetFC (PAPERS.md)
shows that fp arithmetic is still feasible: operands are split into
sign/exponent/mantissa fields and combined through match-action *lookup
tables* whose finite resolution truncates the mantissa.  This module is
the behavioural model of that design, sized to NetRPC's 32-bit register
width:

* a value is packed as ``sign(1) | exponent(8, biased) | mantissa(16)``
  into the low 25 bits of a register — ``INT32_MAX``, the sticky-
  overflow read sentinel, is therefore never a valid encoding;
* the wire/register representation is the *ordered* form: the packed
  magnitude, negated for negative values.  Zero encodes to integer 0
  (a cleared register reads as ``+0.0``), and integer comparison of two
  ordered encodings matches float comparison — which is what lets
  ``FMAX`` run as a plain integer max on the switch;
* ``add_bits`` models the exponent-alignment tables: the smaller
  operand's mantissa is right-shifted with *truncation* (the table-
  resolution error), the signed mantissas are added, and the result is
  renormalised with truncation.  Exponent overflow saturates to the
  largest finite encoding and reports overflow, feeding the same sticky
  sidecar / software-recovery machinery as integer saturation (§5.2.1).

Error model (documented so tests can assert it): encoding rounds the
mantissa (relative error ≤ 2^-(mantissa_bits+1)); each table add
truncates at most one ulp during alignment and one during
renormalisation, so

    |table_add(a, b) - (a + b)| <= 2^(1 - mantissa_bits)
                                   * max(|a|, |b|, |a + b|) + 2 * tiny

where ``tiny`` is the subnormal ulp (absolute truncation floor).  The
:meth:`FPCodec.sum_error_bound` helper integrates this over an n-term
accumulation; the Hypothesis differential suite
(tests/switchsim/test_fp_kernels.py) drives random tensors against an
IEEE float64 reference and asserts the bound.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Tuple

__all__ = ["FPCodec", "OrderedMaxCodec", "DEFAULT_FP_CODEC",
           "DEFAULT_FMAX_CODEC"]


class FPCodec:
    """Sign/exponent/mantissa codec plus the switch's table arithmetic.

    ``exponent_bits`` and ``mantissa_bits`` size the lookup tables; the
    defaults (8, 16) mirror NetFC's fp16-accuracy-in-32-bit layout and
    must fit the register: ``1 + exponent_bits + mantissa_bits <= 31``.
    """

    def __init__(self, exponent_bits: int = 8, mantissa_bits: int = 16):
        if exponent_bits < 2 or mantissa_bits < 2:
            raise ValueError("need at least 2 exponent and 2 mantissa bits")
        if 1 + exponent_bits + mantissa_bits > 31:
            raise ValueError(
                f"sign+{exponent_bits}+{mantissa_bits} bits do not fit a "
                f"32-bit register below the INT32_MAX sentinel")
        self.exponent_bits = exponent_bits
        self.mantissa_bits = mantissa_bits
        self.bias = (1 << (exponent_bits - 1)) - 1
        self.exp_max = (1 << exponent_bits) - 1       # largest finite field
        self._mant_mask = (1 << mantissa_bits) - 1
        self._implicit = 1 << mantissa_bits
        # Largest finite ordered magnitude: exp_max with all-ones mantissa.
        self.max_ordered = (self.exp_max << mantissa_bits) | self._mant_mask
        # Smallest positive (subnormal ulp): exponent field 0, mantissa 1.
        self.tiny = math.ldexp(1.0, 1 - self.bias - mantissa_bits)
        self.max_value = self.decode(self.max_ordered)

    # ------------------------------------------------------------------
    # wire codec (the interface the RPC layer's IEDT path expects)
    # ------------------------------------------------------------------
    def encode(self, value: float) -> Tuple[int, bool]:
        """Float -> (ordered encoding, overflowed).

        Values beyond the largest finite encoding saturate (sign
        preserved) and report overflow, exactly like the fixed-point
        :class:`~repro.protocol.arith.Quantizer`.  NaN is rejected —
        the switch tables have no NaN row and silently aggregating one
        would poison the result.
        """
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot encode NaN as switch floating point")
        negative = value < 0 or (value == 0 and math.copysign(1, value) < 0)
        mag = -value if negative else value
        if math.isinf(mag):
            bits = self.max_ordered
            return (-bits if negative else bits), True
        if mag == 0.0:
            return 0, False
        frac, exp2 = math.frexp(mag)           # mag = frac * 2**exp2
        e = exp2 - 1 + self.bias               # implicit-bit exponent field
        if e >= 1:
            sig = round(math.ldexp(frac, self.mantissa_bits + 1))
            if sig >= self._implicit << 1:     # rounding carried over
                sig >>= 1
                e += 1
            if e > self.exp_max:
                bits = self.max_ordered
                return (-bits if negative else bits), True
            bits = (e << self.mantissa_bits) | (sig - self._implicit)
        else:
            # Subnormal range: fixed ulp of 2**(1 - bias - mantissa_bits).
            sig = round(mag / self.tiny)
            if sig == 0:
                return 0, False
            if sig >= self._implicit:          # rounded up into normals
                bits = 1 << self.mantissa_bits
            else:
                bits = sig
        return (-bits if negative else bits), False

    def decode(self, ordered: int) -> float:
        """Ordered encoding -> float (exact; every encoding is a float)."""
        if ordered == 0:
            return 0.0
        negative = ordered < 0
        mag = -ordered if negative else ordered
        e = mag >> self.mantissa_bits
        m = mag & self._mant_mask
        if e == 0:
            value = m * self.tiny
        else:
            value = math.ldexp(m | self._implicit,
                               e - self.bias - self.mantissa_bits)
        return -value if negative else value

    # ------------------------------------------------------------------
    # table arithmetic (what the switch pipeline executes per register)
    # ------------------------------------------------------------------
    def add_bits(self, a: int, b: int) -> Tuple[int, bool]:
        """Table-based fp add over two ordered encodings.

        Returns ``(ordered result, overflowed)``.  Alignment and
        renormalisation truncate (the table-resolution error); exponent
        overflow saturates to the largest finite encoding.
        """
        if a == 0:
            return b, False
        if b == 0:
            return a, False
        sign_a, mag_a = (a < 0), abs(a)
        sign_b, mag_b = (b < 0), abs(b)
        mant_bits = self.mantissa_bits
        ea = mag_a >> mant_bits
        eb = mag_b >> mant_bits
        sa = mag_a & self._mant_mask
        sb = mag_b & self._mant_mask
        # Subnormals (field 0) share the exponent scale of field 1 and
        # carry no implicit bit.
        if ea == 0:
            ea = 1
        else:
            sa |= self._implicit
        if eb == 0:
            eb = 1
        else:
            sb |= self._implicit
        # Align to the larger exponent; the smaller mantissa loses its
        # shifted-out bits (the finite exponent-difference table).
        if ea >= eb:
            exp, sb = ea, sb >> (ea - eb)
        else:
            exp, sa = eb, sa >> (eb - ea)
        total = (-sa if sign_a else sa) + (-sb if sign_b else sb)
        if total == 0:
            return 0, False
        negative = total < 0
        sig = -total if negative else total
        # Renormalise: a carry shifts right with truncation; cancellation
        # shifts left until the implicit bit returns or the exponent
        # floor is hit (gradual underflow into the subnormal range).
        while sig >= self._implicit << 1:
            sig >>= 1
            exp += 1
        if exp > self.exp_max:
            return (-self.max_ordered if negative
                    else self.max_ordered), True
        while sig < self._implicit and exp > 1:
            sig <<= 1
            exp -= 1
        if sig < self._implicit:               # subnormal result
            bits = sig
        else:
            bits = (exp << mant_bits) | (sig - self._implicit)
        return (-bits if negative else bits), False

    @staticmethod
    def max_bits(a: int, b: int) -> int:
        """Fp max over ordered encodings: a plain integer max."""
        return a if a >= b else b

    # ------------------------------------------------------------------
    # documented error bounds (what the differential tests assert)
    # ------------------------------------------------------------------
    def roundtrip_error_bound(self, value: float) -> float:
        """Worst-case |decode(encode(v)) - v| for one finite value."""
        return math.ldexp(abs(value), -(self.mantissa_bits + 1)) + \
            self.tiny / 2

    def add_error_bound(self, a: float, b: float) -> float:
        """Worst-case extra error of one table add vs an exact add."""
        largest = max(abs(a), abs(b), abs(a + b))
        return math.ldexp(largest, 1 - self.mantissa_bits) + 2 * self.tiny

    def sum_error_bound(self, values: Iterable[float]) -> float:
        """Worst-case |table-accumulated - exact sum| for a sequential
        accumulation of already-encoded ``values`` (any order).

        Each of the n-1 adds contributes at most ``2^(1-mantissa_bits)``
        relative to the largest magnitude in play, which is itself
        bounded by the sum of absolute values; each encode contributes
        half an ulp.  Loose by design — a *bound*, not an estimate.
        """
        mags = [abs(v) for v in values]
        n = len(mags)
        if n == 0:
            return 0.0
        total_mag = sum(mags)
        per_op = math.ldexp(total_mag, 1 - self.mantissa_bits) + 2 * self.tiny
        per_encode = math.ldexp(total_mag, -(self.mantissa_bits + 1)) + \
            n * self.tiny / 2
        return max(0, n - 1) * per_op + per_encode

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FPCodec(exponent_bits={self.exponent_bits}, "
                f"mantissa_bits={self.mantissa_bits})")


class OrderedMaxCodec:
    """Wire codec for ``agg=fmax``: biased ordered encodings.

    The fp *add* wants a cleared register to read as ``+0.0`` (the add
    identity), but the fp *max* wants it to sit below every finite
    value.  FMAX therefore shifts the ordered encoding by
    ``max_ordered + 1`` so the representable range maps to
    ``[1, 2*max_ordered + 1]`` — strictly positive, still far below the
    ``INT32_MAX`` sticky sentinel, and order-preserving, so the switch
    kernel remains a plain integer max.  A cleared register (0) then
    compares below every contribution and decodes to ``-max_value``
    (the finite stand-in for the max identity).
    """

    def __init__(self, base: Optional[FPCodec] = None):
        self.base = base if base is not None else FPCodec()
        self.offset = self.base.max_ordered + 1

    def encode(self, value: float) -> Tuple[int, bool]:
        ordered, overflowed = self.base.encode(value)
        return ordered + self.offset, overflowed

    def decode(self, biased: int) -> float:
        if biased == 0:          # cleared register: below everything
            return -self.base.max_value
        return self.base.decode(biased - self.offset)

    def roundtrip_error_bound(self, value: float) -> float:
        return self.base.roundtrip_error_bound(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OrderedMaxCodec({self.base!r})"


#: The deployment-wide codec: NetFC's layout scaled to the 32-bit
#: register width.  Pipeline kernels and host agents share this single
#: instance so encodings agree end to end.
DEFAULT_FP_CODEC = FPCodec()

#: The agg=fmax wire codec over the same table layout.
DEFAULT_FMAX_CODEC = OrderedMaxCodec(DEFAULT_FP_CODEC)
