"""Approximate aggregation codecs: int8 block quantization and top-k.

Two lossy gradient-compression modes that ride the *integer* switch
kernels (no new dataplane arithmetic needed — the loss is taken host
side, the switch still does exact saturating int adds):

* **Int8 block quantization** — a block of floats is scaled by a single
  per-block factor, rounded to signed 8-bit codes, and the codes are
  what the switch accumulates.  With ``W`` workers the accumulated code
  stays within ``W * 127`` — far from 32-bit saturation — and decoding
  multiplies by the shared scale.  For cross-worker aggregation all
  workers must use the *same* scale (otherwise the switch would add
  incommensurate units), so the INC path uses a shared clip-derived
  scale; the per-block ``scale=None`` form serves single-party storage.
  Round-trip error is at most ``scale / 2`` per value per contribution.

* **Top-k sparsification** — each worker sends only ``k`` coordinates
  and the switch dense-merges them into the value region.  For the
  merged result to equal the dense aggregate *on the selected
  coordinates*, all workers must pick the same coordinate set
  (coordinated top-k, as in sparse all-reduce systems); the convergence
  harness selects against the previous round's aggregate so selection
  is data-driven yet identical across workers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["Int8BlockCodec", "topk_indices", "topk_sparsify"]

INT8_MAX = 127
INT8_MIN = -127  # symmetric range so negation round-trips


class Int8BlockCodec:
    """Block quantizer: floats -> signed int8 codes under one scale."""

    def encode_block(self, values: Sequence[float],
                     scale: Optional[float] = None,
                     ) -> Tuple[float, List[int]]:
        """Quantize ``values``; returns ``(scale, codes)``.

        With ``scale=None`` the per-block scale ``max|v| / 127`` is
        derived (exact representation of the extreme value); an explicit
        ``scale`` is clamped to — i.e. codes saturate at ±127, which is
        the clipping behaviour distributed trainers rely on.
        """
        if scale is None:
            peak = max((abs(float(v)) for v in values), default=0.0)
            # peak / 127 underflows to 0.0 for denormal peaks; unit
            # scale keeps the scale/2 error bound trivially valid there.
            scale = peak / INT8_MAX
            if scale <= 0:
                scale = 1.0
        elif scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        codes = []
        for v in values:
            q = round(float(v) / scale)
            if q > INT8_MAX:
                q = INT8_MAX
            elif q < INT8_MIN:
                q = INT8_MIN
            codes.append(q)
        return scale, codes

    def decode_block(self, scale: float, codes: Sequence[int]) -> List[float]:
        """Codes (possibly switch-accumulated, so beyond ±127) -> floats."""
        return [c * scale for c in codes]

    def error_bound(self, scale: float, contributions: int = 1) -> float:
        """Worst-case per-value round-trip error for in-range inputs:
        half a quantization step per contributing worker."""
        return contributions * scale / 2


def topk_indices(values: Sequence[float], k: int) -> List[int]:
    """Indices of the k largest-magnitude entries, ascending order.

    Ties break toward the lower index — deterministic, so coordinated
    selection (every worker ranking the same reference vector) yields
    the same set everywhere.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k >= len(values):
        return list(range(len(values)))
    ranked = sorted(range(len(values)),
                    key=lambda i: (-abs(float(values[i])), i))
    return sorted(ranked[:k])


def topk_sparsify(values: Sequence[float], k: int,
                  indices: Optional[Sequence[int]] = None,
                  ) -> Tuple[List[int], List[float]]:
    """Sparsify ``values`` to ``(indices, selected values)``.

    Pass ``indices`` to force a coordinated selection (the INC path);
    omit it for local top-k of this vector.
    """
    idx = list(indices) if indices is not None else topk_indices(values, k)
    return idx, [float(values[i]) for i in idx]
