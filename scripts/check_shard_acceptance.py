"""CI gate: sharded co-simulation determinism acceptance (§4.9).

The contract the shard runner ships under: running a rack-scale
scenario with ``REPRO_SHARD_WORKERS=2`` (fork-based worker processes)
must be *bit-identical* to the ``workers=1`` in-process run — same
per-flow records, same merged link counters, same per-shard event
counts, same scheduler stats, same run fingerprint — and both must be
results-identical to one ``Simulator`` executing the whole structure.
The multi-worker leg runs once per transport — zero-copy shared-memory
frames and the pickled-pipe fallback — so the fixed-width codec and the
shm slots are themselves pinned to change nothing.  A chaos variant
repeats the check with intra-shard link faults armed, pinning the
chaos-schedule fingerprint across worker counts too.

Exits non-zero (with a diff summary) on any divergence.

Usage:  PYTHONPATH=src python scripts/check_shard_acceptance.py [--fast]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.exp_fattree import build_scenario
from repro.shard import (WORKERS_ENV, default_workers, results_identical,
                         run_sharded, run_unsharded)


def _diff(label: str, one: dict, two: dict) -> None:
    keys = [k for k in one if one[k] != two.get(k)]
    print(f"FAIL [{label}]: comparable_state diverges on {keys}",
          file=sys.stderr)


def check(scenario: str, fast: bool, chaos: bool,
          workers: int) -> bool:
    label = f"{scenario}{'+chaos' if chaos else ''}"
    scenario_obj, partition = build_scenario(scenario, fast=fast, seed=0,
                                             chaos=chaos)
    one = run_sharded(scenario_obj, partition=partition, workers=1)

    ok = True
    state_one = one.comparable_state()
    for transport in ("shm", "pipe"):
        many = run_sharded(scenario_obj, partition=partition,
                           workers=workers, transport=transport)
        state_many = many.comparable_state()
        if state_one != state_many:
            _diff(f"{label}/{many.transport}", state_one, state_many)
            ok = False
        if one.events_per_shard != many.events_per_shard:
            print(f"FAIL [{label}/{many.transport}]: event counts "
                  f"{one.events_per_shard} != {many.events_per_shard}",
                  file=sys.stderr)
            ok = False
        if one.chaos_fingerprint != many.chaos_fingerprint:
            print(f"FAIL [{label}/{many.transport}]: chaos fingerprints "
                  f"differ", file=sys.stderr)
            ok = False

    reference = run_unsharded(scenario_obj)
    if not results_identical(one, reference):
        print(f"FAIL [{label}]: sharded results != single-simulator "
              f"reference", file=sys.stderr)
        ok = False

    if ok:
        print(f"ok [{label}]: workers=1 == workers={workers} over "
              f"shm and pipe ({one.n_shards} shards, {one.rounds} "
              f"barriers, {one.horizon_rounds_skipped} horizon rounds "
              f"skipped, {one.total_events:,} events, fingerprint "
              f"{one.fingerprint[:12]}…) == unsharded "
              f"({reference.events:,} events)")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small workloads for CI smoke runs")
    parser.add_argument("--scenario", default="rackscale",
                        help="scenario family member for the clean run "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    workers = default_workers()
    if os.environ.get(WORKERS_ENV) is None:
        workers = 2
    print(f"shard acceptance: workers={workers} "
          f"({WORKERS_ENV}={os.environ.get(WORKERS_ENV, 'unset')})")

    ok = check(args.scenario, fast=args.fast, chaos=False, workers=workers)
    ok &= check("rack4", fast=args.fast, chaos=True, workers=workers)
    if not ok:
        return 1
    print("shard acceptance: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
