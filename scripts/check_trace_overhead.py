"""CI gate: disabled tracing must cost <= 2% of the simcore hot path.

The zero-overhead-when-disabled contract (DESIGN.md §Observability) is
that every instrumentation site compiles down to

    if TRACE.enabled:        # one attribute load + falsy branch
        ...

This script verifies the contract *deterministically* instead of
A/B-benchmarking two checkouts (which is hostage to machine load):

1. microbenchmark the exact disabled-path guard, net of loop overhead;
2. measure the per-packet cost of the lossless-link smoke driver
   (``bench_simcore.drive_link``) with tracing disabled and the deep-
   backlog chain batching pinned off — the *per-event* path is where
   every trace guard lives (a traced run always takes it; the batch
   walk elides those events entirely), so it is the honest per-packet
   budget to amortize the guards against;
3. assert ``guard_cost * GUARDS_PER_PACKET / per_packet_cost <= 2%``,
   with ``GUARDS_PER_PACKET`` a deliberate over-count of the trace
   guards a packet can cross per simulated hop;
4. repeat the amortization for a *sharded* run (rack2, workers=1):
   the per-event cost of the shard fabric — whose boundary stubs
   (``repro.shard.boundary``) carry their own TRACE call sites,
   including the PR 10 ``boundary.deliver`` instant — must likewise
   absorb the disabled guards inside the same 2% budget.

A loose absolute rate floor backstops each ratio check: if a driver
itself collapsed (e.g. recording sneaked onto the disabled path), the
ratio could look fine while the simulator got slow.

Usage:  PYTHONPATH=src python scripts/check_trace_overhead.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

from bench_simcore import drive_link, drive_raw_events    # noqa: E402

from repro.obs.tracer import TRACE                        # noqa: E402

# Generous over-count of `if TRACE.enabled` sites one packet can cross
# per hop: link send + queue pop + host receive + host cpu + switch
# receive + pipeline kernel + flow transmit + flow ack.
GUARDS_PER_PACKET = 8
MAX_OVERHEAD_FRACTION = 0.02

# Guard over-count per *event* on the sharded flow fabric.  The worst
# event is a boundary egress send crossing the queue-drop, ecn, and
# serialize/propagate guard sites (ShardEgressLink.send); an ingress
# replay crosses one (boundary.deliver).  6 doubles the worst case —
# the fabric has no RPC-stack guards, so the link-driver figure of 8
# per packet does not apply per event here.
SHARD_GUARDS_PER_EVENT = 6

# Catastrophe floors (~3x below the recorded baseline rates): these
# fire only if the hot path fundamentally regressed, not on CI jitter.
MIN_LINK_PPS = 120_000.0
MIN_RAW_EVENTS_PER_SEC = 350_000.0
MIN_SHARD_EVENTS_PER_SEC = 30_000.0

_N = 2_000_000


def _guard_cost_s() -> float:
    """Per-iteration cost of the disabled guard, net of loop overhead."""
    assert not TRACE.enabled, "guard must be measured with tracing off"

    def guarded() -> float:
        start = perf_counter()
        for _ in range(_N):
            if TRACE.enabled:
                TRACE.record("x", 0.0, 1.0, "y")
        return (perf_counter() - start) / _N

    def empty() -> float:
        start = perf_counter()
        for _ in range(_N):
            pass
        return (perf_counter() - start) / _N

    return max(0.0, min(guarded() for _ in range(3))
               - min(empty() for _ in range(3)))


def _sharded_per_event_s() -> float:
    """Untraced per-event cost of the sharded fabric (rack2, workers=1).

    ``sum(work_s)`` is pure shard simulation time (injection, run,
    drain) — coordinator bookkeeping is excluded, which makes the
    per-event denominator *smaller* and the overhead bound stricter.
    """
    from repro.experiments.exp_fattree import build_scenario
    from repro.shard import run_sharded

    assert not TRACE.enabled, "sharded leg must run untraced"
    scenario, partition = build_scenario("rack2", fast=True, seed=0)
    best = float("inf")
    for _ in range(3):
        result = run_sharded(scenario, partition=partition, workers=1)
        best = min(best, sum(result.work_s) / result.total_events)
    return best


def main() -> int:
    guard = _guard_cost_s()
    # chain_batch_min above n_packets keeps the link on the per-event
    # path every trace guard sits on (see module docstring).
    link_pps = max(drive_link(50_000, chain_batch_min=1 << 30)
                   for _ in range(3))
    events_per_sec = max(drive_raw_events(200_000) for _ in range(3))
    per_packet = 1.0 / link_pps

    shard_per_event = _sharded_per_event_s()
    shard_events_per_sec = 1.0 / shard_per_event

    overhead = guard * GUARDS_PER_PACKET / per_packet
    shard_overhead = guard * SHARD_GUARDS_PER_EVENT / shard_per_event
    print(f"disabled guard     : {guard * 1e9:8.1f} ns")
    print(f"lossless link      : {link_pps:12,.0f} pkts/s "
          f"({per_packet * 1e9:.0f} ns/pkt)")
    print(f"raw event dispatch : {events_per_sec:12,.0f} events/s")
    print(f"sharded fabric     : {shard_events_per_sec:12,.0f} events/s "
          f"({shard_per_event * 1e9:.0f} ns/event, rack2 workers=1)")
    print(f"worst-case overhead: {overhead:.2%} "
          f"({GUARDS_PER_PACKET} guards/pkt, budget "
          f"{MAX_OVERHEAD_FRACTION:.0%})")
    print(f"sharded overhead   : {shard_overhead:.2%} "
          f"({SHARD_GUARDS_PER_EVENT} guards/event incl. boundary "
          f"stubs, budget {MAX_OVERHEAD_FRACTION:.0%})")

    failures = []
    if overhead > MAX_OVERHEAD_FRACTION:
        failures.append(
            f"disabled-tracing overhead {overhead:.2%} exceeds "
            f"{MAX_OVERHEAD_FRACTION:.0%}: the guard is no longer a "
            f"single attribute check")
    if shard_overhead > MAX_OVERHEAD_FRACTION:
        failures.append(
            f"sharded disabled-tracing overhead {shard_overhead:.2%} "
            f"exceeds {MAX_OVERHEAD_FRACTION:.0%}: a boundary-stub "
            f"trace site grew beyond the guarded pattern")
    if link_pps < MIN_LINK_PPS:
        failures.append(f"link driver collapsed: {link_pps:,.0f} pkts/s "
                        f"< floor {MIN_LINK_PPS:,.0f}")
    if events_per_sec < MIN_RAW_EVENTS_PER_SEC:
        failures.append(f"event dispatch collapsed: "
                        f"{events_per_sec:,.0f}/s "
                        f"< floor {MIN_RAW_EVENTS_PER_SEC:,.0f}")
    if shard_events_per_sec < MIN_SHARD_EVENTS_PER_SEC:
        failures.append(f"sharded fabric collapsed: "
                        f"{shard_events_per_sec:,.0f} events/s "
                        f"< floor {MIN_SHARD_EVENTS_PER_SEC:,.0f}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("ok: zero-overhead-when-disabled contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
