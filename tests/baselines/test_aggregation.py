"""Tests for the SwitchML / ATP / BytePS aggregation baselines."""

import pytest

from repro.baselines import build_aggregation_job
from repro.netsim import RandomLoss, ScriptedLoss, scaled

CAL = scaled()


class TestConstruction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_aggregation_job("magic", 2, 100, cal=CAL)

    def test_byteps_gets_multiple_parameter_servers(self):
        job = build_aggregation_job("byteps", 2, 10, cal=CAL)
        ps_names = {w._dst_for(c) for w in job.workers for c in range(16)}
        assert len(ps_names) == 8


class TestCompletion:
    @pytest.mark.parametrize("kind", ["switchml", "atp", "byteps"])
    def test_all_chunks_complete(self, kind):
        job = build_aggregation_job(kind, n_workers=2, total_chunks=200,
                                    cal=CAL)
        goodput = job.run()
        assert goodput > 0
        for worker in job.workers:
            assert len(worker.completed) == 200

    @pytest.mark.parametrize("kind", ["switchml", "atp"])
    def test_switch_aggregates_before_forwarding(self, kind):
        job = build_aggregation_job(kind, n_workers=3, total_chunks=50,
                                    cal=CAL)
        job.run()
        switch = job.workers[0].host.egress["sw0"].dst
        assert switch.stats["completions"] == 50
        # Below-threshold contributions are absorbed in-network.
        assert switch.stats["absorbed"] == 50 * 2

    @pytest.mark.parametrize("kind", ["switchml", "atp", "byteps"])
    def test_completes_under_loss(self, kind):
        job = build_aggregation_job(
            kind, n_workers=2, total_chunks=100, cal=CAL, seed=3,
            loss_factory=lambda: RandomLoss(0.02))
        job.run(limit=120)
        for worker in job.workers:
            assert len(worker.completed) == 100


class TestRelativeBehaviour:
    def test_clean_ordering_matches_paper(self):
        """ATP > BytePS > SwitchML in clean per-sender goodput (§6.4)."""
        goodputs = {}
        for kind in ("switchml", "atp", "byteps"):
            job = build_aggregation_job(kind, n_workers=2,
                                        total_chunks=2000, cal=CAL)
            goodputs[kind] = job.run()
        assert goodputs["atp"] > goodputs["byteps"]
        assert goodputs["byteps"] > goodputs["switchml"]

    def test_switchml_degrades_most_under_loss(self):
        """Figure 10: in-order slot reuse is fragile, OOO windows are not."""
        ratios = {}
        for kind in ("switchml", "atp"):
            clean = build_aggregation_job(kind, 2, 1500, cal=CAL).run()
            lossy = build_aggregation_job(
                kind, 2, 1500, cal=CAL, seed=7,
                loss_factory=lambda: RandomLoss(0.01)).run(limit=120)
            ratios[kind] = lossy / clean
        assert ratios["switchml"] < ratios["atp"]

    def test_atp_window_halves_on_timeouts(self):
        job = build_aggregation_job(
            "atp", n_workers=2, total_chunks=500, cal=CAL, seed=1,
            loss_factory=lambda: RandomLoss(0.05))
        job.run(limit=120)
        assert any(w.window < w._max_window for w in job.workers)

    def test_scripted_loss_recovers_exact_chunk(self):
        # Drop exactly the first transmission on one uplink: the chunk
        # must still complete via retransmission.
        job = build_aggregation_job(
            "switchml", n_workers=2, total_chunks=10, cal=CAL,
            loss_factory=lambda: ScriptedLoss([0]))
        job.run()
        assert all(len(w.completed) == 10 for w in job.workers)
        retx = sum(w.stats["retransmits"] for w in job.workers)
        assert retx >= 1
