"""Tests for P4xos and software Paxos baselines (Figure 7)."""

import pytest

from repro.baselines import P4xosCluster, SoftwarePaxosCluster
from repro.netsim import scaled

CAL = scaled()


class TestP4xos:
    def test_decides_every_instance(self):
        cluster = P4xosCluster(cal=CAL)
        report = cluster.run(100, window=8)
        assert len(report.decided) == 100

    def test_sub_rtt_decision_latency(self):
        """One switch traversal: latency well under a host round trip."""
        cluster = P4xosCluster(cal=CAL)
        report = cluster.run(50, window=1)
        # One-way proposer->switch->learner plus host processing.
        assert report.latency.p(99) < 20e-6

    def test_acceptor_replicas_multiply_learner_traffic(self):
        single = P4xosCluster(cal=CAL, acceptor_replicas=1)
        single.run(100, window=8)
        triple = P4xosCluster(cal=CAL, acceptor_replicas=3)
        triple.run(100, window=8)
        rx1 = sum(h.stats["rx_pkts"] for h in single.learners)
        rx3 = sum(h.stats["rx_pkts"] for h in triple.learners)
        assert rx3 == 3 * rx1


class TestSoftwarePaxos:
    def test_libpaxos_decides_every_instance(self):
        cluster = SoftwarePaxosCluster(dpdk=False, cal=CAL)
        report = cluster.run(50, window=4)
        assert len(report.decided) == 50

    def test_dpdk_faster_than_kernel(self):
        kernel = SoftwarePaxosCluster(dpdk=False, cal=CAL)
        kernel_report = kernel.run(300, window=8)
        dpdk = SoftwarePaxosCluster(dpdk=True, cal=CAL)
        dpdk_report = dpdk.run(300, window=8)
        assert dpdk_report.throughput_msgs_per_s > \
            kernel_report.throughput_msgs_per_s
        assert dpdk_report.latency.p(99) < kernel_report.latency.p(99)

    def test_majority_required_before_learn(self):
        cluster = SoftwarePaxosCluster(n_acceptors=3, dpdk=True, cal=CAL)
        report = cluster.run(20, window=2)
        assert len(report.decided) == 20
        assert cluster.majority == 2


class TestFigure7Shape:
    def test_inc_systems_beat_software(self):
        p4 = P4xosCluster(cal=CAL).run(300, window=8)
        lib = SoftwarePaxosCluster(dpdk=False, cal=CAL).run(300, window=8)
        dpdk = SoftwarePaxosCluster(dpdk=True, cal=CAL).run(300, window=8)
        assert p4.throughput_msgs_per_s > dpdk.throughput_msgs_per_s
        assert dpdk.throughput_msgs_per_s > lib.throughput_msgs_per_s
        assert p4.latency.p(99) < dpdk.latency.p(99) < lib.latency.p(99)
