"""Tests for the ElasticSketch baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import ElasticSketch, SketchPacket, SketchSwitch
from repro.netsim import Host, Simulator, scaled, star
from repro.workloads import SyntheticTrace

CAL = scaled()


class TestElasticSketchStructure:
    def test_single_flow_exact(self):
        sketch = ElasticSketch()
        for _ in range(100):
            sketch.insert("flow-a")
        assert sketch.query("flow-a") == 100

    def test_unseen_flow_estimates_small(self):
        sketch = ElasticSketch()
        sketch.insert("flow-a", 50)
        assert sketch.query("flow-zzz") <= 50

    def test_estimates_never_undercount_much(self):
        """Count-min style: estimates are upper bounds per flow (when the
        heavy bucket is clean) or near the true count."""
        sketch = ElasticSketch(heavy_buckets=64, light_counters=1024)
        trace = SyntheticTrace(n_flows=200, seed=4)
        records = list(trace.packets(5000))
        truth = trace.exact_counts(records)
        for record in records:
            sketch.insert(record.flow_id)
        for flow, count in truth.items():
            assert sketch.query(flow) >= count  # no undercounting

    def test_heavy_hitters_found(self):
        sketch = ElasticSketch()
        trace = SyntheticTrace(n_flows=500, seed=1)
        records = list(trace.packets(20_000))
        truth = trace.exact_counts(records)
        for record in records:
            sketch.insert(record.flow_id)
        top_true = sorted(truth, key=truth.get, reverse=True)[:5]
        hitters = sketch.heavy_hitters(threshold=truth[top_true[-1]])
        assert set(top_true) <= set(hitters)

    def test_eviction_moves_counts_to_light_part(self):
        sketch = ElasticSketch(heavy_buckets=1, eviction_lambda=1)
        sketch.insert("a", 2)
        for _ in range(10):
            sketch.insert("b")   # votes against "a" until eviction
        assert sketch.query("a") >= 2
        assert sketch.query("b") >= 10

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ElasticSketch(heavy_buckets=0)

    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                    max_size=200))
    def test_property_total_mass_preserved_or_overcounted(self, flows):
        sketch = ElasticSketch(heavy_buckets=2, light_counters=64)
        truth = {}
        for flow in flows:
            sketch.insert(flow)
            truth[flow] = truth.get(flow, 0) + 1
        for flow, count in truth.items():
            assert sketch.query(flow) >= count


class TestSketchSwitch:
    def build(self):
        sim = Simulator()
        switch = SketchSwitch(sim, "sw0", cal=CAL)
        monitor = Host(sim, "m0")
        star(sim, switch, [monitor], cal=CAL)
        return sim, switch, monitor

    def test_reports_are_absorbed_at_switch(self):
        sim, switch, monitor = self.build()
        monitor.send(SketchPacket(kind="report", src="m0", dst="sw0",
                                  flows={"f": 3}), "sw0")
        sim.run()
        assert switch.sketch.query("f") == 3
        assert switch.stats["reports"] == 1

    def test_queries_bounce_with_estimates(self):
        sim, switch, monitor = self.build()
        replies = []
        monitor.set_handler(lambda p, l: replies.append(p))
        monitor.send(SketchPacket(kind="report", src="m0", dst="sw0",
                                  flows={"f": 7}), "sw0")
        monitor.send(SketchPacket(kind="query", src="m0", dst="sw0",
                                  flows={"f": 0}), "sw0")
        sim.run()
        assert len(replies) == 1
        assert replies[0].flows["f"] == 7
