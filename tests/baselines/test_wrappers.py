"""Tests for the ASK / software-INC wrapper baselines."""

import pytest

from repro.baselines import ask_programs, register_ask, register_software_inc
from repro.control import build_rack
from repro.inc import Task
from repro.netsim import scaled

CAL = scaled()


class TestAskWrapper:
    def test_ask_uses_hash_addressing(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, _query_cfg = register_ask(dep, server="s0",
                                              clients=["c0"])
        assert reduce_cfg.cache_policy == "hash"
        assert reduce_cfg.has_switch

    def test_ask_aggregates_exactly(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, query_cfg = register_ask(dep, server="s0",
                                             clients=["c0"],
                                             value_slots=1024)
        agent = dep.client_agent(0)
        for _ in range(3):
            done = agent.submit(Task(app=reduce_cfg, items=[("k", 4)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=dep.sim.now + 10.0)
            dep.sim.run(until=dep.sim.now + 0.01)
        done = agent.submit(Task(app=query_cfg, items=[("k", 0)],
                                 expect_result=True))
        result = dep.sim.run_until(done, limit=dep.sim.now + 10.0)
        assert result.values["k"] == 12

    def test_program_shapes(self):
        reduce_prog, query_prog = ask_programs("X")
        assert reduce_prog.uses_add_to and not reduce_prog.uses_get
        assert query_prog.uses_get and not query_prog.uses_add_to


class TestSoftwareIncWrapper:
    def test_registers_without_switch(self):
        dep = build_rack(1, 1, cal=CAL)
        configs = register_software_inc(dep, server="s0", clients=["c0"])
        assert all(not c.has_switch for c in configs)

    def test_software_results_exact(self):
        dep = build_rack(1, 1, cal=CAL)
        reduce_cfg, query_cfg = register_software_inc(
            dep, server="s0", clients=["c0"])
        agent = dep.client_agent(0)
        done = agent.submit(Task(app=reduce_cfg,
                                 items=[("a", 1), ("b", 2)],
                                 expect_result=False))
        dep.sim.run_until(done, limit=dep.sim.now + 10.0)
        done = agent.submit(Task(app=query_cfg,
                                 items=[("a", 0), ("b", 0)],
                                 expect_result=True))
        result = dep.sim.run_until(done, limit=dep.sim.now + 10.0)
        assert result.values == {"a": 1, "b": 2}
        # Everything took the server path.
        assert result.fallback_pairs == 2
