"""Misc stub/channel behaviours: rounds, CallInfo, server snapshots."""

import pytest

from repro.control import build_rack
from repro.core import Channel, NetRPCService, ServerStub, register_service
from repro.netsim import scaled

CAL = scaled()

PROTO = """
import "netrpc.proto";
message Push { netrpc.STRINTMap kvs = 1; }
message PushAck { string msg = 1; }
message Read { netrpc.STRINTMap kvs = 1; }
message ReadOut { netrpc.STRINTMap kvs = 1; }
service KV {
  rpc Push (Push) returns (PushAck) {} filter "push.nf"
  rpc Read (Read) returns (ReadOut) {} filter "read.nf"
}
"""

FILTERS = {
    "push.nf": """{"AppName": "KV-1", "addTo": "Push.kvs",
                   "CntFwd": {"to": "SRC", "threshold": 0}}""",
    "read.nf": """{"AppName": "KV-1", "get": "ReadOut.kvs",
                   "CntFwd": {"to": "SRC", "threshold": 0}}""",
}


def make(clients=("c0",)):
    dep = build_rack(len(clients), 1, cal=CAL)
    service = NetRPCService.from_text(PROTO, "KV", FILTERS)
    registered = register_service(dep, service, server="s0",
                                  clients=list(clients))
    return dep, registered


class TestRounds:
    def test_rounds_auto_increment_per_method(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        push = registered.binding("Push").request
        stub.call("Push", push(kvs={"a": 1}))
        stub.call("Push", push(kvs={"a": 1}))
        assert stub._rounds["Push"] == 2
        assert "Read" not in stub._rounds

    def test_explicit_round_does_not_advance_counter(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        push = registered.binding("Push").request
        stub.call("Push", push(kvs={"a": 1}), round=7)
        assert "Push" not in stub._rounds


class TestCallInfo:
    def test_info_reports_paths(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        push = registered.binding("Push").request
        _, first = stub.call("Push", push(kvs={"x": 1}))
        dep.sim.run(until=dep.sim.now + 0.01)
        _, second = stub.call("Push", push(kvs={"x": 1}))
        assert first.fallback_pairs == 1 and first.mapped_pairs == 0
        assert second.mapped_pairs == 1 and second.fallback_pairs == 0
        assert second.cache_hit_ratio == 1.0
        assert first.overflow_chunks == 0


class TestServerSnapshot:
    def test_inc_map_snapshot_merges_switch_and_software(self):
        dep, registered = make()
        server = ServerStub(registered)
        stub = Channel(registered, "c0").stub()
        push = registered.binding("Push").request
        stub.call("Push", push(kvs={"a": 3, "b": 4}))   # software path
        dep.sim.run(until=dep.sim.now + 0.01)
        stub.call("Push", push(kvs={"a": 5}))           # switch path
        dep.sim.run(until=dep.sim.now + 0.01)
        snapshot = server.inc_map_snapshot()
        assert snapshot["a"] == 8
        assert snapshot["b"] == 4

    def test_snapshot_without_switch_part(self):
        dep, registered = make()
        server = ServerStub(registered)
        stub = Channel(registered, "c0").stub()
        push = registered.binding("Push").request
        stub.call("Push", push(kvs={"a": 3}))
        dep.sim.run(until=dep.sim.now + 0.01)
        software_only = server.inc_map_snapshot(include_switch=False)
        assert software_only.get("a", 0) in (0, 3)


class TestMultiClientSharing:
    def test_grants_shared_across_clients_via_server(self):
        dep, registered = make(clients=("c0", "c1"))
        stub0 = Channel(registered, "c0").stub()
        stub1 = Channel(registered, "c1").stub()
        push = registered.binding("Push").request
        read = registered.binding("Read").request
        stub0.call("Push", push(kvs={"shared": 10}))
        dep.sim.run(until=dep.sim.now + 0.02)
        stub1.call("Push", push(kvs={"shared": 5}))
        dep.sim.run(until=dep.sim.now + 0.02)
        reply, _ = stub0.call("Read", read(kvs={"shared": 0}))
        assert reply.kvs["shared"] == 15
