"""Tests for message descriptors, dynamic messages, and marshalling."""

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import FieldDescriptor, Message, MessageDescriptor


def grad_descriptor():
    return MessageDescriptor("NewGrad", [
        FieldDescriptor("tensor", "netrpc.FPArray", 1),
        FieldDescriptor("note", "string", 2),
        FieldDescriptor("step", "int32", 3),
    ])


def kv_descriptor():
    return MessageDescriptor("ReduceRequest", [
        FieldDescriptor("kvs", "netrpc.STRINTMap", 1),
        FieldDescriptor("flag", "bool", 2),
        FieldDescriptor("weight", "double", 3),
        FieldDescriptor("blob", "bytes", 4),
    ])


class TestFieldDescriptor:
    def test_scalar_defaults(self):
        assert FieldDescriptor("x", "int32", 1).default() == 0
        assert FieldDescriptor("x", "string", 1).default() == ""
        assert FieldDescriptor("x", "double", 1).default() == 0.0
        assert FieldDescriptor("x", "bool", 1).default() is False
        assert FieldDescriptor("x", "bytes", 1).default() == b""

    def test_iedt_defaults(self):
        assert FieldDescriptor("x", "netrpc.FPArray", 1).default() == []
        assert FieldDescriptor("x", "netrpc.STRINTMap", 1).default() == {}

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown field type"):
            FieldDescriptor("x", "varchar", 1)

    def test_bad_tag_rejected(self):
        with pytest.raises(ValueError):
            FieldDescriptor("x", "int32", 0)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            FieldDescriptor("2x", "int32", 1)


class TestMessageDescriptor:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MessageDescriptor("M", [FieldDescriptor("a", "int32", 1),
                                    FieldDescriptor("a", "int32", 2)])

    def test_duplicate_tags_rejected(self):
        with pytest.raises(ValueError):
            MessageDescriptor("M", [FieldDescriptor("a", "int32", 1),
                                    FieldDescriptor("b", "int32", 1)])

    def test_iedt_field_listing(self):
        desc = grad_descriptor()
        assert [f.name for f in desc.iedt_fields()] == ["tensor"]
        assert [f.name for f in desc.scalar_fields()] == ["note", "step"]


class TestMessageInstances:
    def test_construction_with_kwargs(self):
        msg = grad_descriptor()(tensor=[1.0, 2.0], note="hi", step=3)
        assert msg.tensor == [1.0, 2.0]
        assert msg.note == "hi"
        assert msg.step == 3

    def test_defaults(self):
        msg = grad_descriptor()()
        assert msg.tensor == [] and msg.note == "" and msg.step == 0

    def test_unknown_field_rejected(self):
        msg = grad_descriptor()()
        with pytest.raises(AttributeError):
            msg.missing = 1
        with pytest.raises(AttributeError):
            _ = msg.missing

    def test_type_validation(self):
        msg = grad_descriptor()()
        with pytest.raises(TypeError):
            msg.tensor = {"not": "a list"}
        with pytest.raises(TypeError):
            msg.note = 42
        with pytest.raises(TypeError):
            msg.step = True  # bools are not ints here

    def test_int_promotes_to_float(self):
        msg = kv_descriptor()(weight=2)
        assert msg.weight == 2.0

    def test_equality(self):
        a = grad_descriptor()(step=1)
        b = grad_descriptor()(step=1)
        c = grad_descriptor()(step=2)
        assert a == b and a != c


class TestWireRoundtrip:
    def test_full_roundtrip(self):
        desc = grad_descriptor()
        msg = desc(tensor=[0.5, -1.25], note="gradient", step=-7)
        decoded = Message.from_bytes(desc, msg.to_bytes())
        assert decoded == msg

    def test_map_roundtrip(self):
        desc = kv_descriptor()
        msg = desc(kvs={"apple": 3, "pear": -4}, flag=True, weight=2.5,
                   blob=b"\x00\x01")
        decoded = Message.from_bytes(desc, msg.to_bytes())
        assert decoded == msg

    def test_scalar_only_marshalling_excludes_iedts(self):
        desc = grad_descriptor()
        msg = desc(tensor=[1.0] * 100, note="x")
        partial = Message.from_bytes(desc, msg.to_bytes(include_iedt=False))
        assert partial.tensor == []
        assert partial.note == "x"

    def test_byte_size_reflects_payload(self):
        desc = grad_descriptor()
        small = desc(note="a").byte_size()
        big = desc(note="a" * 100).byte_size()
        assert big - small == 99

    def test_unknown_tags_are_skipped(self):
        narrow = MessageDescriptor("M", [FieldDescriptor("a", "int32", 1)])
        wide = MessageDescriptor("M", [FieldDescriptor("a", "int32", 1),
                                       FieldDescriptor("b", "string", 9)])
        msg = wide(a=-5, b="ignored")
        decoded = Message.from_bytes(narrow, msg.to_bytes())
        assert decoded.a == -5

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=50),
           st.text(max_size=30),
           st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_property_roundtrip(self, tensor, note, step):
        desc = grad_descriptor()
        msg = desc(tensor=tensor, note=note, step=step)
        assert Message.from_bytes(desc, msg.to_bytes()) == msg

    @given(st.dictionaries(st.text(min_size=1, max_size=10),
                           st.integers(min_value=-2**31, max_value=2**31),
                           max_size=20))
    def test_property_map_roundtrip(self, kvs):
        desc = kv_descriptor()
        msg = desc(kvs=kvs)
        assert Message.from_bytes(desc, msg.to_bytes()).kvs == kvs
