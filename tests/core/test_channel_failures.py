"""RPC-layer behaviour under unusual conditions."""

import pytest

from repro.control import build_rack
from repro.core import Channel, NetRPCService, RpcError, register_service
from repro.netsim import scaled

CAL = scaled()

PROTO = """
import "netrpc.proto";
message Req { netrpc.STRINTMap kvs = 1; }
message Rep { netrpc.STRINTMap kvs = 1; }
service S {
  rpc Get (Req) returns (Rep) {} filter "get.nf"
}
"""

FILTER = """{"AppName": "CF", "get": "Rep.kvs",
             "CntFwd": {"to": "SRC", "threshold": 0}}"""


def make():
    dep = build_rack(1, 1, cal=CAL)
    service = NetRPCService.from_text(PROTO, "S", {"get.nf": FILTER})
    registered = register_service(dep, service, server="s0",
                                  clients=["c0"])
    return dep, registered


class TestBlockingCallErrors:
    def test_call_timeout_raises_rpc_error(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        request = registered.binding("Get").request(kvs={"k": 0})
        # Sever the client's uplink so nothing ever completes.
        dep.topology.link("c0", "sw0").loss = type(
            "Drop", (), {"drops": staticmethod(lambda p, r: True)})()
        with pytest.raises(RpcError):
            stub.call("Get", request, timeout=0.002)

    def test_empty_request_completes(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        reply, info = stub.call("Get",
                                registered.binding("Get").request(kvs={}))
        assert reply.kvs == {}
        assert info.mapped_pairs == 0 and info.fallback_pairs == 0

    def test_unread_keys_default_to_zero(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        reply, _ = stub.call(
            "Get", registered.binding("Get").request(
                kvs={"never-written": 0}))
        assert reply.kvs == {"never-written": 0}


class TestConcurrentCallsOneClient:
    def test_many_outstanding_calls_all_complete(self):
        dep, registered = make()
        stub = Channel(registered, "c0").stub()
        request_type = registered.binding("Get").request
        events = [stub.call_async("Get",
                                  request_type(kvs={f"k{i}": 0}))
                  for i in range(40)]
        for event in events:
            reply, _ = dep.sim.run_until(event, limit=dep.sim.now + 30.0)
            assert set(reply.kvs.values()) <= {0}
