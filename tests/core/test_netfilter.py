"""Tests for NetFilter parsing (paper Figure 3 and Appendix D examples)."""

import json

import pytest

from repro.core import NetFilterError, netfilter_to_json, parse_netfilter
from repro.protocol import ClearPolicy, ForwardTarget, RetryMode, StreamOp

PAPER_AGTR = """{
  "AppName": "DT-1",
  "Precision": 8,
  "get": "AgtrGrad.tensor",
  "addTo": "NewGrad.tensor",
  "clear": "copy",
  "modify": "nop",
  "CntFwd": {"to": "ALL", "threshold": 2, "key": "ClientID"}
}"""

PAPER_REDUCE = """{
  "AppName": "MR-1",
  "Precision": 0,
  "get": "nop",
  "addTo": "ReduceRequest.kvs",
  "clear": "nop",
  "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 0, "key": "NULL"}
}"""

PAPER_LOCK = """{
  "AppName": "LS-1",
  "Precision": 0,
  "get": "nop",
  "addTo": "nop",
  "clear": "nop",
  "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 1, "key": "LockRequest.kvs"}
}"""


class TestPaperFilters:
    def test_gradient_filter(self):
        program = parse_netfilter(PAPER_AGTR)
        assert program.app_name == "DT-1"
        assert program.precision == 8
        assert program.get_field == "AgtrGrad.tensor"
        assert program.add_to_field == "NewGrad.tensor"
        assert program.clear is ClearPolicy.COPY
        assert program.cntfwd.target is ForwardTarget.ALL
        assert program.cntfwd.threshold == 2
        assert program.retry is RetryMode.PERSIST

    def test_reduce_filter(self):
        program = parse_netfilter(PAPER_REDUCE)
        assert program.get_field is None
        assert program.add_to_field == "ReduceRequest.kvs"
        assert not program.cntfwd.counts
        assert program.cntfwd.target is ForwardTarget.SRC

    def test_lock_filter_defaults_to_fresh_retry(self):
        program = parse_netfilter(PAPER_LOCK)
        assert program.cntfwd.is_test_and_set
        assert program.retry is RetryMode.FRESH

    def test_dict_input_accepted(self):
        program = parse_netfilter(json.loads(PAPER_AGTR))
        assert program.app_name == "DT-1"


class TestModifyVariants:
    def test_string_with_parameter(self):
        program = parse_netfilter(
            {"AppName": "A", "modify": "add:5"})
        assert program.modify_op is StreamOp.ADD
        assert program.modify_para == 5

    def test_object_form(self):
        program = parse_netfilter(
            {"AppName": "A", "modify": {"op": "shiftl", "para": 2}})
        assert program.modify_op is StreamOp.SHIFTL
        assert program.modify_para == 2

    def test_bad_parameter(self):
        with pytest.raises(NetFilterError):
            parse_netfilter({"AppName": "A", "modify": "add:many"})

    def test_bad_form(self):
        with pytest.raises(NetFilterError):
            parse_netfilter({"AppName": "A", "modify": 5})


class TestValidation:
    def test_missing_app_name(self):
        with pytest.raises(NetFilterError, match="AppName"):
            parse_netfilter({"Precision": 0})

    def test_unknown_keys_rejected(self):
        with pytest.raises(NetFilterError, match="unknown NetFilter keys"):
            parse_netfilter({"AppName": "A", "color": "red"})

    def test_invalid_json(self):
        with pytest.raises(NetFilterError, match="invalid NetFilter JSON"):
            parse_netfilter("{not json")

    def test_field_reference_must_be_dotted(self):
        with pytest.raises(NetFilterError, match="Message.field"):
            parse_netfilter({"AppName": "A", "get": "tensor"})

    def test_bad_clear_policy(self):
        with pytest.raises(NetFilterError, match="clear policy"):
            parse_netfilter({"AppName": "A", "clear": "later"})

    def test_bad_cntfwd_target(self):
        with pytest.raises(NetFilterError, match="CntFwd target"):
            parse_netfilter({"AppName": "A", "CntFwd": {"to": "MARS"}})

    def test_negative_threshold(self):
        with pytest.raises(NetFilterError, match="threshold"):
            parse_netfilter({"AppName": "A",
                             "CntFwd": {"to": "SRC", "threshold": -1}})

    def test_unknown_cntfwd_keys(self):
        with pytest.raises(NetFilterError, match="unknown CntFwd keys"):
            parse_netfilter({"AppName": "A", "CntFwd": {"towards": "SRC"}})

    def test_bad_precision(self):
        with pytest.raises(NetFilterError):
            parse_netfilter({"AppName": "A", "Precision": "high"})

    def test_non_dict_source(self):
        with pytest.raises(NetFilterError):
            parse_netfilter(42)


class TestRoundtrip:
    def test_json_roundtrip(self):
        program = parse_netfilter(PAPER_AGTR)
        again = parse_netfilter(netfilter_to_json(program))
        assert again == program

    def test_roundtrip_with_modify_parameter(self):
        program = parse_netfilter({"AppName": "A", "modify": "bxor:255"})
        again = parse_netfilter(netfilter_to_json(program))
        assert again == program
