"""End-to-end Stream.modify tests through the public RPC API.

Stream.modify transforms values at line rate without touching the INC
map (Table 2 / Appendix A); these tests drive it through a NetFilter's
``modify`` clause.
"""

import pytest

from repro.control import build_rack
from repro.core import Channel, NetRPCService, register_service
from repro.netsim import scaled

CAL = scaled()

PROTO = """
import "netrpc.proto";
message Stream { netrpc.INT32Array values = 1; }
message StreamOut { netrpc.INT32Array values = 1; }
service Pipeline {
  rpc Transform (Stream) returns (StreamOut) {} filter "mod.nf"
}
"""


def modify_service(modify_clause: str):
    netfilter = f"""{{
      "AppName": "MOD", "Precision": 0,
      "get": "StreamOut.values", "addTo": "Stream.values",
      "clear": "copy", "modify": {modify_clause},
      "CntFwd": {{"to": "ALL", "threshold": 1, "key": "ClientID"}}
    }}"""
    dep = build_rack(1, 1, cal=CAL)
    service = NetRPCService.from_text(PROTO, "Pipeline",
                                      {"mod.nf": netfilter})
    registered = register_service(dep, service, server="s0",
                                  clients=["c0"])
    return dep, registered


@pytest.mark.parametrize("clause,inputs,expected", [
    ('"add:10"', [1, 2, 3], [11, 12, 13]),
    ('"shiftl:2"', [1, 2, 3], [4, 8, 12]),
    ('"band:6"', [7, 5, 12], [6, 4, 4]),
    ('{"op": "max", "para": 5}', [1, 9, 5], [5, 9, 5]),
    ('"bxor:255"', [0, 255], [255, 0]),
])
def test_modify_applies_in_network(clause, inputs, expected):
    dep, registered = modify_service(clause)
    stub = Channel(registered, "c0").stub()
    request = registered.binding("Transform").request(values=list(inputs))
    reply, _info = stub.call("Transform", request)
    assert reply.values == expected


def test_modify_composes_with_aggregation():
    """modify runs before addTo: two rounds accumulate transformed values."""
    dep, registered = modify_service('"add:1"')
    stub = Channel(registered, "c0").stub()
    request_type = registered.binding("Transform").request
    first, _ = stub.call("Transform", request_type(values=[10]), round=0)
    assert first.values == [11]
    second, _ = stub.call("Transform", request_type(values=[20]), round=1)
    # copy policy cleared between rounds: fresh accumulation.
    assert second.values == [21]
