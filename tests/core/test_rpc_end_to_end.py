"""End-to-end RPC layer tests: the full paper programming model.

Each test builds a service exactly the way a NetRPC user would — proto
text + NetFilter JSON + stubs — and checks application-visible results
across the four INC application types of Table 1.
"""

import pytest

from repro.control import build_rack
from repro.core import (
    Channel,
    NetFilterError,
    NetRPCService,
    RpcError,
    ServerStub,
    register_service,
)
from repro.netsim import scaled

CAL = scaled()

GRAD_PROTO = """
import "netrpc.proto";
message NewGrad { netrpc.FPArray tensor = 1; }
message AgtrGrad { netrpc.FPArray tensor = 1; }
service GradientService {
  rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
}
"""

GRAD_FILTER = """{
  "AppName": "DT-1", "Precision": 6,
  "get": "AgtrGrad.tensor", "addTo": "NewGrad.tensor",
  "clear": "copy", "modify": "nop",
  "CntFwd": {"to": "ALL", "threshold": 2, "key": "ClientID"}
}"""

MR_PROTO = """
import "netrpc.proto";
message ReduceRequest { netrpc.STRINTMap kvs = 1; }
message ReduceReply { string msg = 1; }
message QueryRequest { netrpc.STRINTMap kvs = 1; }
message QueryReply { netrpc.STRINTMap kvs = 1; }
service MapReduce {
  rpc ReduceByKey (ReduceRequest) returns (ReduceReply) {} filter "reduce.nf"
  rpc Query (QueryRequest) returns (QueryReply) {} filter "query.nf"
}
"""

MR_FILTERS = {
    "reduce.nf": """{
      "AppName": "MR-1", "Precision": 0,
      "get": "nop", "addTo": "ReduceRequest.kvs",
      "clear": "nop", "modify": "nop",
      "CntFwd": {"to": "SRC", "threshold": 0, "key": "NULL"}
    }""",
    "query.nf": """{
      "AppName": "MR-1", "Precision": 0,
      "get": "QueryReply.kvs", "addTo": "nop",
      "clear": "nop", "modify": "nop",
      "CntFwd": {"to": "SRC", "threshold": 0, "key": "NULL"}
    }""",
}


def grad_service(dep, clients=("c0", "c1")):
    service = NetRPCService.from_text(GRAD_PROTO, "GradientService",
                                      {"agtr.nf": GRAD_FILTER})
    return register_service(dep, service, server="s0", clients=clients)


def mr_service(dep, clients=("c0",)):
    service = NetRPCService.from_text(MR_PROTO, "MapReduce", MR_FILTERS)
    return register_service(dep, service, server="s0", clients=clients)


class TestSyncAggregationRPC:
    def test_two_clients_aggregate(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep)
        stub0 = Channel(registered, "c0").stub()
        stub1 = Channel(registered, "c1").stub()
        req_type = registered.binding("Update").request
        e0 = stub0.call_async("Update", req_type(tensor=[0.1] * 64), round=0)
        e1 = stub1.call_async("Update", req_type(tensor=[0.2] * 64), round=0)
        reply0, info0 = dep.sim.run_until(e0, limit=10.0)
        reply1, _ = dep.sim.run_until(e1, limit=10.0)
        assert reply0.tensor == pytest.approx([0.3] * 64, abs=1e-5)
        assert reply1.tensor == pytest.approx([0.3] * 64, abs=1e-5)
        assert info0.cache_hit_ratio == 1.0

    def test_training_loop_multiple_rounds(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep)
        stubs = [Channel(registered, c).stub() for c in ("c0", "c1")]
        req_type = registered.binding("Update").request
        for round_no in range(3):
            value = 0.01 * (round_no + 1)
            events = [s.call_async("Update", req_type(tensor=[value] * 32),
                                   round=round_no) for s in stubs]
            for event in events:
                reply, _ = dep.sim.run_until(event, limit=10.0)
                assert reply.tensor == pytest.approx([2 * value] * 32,
                                                     abs=1e-5)

    def test_server_round_handler_sees_aggregates(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep)
        server = ServerStub(registered)
        rounds = {}
        server.bind_round(lambda r, values: rounds.update({r: values}))
        stubs = [Channel(registered, c).stub() for c in ("c0", "c1")]
        req_type = registered.binding("Update").request
        events = [s.call_async("Update", req_type(tensor=[1.0] * 32),
                               round=0) for s in stubs]
        for event in events:
            dep.sim.run_until(event, limit=10.0)
        assert 0 in rounds
        # Values are fixed-point at precision 6.
        assert rounds[0][0] == 2_000_000


class TestMapReduceRPC:
    def test_reduce_then_query(self):
        dep = build_rack(1, 1, cal=CAL)
        registered = mr_service(dep)
        stub = Channel(registered, "c0").stub()
        reduce_req = registered.binding("ReduceByKey").request
        query_req = registered.binding("Query").request
        for _ in range(3):
            stub.call("ReduceByKey",
                      reduce_req(kvs={"apple": 2, "pear": 5}))
            dep.sim.run(until=dep.sim.now + 0.05)
        reply, info = stub.call("Query",
                                query_req(kvs={"apple": 0, "pear": 0}))
        assert reply.kvs == {"apple": 6, "pear": 15}

    def test_repeat_traffic_becomes_switch_hits(self):
        dep = build_rack(1, 1, cal=CAL)
        registered = mr_service(dep)
        stub = Channel(registered, "c0").stub()
        reduce_req = registered.binding("ReduceByKey").request
        _, first = stub.call("ReduceByKey", reduce_req(kvs={"k": 1}))
        dep.sim.run(until=dep.sim.now + 0.05)
        _, second = stub.call("ReduceByKey", reduce_req(kvs={"k": 1}))
        assert first.cache_hit_ratio == 0.0
        assert second.cache_hit_ratio == 1.0


class TestPlainRPC:
    PROTO = """
    message Ping { string text = 1; int32 n = 2; }
    message Pong { string text = 1; int32 n = 2; }
    service Echo { rpc Bounce (Ping) returns (Pong); }
    """

    def test_plain_call_reaches_handler(self):
        dep = build_rack(1, 1, cal=CAL)
        service = NetRPCService.from_text(self.PROTO, "Echo")
        registered = register_service(dep, service, server="s0",
                                      clients=["c0"], value_slots=0)
        server = ServerStub(registered)
        pong_type = registered.binding("Bounce").reply

        def handler(client, request):
            return pong_type(text=request.text.upper(), n=request.n + 1)

        server.bind("Bounce", handler)
        stub = Channel(registered, "c0").stub()
        ping_type = registered.binding("Bounce").request
        reply, _ = stub.call("Bounce", ping_type(text="hello", n=41))
        assert reply.text == "HELLO"
        assert reply.n == 42

    def test_unbound_method_returns_default_reply(self):
        dep = build_rack(1, 1, cal=CAL)
        service = NetRPCService.from_text(self.PROTO, "Echo")
        registered = register_service(dep, service, server="s0",
                                      clients=["c0"], value_slots=0)
        ServerStub(registered)
        stub = Channel(registered, "c0").stub()
        ping_type = registered.binding("Bounce").request
        reply, _ = stub.call("Bounce", ping_type(text="x"))
        assert reply.text == ""


class TestStubErgonomics:
    def test_attribute_style_dispatch(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep)
        stub0 = Channel(registered, "c0").stub()
        stub1 = Channel(registered, "c1").stub()
        req_type = registered.binding("Update").request
        # Drive both through attribute-style calls concurrently.
        event = stub1.call_async("Update", req_type(tensor=[1.0] * 32),
                                 round=0)
        reply, _ = stub0.Update(req_type(tensor=[1.0] * 32), round=0)
        assert reply.tensor == pytest.approx([2.0] * 32, abs=1e-5)
        dep.sim.run_until(event, limit=10.0)

    def test_unknown_method_attribute(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep)
        stub = Channel(registered, "c0").stub()
        with pytest.raises(AttributeError):
            stub.NoSuchMethod

    def test_wrong_request_type_rejected(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep)
        stub = Channel(registered, "c0").stub()
        wrong = registered.binding("Update").reply()  # AgtrGrad, not NewGrad
        with pytest.raises(RpcError):
            stub.call_async("Update", wrong)

    def test_channel_requires_registered_client(self):
        dep = build_rack(2, 1, cal=CAL)
        registered = grad_service(dep, clients=("c0",))
        with pytest.raises(ValueError):
            Channel(registered, "c1")


class TestServiceValidation:
    def test_filter_field_must_exist(self):
        bad_filter = """{
          "AppName": "X", "get": "AgtrGrad.missing",
          "addTo": "NewGrad.tensor"
        }"""
        with pytest.raises(NetFilterError, match="unknown field"):
            NetRPCService.from_text(GRAD_PROTO, "GradientService",
                                    {"agtr.nf": bad_filter})

    def test_filter_field_must_be_iedt(self):
        proto = """
        message A { string s = 1; }
        message B { string s = 1; }
        service S { rpc Go (A) returns (B) {} filter "f.nf" }
        """
        bad = '{"AppName": "X", "addTo": "A.s"}'
        with pytest.raises(NetFilterError, match="not an INC-enabled"):
            NetRPCService.from_text(proto, "S", {"f.nf": bad})

    def test_missing_filter_file(self):
        with pytest.raises(NetFilterError, match="no such filter"):
            NetRPCService.from_text(GRAD_PROTO, "GradientService", {})

    def test_mismatched_app_names_rejected(self):
        filters = dict(MR_FILTERS)
        filters["query.nf"] = filters["query.nf"].replace("MR-1", "OTHER")
        with pytest.raises(NetFilterError, match="share one"):
            NetRPCService.from_text(MR_PROTO, "MapReduce", filters)
