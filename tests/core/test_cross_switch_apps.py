"""Applications running across the dumbbell (clients and servers on
opposite switches), exercising multi-hop routing through the RPC API."""

import pytest

from repro.apps import LockService, WordCountJob
from repro.control import build_dumbbell
from repro.netsim import scaled
from repro.workloads import SyntheticCorpus, word_count

CAL = scaled()


class TestWordCountAcrossDumbbell:
    def test_counts_exact_across_switches(self):
        dep = build_dumbbell(2, 1, cal=CAL)
        corpus = SyntheticCorpus(vocabulary_size=150, seed=8)
        shards = {"c0": list(corpus.documents(3)),
                  "c1": list(corpus.documents(3))}
        job = WordCountJob(dep, batch_words=64)
        result = job.run(shards)
        expected = word_count(doc for docs in shards.values()
                              for doc in docs)
        assert result.counts == {w: expected.get(w, 0)
                                 for w in result.counts} and \
            all(result.counts.get(w, 0) == c for w, c in expected.items())


class TestLockAcrossDumbbell:
    def test_mutual_exclusion_across_switches(self):
        dep = build_dumbbell(2, 1, cal=CAL)
        lock = LockService(dep)
        lock.acquire("c0", "L")
        blocked = lock.acquire_async("c1", "L")
        dep.sim.run(until=dep.sim.now + 0.003)
        assert not blocked.triggered
        lock.release("c0", "L")
        dep.sim.run_until(blocked, limit=dep.sim.now + 10.0)

    def test_sub_rtt_grant_on_retry_path(self):
        """Once granted a mapping, lock attempts bounce at the edge switch."""
        dep = build_dumbbell(1, 1, cal=CAL)
        lock = LockService(dep)
        lock.acquire("c0", "L")     # grants the mapping
        lock.release("c0", "L")
        dep.sim.run(until=dep.sim.now + 0.01)
        before = dep.server_agent(0).stats["data_rx"]
        start = dep.sim.now
        lock.acquire("c0", "L")
        # Granted by the switch without server involvement.
        assert dep.server_agent(0).stats["data_rx"] == before
        assert dep.sim.now - start < 100e-6
