"""Tests for the IDL parser (paper Figure 2 syntax)."""

import pytest

from repro.core import ProtoSyntaxError, parse_proto

PAPER_EXAMPLE = """
import "netrpc.proto";

message NewGrad {
  netrpc.FPArray tensor = 1;
}
message AgtrGrad {
  netrpc.FPArray tensor = 1;
}
service GradientService {
  rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
}
"""


class TestPaperExample:
    def test_parses(self):
        proto = parse_proto(PAPER_EXAMPLE)
        assert set(proto.messages) == {"NewGrad", "AgtrGrad"}
        assert proto.imports == ["netrpc.proto"]

    def test_service_and_filter_clause(self):
        proto = parse_proto(PAPER_EXAMPLE)
        service = proto.service("GradientService")
        method = service.method("Update")
        assert method.request_type == "NewGrad"
        assert method.reply_type == "AgtrGrad"
        assert method.filter_file == "agtr.nf"

    def test_field_descriptors(self):
        proto = parse_proto(PAPER_EXAMPLE)
        field = proto.message("NewGrad").by_name["tensor"]
        assert field.type_name == "netrpc.FPArray"
        assert field.tag == 1
        assert field.is_iedt


class TestSyntaxVariants:
    def test_comments_ignored(self):
        proto = parse_proto("""
        // leading comment
        message M { int32 x = 1; } // trailing
        """)
        assert "M" in proto.messages

    def test_mixed_scalar_and_iedt_fields(self):
        proto = parse_proto("""
        message MonitorRequest {
          netrpc.STRINTMap kvs = 1;
          string payload = 2;
        }
        """)
        msg = proto.message("MonitorRequest")
        assert msg.by_name["kvs"].is_iedt
        assert not msg.by_name["payload"].is_iedt

    def test_rpc_without_filter(self):
        proto = parse_proto("""
        message A { int32 x = 1; }
        service S { rpc Plain (A) returns (A); }
        """)
        assert proto.service("S").method("Plain").filter_file is None

    def test_multiple_rpcs(self):
        proto = parse_proto("""
        message Q { netrpc.STRINTMap kvs = 1; }
        message R { string msg = 1; }
        service MapReduce {
          rpc ReduceByKey (Q) returns (R) {} filter "reduce.nf"
          rpc Query (R) returns (Q) {} filter "query.nf"
        }
        """)
        methods = proto.service("MapReduce").methods
        assert [m.name for m in methods] == ["ReduceByKey", "Query"]

    def test_syntax_declaration_accepted(self):
        proto = parse_proto('syntax = "proto3"; message M { bool b = 1; }')
        assert "M" in proto.messages


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(ProtoSyntaxError):
            parse_proto("message M { varchar x = 1; }")

    def test_undefined_rpc_message(self):
        with pytest.raises(ProtoSyntaxError, match="undefined message"):
            parse_proto("""
            message A { int32 x = 1; }
            service S { rpc Go (A) returns (Missing); }
            """)

    def test_duplicate_message(self):
        with pytest.raises(ProtoSyntaxError, match="duplicate message"):
            parse_proto("message M { int32 x = 1; } message M { bool b = 1; }")

    def test_missing_semicolon(self):
        with pytest.raises(ProtoSyntaxError):
            parse_proto("message M { int32 x = 1 }")

    def test_bad_tag(self):
        with pytest.raises(ProtoSyntaxError):
            parse_proto("message M { int32 x = abc; }")

    def test_stray_token(self):
        with pytest.raises(ProtoSyntaxError):
            parse_proto("banana")

    def test_unexpected_character(self):
        with pytest.raises(ProtoSyntaxError, match="unexpected character"):
            parse_proto("message M { int32 x = 1; } @")

    def test_unexpected_eof(self):
        with pytest.raises(ProtoSyntaxError):
            parse_proto("message M {")

    def test_lookup_missing_names(self):
        proto = parse_proto("message M { int32 x = 1; }")
        with pytest.raises(KeyError):
            proto.message("Nope")
        with pytest.raises(KeyError):
            proto.service("Nope")
