"""The paper's verbatim artifacts as fixtures.

Parses the exact proto definitions and NetFilters printed in the paper
(Figures 2-3 and Appendix D, Figures 16-23) and checks they compile to
the intended RIP programs — the strongest evidence the user-facing
language matches the publication.
"""

import pytest

from repro.core import NetRPCService, parse_netfilter, parse_proto
from repro.protocol import ClearPolicy, ForwardTarget

FIG2_PROTO = """
import "netrpc.proto";
message NewGrad { netrpc.FPArray tensor = 1; }
message AgtrGrad { netrpc.FPArray tensor = 1; }
service GradientService {
  rpc Update (NewGrad) returns (AgtrGrad) {} filter "agtr.nf"
}
"""

FIG3_FILTER = """{
  "AppName": "DT-1",
  "Precision": 8,
  "get": "AgtrGrad.tensor",
  "addTo": "NewGrad.tensor",
  "clear": "copy",
  "modify": "nop",
  "CntFwd": {"to": "ALL", "threshold": 2, "key": "ClientID"}
}"""

FIG16_MAPREDUCE_PROTO = """
import "netrpc.proto";
message ReduceRequest { netrpc.STRINTMap kvs = 1; }
message ReduceReply { string msg = 1; }
message QueryRequest { string msg = 1; }
message QueryReply { netrpc.STRINTMap kvs = 1; }
service MapReduce {
  rpc ReduceByKey (ReduceRequest) returns (ReduceReply) {} filter "reduce.nf"
  rpc Query (QueryRequest) returns (QueryReply) {} filter "query.nf"
}
"""

FIG17_REDUCE = """{
  "AppName": "MR-1", "Precision": 0,
  "get": "nop", "addTo": "ReduceRequest.kvs",
  "clear": "nop", "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 0, "key": "NULL"}
}"""

FIG17_QUERY = """{
  "AppName": "MR-1", "Precision": 0,
  "get": "QueryReply.kvs", "addTo": "nop",
  "clear": "nop", "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 0, "key": "NULL"}
}"""

FIG19_LOCK_PROTO = """
import "netrpc.proto";
message LockRequest { netrpc.STRINTMap map = 1; }
message LockReply { string msg = 1; }
message ReleaseRequest { netrpc.STRINTMap map = 1; }
message ReleaseReply { string msg = 1; }
service Lock {
  rpc GetLock (LockRequest) returns (LockReply) {} filter "lock.nf"
  rpc Release (ReleaseRequest) returns (ReleaseReply) {} filter "release.nf"
}
"""

FIG20_LOCK = """{
  "AppName": "LS-1", "Precision": 0,
  "get": "nop", "addTo": "nop", "clear": "nop", "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 1, "key": "LockRequest.map"}
}"""

FIG20_RELEASE = """{
  "AppName": "LS-1", "Precision": 0,
  "get": "nop", "addTo": "nop", "clear": "copy", "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 0, "key": "ReleaseRequest.map"}
}"""

FIG22_MONITOR_PROTO = """
import "netrpc.proto";
message MonitorRequest {
  netrpc.STRINTMap kvs = 1;
  string payload = 2;
}
message MonitorReply { string payload = 1; }
message QueryRequest { string message = 1; }
message QueryReply { netrpc.STRINTMap kvs = 1; }
service Monitor {
  rpc MonitorCall (MonitorRequest) returns (MonitorReply) {} filter "monitor.nf"
  rpc Query (QueryRequest) returns (QueryReply) {} filter "query.nf"
}
"""

FIG23_MONITOR = """{
  "AppName": "MON-1", "Precision": 0,
  "get": "nop", "addTo": "MonitorRequest.kvs",
  "clear": "nop", "modify": "nop",
  "CntFwd": {"to": "SERVER", "threshold": 0, "key": "NULL"}
}"""

FIG23_QUERY = """{
  "AppName": "MON-1", "Precision": 0,
  "get": "QueryReply.kvs", "addTo": "nop",
  "clear": "nop", "modify": "nop",
  "CntFwd": {"to": "SRC", "threshold": 0, "key": "NULL"}
}"""


class TestFigure2And3:
    def test_gradient_service_compiles(self):
        service = NetRPCService.from_text(FIG2_PROTO, "GradientService",
                                          {"agtr.nf": FIG3_FILTER})
        binding = service.binding("Update")
        assert binding.program.precision == 8
        assert binding.program.clear is ClearPolicy.COPY
        assert binding.program.cntfwd.threshold == 2
        assert binding.linear            # FPArray -> circular buffers
        assert binding.stream_field.name == "tensor"
        assert binding.result_field.name == "tensor"


class TestAppendixDMapReduce:
    def test_service_compiles(self):
        service = NetRPCService.from_text(
            FIG16_MAPREDUCE_PROTO, "MapReduce",
            {"reduce.nf": FIG17_REDUCE, "query.nf": FIG17_QUERY})
        reduce_binding = service.binding("ReduceByKey")
        assert reduce_binding.program.add_to_field == "ReduceRequest.kvs"
        assert reduce_binding.program.cntfwd.target is ForwardTarget.SRC
        assert not reduce_binding.linear
        query_binding = service.binding("Query")
        assert query_binding.program.get_field == "QueryReply.kvs"
        # QueryRequest has no IEDT: the full-map read takes the plain
        # server path, matching the paper's Query semantics.
        assert query_binding.stream_field is None


class TestAppendixDLock:
    def test_lock_service_compiles(self):
        service = NetRPCService.from_text(
            FIG19_LOCK_PROTO, "Lock",
            {"lock.nf": FIG20_LOCK, "release.nf": FIG20_RELEASE})
        lock_binding = service.binding("GetLock")
        assert lock_binding.program.cntfwd.is_test_and_set
        assert lock_binding.stream_field.name == "map"
        release_binding = service.binding("Release")
        assert release_binding.program.clear is ClearPolicy.COPY
        assert release_binding.program.uses_map  # clear touches registers


class TestAppendixDMonitor:
    def test_monitor_service_compiles(self):
        service = NetRPCService.from_text(
            FIG22_MONITOR_PROTO, "Monitor",
            {"monitor.nf": FIG23_MONITOR, "query.nf": FIG23_QUERY})
        mon = service.binding("MonitorCall")
        assert mon.program.cntfwd.target is ForwardTarget.SERVER
        assert mon.program.add_to_field == "MonitorRequest.kvs"
        # The scalar payload field rides outside the INC stream.
        scalars = [f.name for f in mon.request.scalar_fields()]
        assert scalars == ["payload"]


class TestFilterRoundTrips:
    @pytest.mark.parametrize("source", [
        FIG3_FILTER, FIG17_REDUCE, FIG17_QUERY, FIG20_LOCK,
        FIG20_RELEASE, FIG23_MONITOR, FIG23_QUERY,
    ])
    def test_all_paper_filters_roundtrip(self, source):
        from repro.core import netfilter_to_json
        program = parse_netfilter(source)
        assert parse_netfilter(netfilter_to_json(program)) == program
