"""Tests for INC-enabled data type encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core import IEDTKind, decode_items, encode_items, is_iedt
from repro.core.iedt import default_value, iedt_kind
from repro.protocol import INT32_MAX, Quantizer


class TestKinds:
    def test_known_types(self):
        assert is_iedt("netrpc.FPArray")
        assert is_iedt("netrpc.STRINTMap")
        assert not is_iedt("int32")

    def test_kind_lookup(self):
        assert iedt_kind("netrpc.FPArray") is IEDTKind.FP_ARRAY
        with pytest.raises(ValueError):
            iedt_kind("netrpc.Tensor")

    def test_shape_flags(self):
        assert IEDTKind.FP_ARRAY.is_array and IEDTKind.FP_ARRAY.is_float
        assert IEDTKind.STR_INT_MAP.is_map
        assert not IEDTKind.INT_ARRAY.is_float

    def test_defaults(self):
        assert default_value(IEDTKind.FP_ARRAY) == []
        assert default_value(IEDTKind.STR_INT_MAP) == {}


class TestEncoding:
    def test_fp_array_quantizes(self):
        items, overflows = encode_items(IEDTKind.FP_ARRAY, [0.5, -1.25],
                                        Quantizer(2))
        assert items == [(0, 50), (1, -125)]
        assert overflows == 0

    def test_int_array_passthrough(self):
        items, _ = encode_items(IEDTKind.INT_ARRAY, [5, -3], Quantizer(0))
        assert items == [(0, 5), (1, -3)]

    def test_str_map(self):
        items, _ = encode_items(IEDTKind.STR_INT_MAP, {"a": 1, "b": 2},
                                Quantizer(0))
        assert sorted(items) == [("a", 1), ("b", 2)]

    def test_int_map_key_type_enforced(self):
        with pytest.raises(TypeError):
            encode_items(IEDTKind.INT_INT_MAP, {"str": 1}, Quantizer(0))
        with pytest.raises(TypeError):
            encode_items(IEDTKind.STR_INT_MAP, {5: 1}, Quantizer(0))

    def test_int_value_type_enforced(self):
        with pytest.raises(TypeError):
            encode_items(IEDTKind.INT_ARRAY, [1.5], Quantizer(0))
        with pytest.raises(TypeError):
            encode_items(IEDTKind.INT_ARRAY, [True], Quantizer(0))

    def test_overflow_precheck_counts(self):
        items, overflows = encode_items(IEDTKind.FP_ARRAY, [1e9],
                                        Quantizer(8))
        assert overflows == 1
        assert items[0][1] == INT32_MAX


class TestDecoding:
    def test_fp_array_dequantizes(self):
        out = decode_items(IEDTKind.FP_ARRAY, {0: 50, 1: -125},
                           Quantizer(2), length=2)
        assert out == [0.5, -1.25]

    def test_missing_indices_decode_to_zero(self):
        out = decode_items(IEDTKind.INT_ARRAY, {1: 7}, Quantizer(0),
                           length=3)
        assert out == [0, 7, 0]

    def test_str_map_decoding(self):
        out = decode_items(IEDTKind.STR_INT_MAP, {"a": 5}, Quantizer(0))
        assert out == {"a": 5}

    def test_fp_map_decoding(self):
        out = decode_items(IEDTKind.FP_MAP, {"a": 250}, Quantizer(2))
        assert out == {"a": 2.5}

    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), max_size=40),
           st.integers(min_value=1, max_value=6))
    def test_roundtrip_error_bounded(self, values, precision):
        q = Quantizer(precision)
        items, overflows = encode_items(IEDTKind.FP_ARRAY, values, q)
        assert overflows == 0
        decoded = decode_items(IEDTKind.FP_ARRAY, dict(items), q,
                               length=len(values))
        for original, roundtripped in zip(values, decoded):
            assert abs(original - roundtripped) <= \
                q.roundtrip_error_bound() + 1e-12
