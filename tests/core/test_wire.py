"""Tests for the varint wire encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core import wire


class TestVarint:
    def test_small_values_are_one_byte(self):
        assert wire.encode_varint(0) == b"\x00"
        assert wire.encode_varint(127) == b"\x7f"

    def test_multibyte(self):
        assert wire.encode_varint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wire.encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            wire.decode_varint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(ValueError):
            wire.decode_varint(b"\xff" * 11)

    @given(st.integers(min_value=0, max_value=2**63))
    def test_roundtrip(self, value):
        data = wire.encode_varint(value)
        decoded, offset = wire.decode_varint(data)
        assert decoded == value and offset == len(data)


class TestZigzag:
    def test_mapping(self):
        assert wire.zigzag(0) == 0
        assert wire.zigzag(-1) == 1
        assert wire.zigzag(1) == 2
        assert wire.zigzag(-2) == 3

    @given(st.integers(min_value=-2**62, max_value=2**62))
    def test_roundtrip(self, value):
        assert wire.unzigzag(wire.zigzag(value)) == value

    @given(st.integers(min_value=-2**62, max_value=2**62))
    def test_signed_encoding_roundtrip(self, value):
        data = wire.encode_signed(value)
        decoded, _ = wire.decode_signed(data)
        assert decoded == value


class TestDoubleAndBytes:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip(self, value):
        decoded, offset = wire.decode_double(wire.encode_double(value))
        assert decoded == value and offset == 8

    def test_truncated_double(self):
        with pytest.raises(ValueError):
            wire.decode_double(b"\x00" * 7)

    @given(st.binary(max_size=200))
    def test_bytes_roundtrip(self, blob):
        decoded, _ = wire.decode_bytes(wire.encode_bytes(blob))
        assert decoded == blob

    def test_truncated_bytes(self):
        with pytest.raises(ValueError):
            wire.decode_bytes(b"\x05abc")

    def test_sequential_decoding(self):
        data = wire.encode_bytes(b"ab") + wire.encode_signed(-5) + \
            wire.encode_double(1.5)
        blob, offset = wire.decode_bytes(data)
        value, offset = wire.decode_signed(data, offset)
        dbl, offset = wire.decode_double(data, offset)
        assert (blob, value, dbl) == (b"ab", -5, 1.5)
        assert offset == len(data)
