"""Tests for the NetRPC packet format and size model (Figure 14)."""

import pytest

from repro.protocol import (
    KV_PAIRS_PER_PACKET,
    KVPair,
    Packet,
    full_bitmap,
)


def make_packet(n_kv=0, **kwargs):
    kv = [KVPair(addr=i, value=i * 10) for i in range(n_kv)]
    pkt = Packet(gaid=1, src="c0", dst="s0", kv=kv, **kwargs)
    pkt.select_all_slots()
    return pkt


class TestBitmap:
    def test_full_bitmap_widths(self):
        assert full_bitmap(0) == 0
        assert full_bitmap(1) == 1
        assert full_bitmap(32) == 2**32 - 1

    def test_full_bitmap_range_check(self):
        with pytest.raises(ValueError):
            full_bitmap(33)

    def test_slot_selection(self):
        pkt = make_packet(4)
        pkt.bitmap = 0b1010
        assert not pkt.slot_selected(0)
        assert pkt.slot_selected(1)
        assert not pkt.slot_selected(2)
        assert pkt.slot_selected(3)

    def test_select_all_slots(self):
        pkt = make_packet(5)
        assert all(pkt.slot_selected(i) for i in range(5))
        assert not pkt.slot_selected(5)


class TestSizeModel:
    def test_linear_full_packet_matches_paper_minimum(self):
        # 32 values with keys elided plus CntFwd fields (the SyncAgtr
        # configuration): the paper's 192-byte packet.
        pkt = make_packet(32, linear_base=0, is_cnf=True)
        assert pkt.size_bytes == 192

    def test_keyed_packet_with_cntfwd_matches_paper_maximum(self):
        # Explicit keys + CntFwd fields: the paper's 320-byte configuration.
        pkt = make_packet(32, is_cnf=True)
        assert pkt.size_bytes == 320

    def test_linear_mode_elides_keys(self):
        keyed = make_packet(16)
        linear = make_packet(16, linear_base=100)
        assert keyed.size_bytes - linear.size_bytes == 16 * 4

    def test_payload_adds_bytes(self):
        small = make_packet(0)
        big = make_packet(0, payload="x", payload_bytes=100)
        assert big.size_bytes - small.size_bytes == 100

    def test_acks_and_grants_add_bytes(self):
        base = make_packet(0)
        with_acks = make_packet(0, acks=(1, 2, 3))
        with_grants = make_packet(0, grants=((1, 2), (3, 4)))
        assert with_acks.size_bytes - base.size_bytes == 12
        assert with_grants.size_bytes - base.size_bytes == 16

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            make_packet(0, payload_bytes=-1)

    def test_too_many_kv_pairs_rejected(self):
        with pytest.raises(ValueError):
            make_packet(KV_PAIRS_PER_PACKET + 1)


class TestCopySemantics:
    def test_copy_duplicates_kv_pairs(self):
        pkt = make_packet(3)
        dup = pkt.copy()
        dup.kv[0].value = 999
        assert pkt.kv[0].value == 0

    def test_copy_preserves_fields(self):
        pkt = make_packet(2, is_cnf=True, cnt_index=7)
        dup = pkt.copy()
        assert dup.gaid == pkt.gaid
        assert dup.cnt_index == 7
        assert dup.is_cnf

    def test_copy_gets_fresh_uid(self):
        pkt = make_packet(1)
        assert pkt.copy().uid != pkt.uid

    def test_chunk_id_identifies_task_and_offset(self):
        pkt = make_packet(1, task_id=5, offset=64)
        assert pkt.chunk_id == (5, 64)
