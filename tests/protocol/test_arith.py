"""Tests for 32-bit switch arithmetic and quantization (paper §5.2.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol import (
    INT32_MAX,
    INT32_MIN,
    Quantizer,
    is_overflow_sentinel,
    saturating_add,
    wrap32,
)

int32s = st.integers(min_value=INT32_MIN, max_value=INT32_MAX)


class TestSaturatingAdd:
    def test_normal_addition(self):
        assert saturating_add(3, 4) == (7, False)

    def test_negative_addition(self):
        assert saturating_add(-3, -4) == (-7, False)

    def test_positive_overflow_saturates(self):
        result, overflowed = saturating_add(INT32_MAX, 1)
        assert result == INT32_MAX and overflowed

    def test_negative_overflow_saturates(self):
        result, overflowed = saturating_add(INT32_MIN, -1)
        assert result == INT32_MIN and overflowed

    def test_exact_bounds_do_not_overflow(self):
        assert saturating_add(INT32_MAX - 1, 1) == (INT32_MAX, False)
        assert saturating_add(INT32_MIN + 1, -1) == (INT32_MIN, False)

    def test_extreme_operand_pairs_saturate(self):
        assert saturating_add(INT32_MIN, INT32_MIN) == (INT32_MIN, True)
        assert saturating_add(INT32_MAX, INT32_MAX) == (INT32_MAX, True)
        assert saturating_add(INT32_MIN, INT32_MAX) == (-1, False)

    @given(int32s, int32s)
    def test_result_always_in_range(self, a, b):
        result, _ = saturating_add(a, b)
        assert INT32_MIN <= result <= INT32_MAX

    @given(int32s, int32s)
    def test_overflow_flag_matches_true_sum(self, a, b):
        result, overflowed = saturating_add(a, b)
        assert overflowed == (not INT32_MIN <= a + b <= INT32_MAX)
        if not overflowed:
            assert result == a + b


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345

    def test_wraps_past_max(self):
        assert wrap32(INT32_MAX + 1) == INT32_MIN

    def test_wraps_past_min(self):
        assert wrap32(INT32_MIN - 1) == INT32_MAX

    @given(st.integers(min_value=-2**40, max_value=2**40))
    def test_always_in_range(self, value):
        assert INT32_MIN <= wrap32(value) <= INT32_MAX

    @given(int32s)
    def test_congruent_mod_2_32(self, value):
        assert (wrap32(value + 2**32)) == value


class TestOverflowSentinel:
    def test_max_and_min_are_sentinels(self):
        assert is_overflow_sentinel(INT32_MAX)
        assert is_overflow_sentinel(INT32_MIN)

    def test_ordinary_values_are_not(self):
        assert not is_overflow_sentinel(0)
        assert not is_overflow_sentinel(INT32_MAX - 1)


class TestQuantizer:
    def test_precision_zero_is_passthrough_rounding(self):
        q = Quantizer(0)
        assert q.encode(5.0) == (5, False)
        assert q.decode(5) == 5.0

    def test_fixed_point_roundtrip(self):
        q = Quantizer(4)
        fixed, overflowed = q.encode(3.14159)
        assert not overflowed
        assert q.decode(fixed) == pytest.approx(3.1416, abs=1e-9)

    def test_precision_bounds_error(self):
        q = Quantizer(3)
        value = 0.123456
        assert abs(q.decode(q.encode(value)[0]) - value) <= \
            q.roundtrip_error_bound()

    def test_too_large_value_overflows(self):
        q = Quantizer(8)
        fixed, overflowed = q.encode(1e6)
        assert overflowed and fixed == INT32_MAX

    def test_too_negative_value_overflows(self):
        q = Quantizer(8)
        fixed, overflowed = q.encode(-1e6)
        assert overflowed and fixed == INT32_MIN

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            Quantizer(-1)
        with pytest.raises(ValueError):
            Quantizer(10)

    def test_infinities_saturate_like_overflow(self):
        # Audit fix: inf formerly leaked an OverflowError out of round().
        for precision in (0, 4, 8):
            q = Quantizer(precision)
            assert q.encode(float("inf")) == (INT32_MAX, True)
            assert q.encode(float("-inf")) == (INT32_MIN, True)

    def test_nan_is_rejected_explicitly(self):
        q = Quantizer(4)
        with pytest.raises(ValueError, match="NaN"):
            q.encode(float("nan"))

    def test_values_at_exact_fixed_point_bounds(self):
        q = Quantizer(0)
        assert q.encode(float(INT32_MAX)) == (INT32_MAX, False)
        assert q.encode(float(INT32_MIN)) == (INT32_MIN, False)

    @given(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
           st.integers(min_value=0, max_value=5))
    def test_roundtrip_error_within_bound(self, value, precision):
        q = Quantizer(precision)
        fixed, overflowed = q.encode(value)
        assert not overflowed
        assert abs(q.decode(fixed) - value) <= q.roundtrip_error_bound() + 1e-12

    @given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False),
                    min_size=1, max_size=20))
    def test_sum_of_quantized_matches_quantized_sum(self, values):
        # The property gradient aggregation relies on: aggregating in fixed
        # point then decoding equals the true sum up to n * eps.
        q = Quantizer(6)
        total_fixed = sum(q.encode(v)[0] for v in values)
        true_sum = sum(values)
        assert abs(q.decode(total_fixed) - true_sum) <= \
            len(values) * q.roundtrip_error_bound() + 1e-9
