"""Tests for Stream.modify operations (paper Appendix A, Table 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.protocol import (
    INT32_MAX,
    INT32_MIN,
    StreamOp,
    apply_stream_op,
)

int32s = st.integers(min_value=INT32_MIN, max_value=INT32_MAX)


class TestParsing:
    def test_parse_known_ops(self):
        assert StreamOp.parse("ADD") is StreamOp.ADD
        assert StreamOp.parse("nop") is StreamOp.NOP
        assert StreamOp.parse(" Max ") is StreamOp.MAX

    def test_parse_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown Stream.modify op"):
            StreamOp.parse("mul")


class TestSemantics:
    """Each case mirrors a row of Table 8."""

    def test_nop_passthrough(self):
        assert apply_stream_op(StreamOp.NOP, 42, 7) == (42, False)

    def test_max(self):
        assert apply_stream_op(StreamOp.MAX, 3, 7) == (7, False)
        assert apply_stream_op(StreamOp.MAX, 9, 7) == (9, False)

    def test_min(self):
        assert apply_stream_op(StreamOp.MIN, 3, 7) == (3, False)
        assert apply_stream_op(StreamOp.MIN, 9, 7) == (7, False)

    def test_add(self):
        assert apply_stream_op(StreamOp.ADD, 3, 7) == (10, False)

    def test_add_overflow_saturates(self):
        result, overflowed = apply_stream_op(StreamOp.ADD, INT32_MAX, 1)
        assert result == INT32_MAX and overflowed

    def test_assign(self):
        assert apply_stream_op(StreamOp.ASSIGN, 999, 7) == (7, False)

    def test_shiftl(self):
        assert apply_stream_op(StreamOp.SHIFTL, 1, 4) == (16, False)

    def test_shiftl_wraps_like_hardware(self):
        result, overflowed = apply_stream_op(StreamOp.SHIFTL, 1, 31)
        assert result == INT32_MIN and not overflowed

    def test_shiftr_is_logical(self):
        # -1 has all 32 bits set; a logical shift right by 1 gives
        # 0x7FFFFFFF, exactly what the switch ALU produces.
        assert apply_stream_op(StreamOp.SHIFTR, -1, 1) == (INT32_MAX, False)

    def test_shift_amount_masked_to_31(self):
        assert apply_stream_op(StreamOp.SHIFTL, 1, 32) == (1, False)

    def test_band(self):
        assert apply_stream_op(StreamOp.BAND, 0b1100, 0b1010) == (0b1000,
                                                                  False)

    def test_bor(self):
        assert apply_stream_op(StreamOp.BOR, 0b1100, 0b1010) == (0b1110,
                                                                 False)

    def test_bnot(self):
        assert apply_stream_op(StreamOp.BNOT, 0, 0) == (-1, False)

    def test_bxor(self):
        assert apply_stream_op(StreamOp.BXOR, 0b1100, 0b1010) == (0b0110,
                                                                  False)

    @given(st.sampled_from(list(StreamOp)), int32s, int32s)
    def test_results_always_int32(self, op, value, para):
        result, _ = apply_stream_op(op, value, para)
        assert INT32_MIN <= result <= INT32_MAX

    @given(int32s, int32s)
    def test_bxor_is_involution(self, value, para):
        once, _ = apply_stream_op(StreamOp.BXOR, value, para)
        twice, _ = apply_stream_op(StreamOp.BXOR, once, para)
        assert twice == value

    @given(int32s)
    def test_bnot_is_involution(self, value):
        once, _ = apply_stream_op(StreamOp.BNOT, value, 0)
        twice, _ = apply_stream_op(StreamOp.BNOT, once, 0)
        assert twice == value

    @given(st.sampled_from([StreamOp.MAX, StreamOp.MIN]), int32s, int32s)
    def test_max_min_idempotent(self, op, value, para):
        once, _ = apply_stream_op(op, value, para)
        twice, _ = apply_stream_op(op, once, para)
        assert twice == once
