"""Property tests for the lossy aggregation codecs (int8 block / top-k).

Both ride the exact integer switch kernels, so the contract under test
is purely host-side: encode -> (switch-style integer accumulate) ->
decode must land within the documented ``error_bound``, and coordinated
top-k merging must equal the dense merge on the selected coordinates.
"""

import os

from hypothesis import given, settings, strategies as st
import pytest

from repro.protocol import Int8BlockCodec, topk_indices, topk_sparsify
from repro.protocol.quantize import INT8_MAX, INT8_MIN

pytestmark = pytest.mark.fpinc

FP_EXAMPLES = int(os.environ.get("FPINC_MAX_EXAMPLES", "200"))

CODEC = Int8BlockCodec()

values_st = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=32)
workers_st = st.integers(min_value=1, max_value=5)
k_st = st.integers(min_value=0, max_value=40)


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(values=values_st)
def test_int8_roundtrip_within_half_step(values):
    scale, codes = CODEC.encode_block(values)
    assert all(INT8_MIN <= c <= INT8_MAX for c in codes)
    decoded = CODEC.decode_block(scale, codes)
    bound = CODEC.error_bound(scale)
    for original, back in zip(values, decoded):
        assert abs(back - original) <= bound


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(tensors=st.lists(values_st, min_size=1, max_size=5).filter(
    lambda ts: len({len(t) for t in ts}) == 1))
def test_int8_switch_accumulation_within_bound(tensors):
    """W workers encode under one shared clip scale, the switch adds the
    raw codes, the host decodes once: error <= W * scale / 2 per coord."""
    dim = len(tensors[0])
    peak = max((abs(v) for t in tensors for v in t), default=0.0)
    scale = peak / INT8_MAX
    if scale <= 0:
        scale = 1.0
    accumulated = [0] * dim
    for tensor in tensors:
        enc_scale, codes = CODEC.encode_block(tensor, scale=scale)
        assert enc_scale == scale
        for j, code in enumerate(codes):
            accumulated[j] += code  # what the integer kernel computes
    decoded = CODEC.decode_block(scale, accumulated)
    bound = CODEC.error_bound(scale, contributions=len(tensors))
    for j in range(dim):
        exact = sum(t[j] for t in tensors)
        assert abs(decoded[j] - exact) <= bound


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(values=values_st, factor=st.floats(min_value=1.5, max_value=100.0))
def test_int8_explicit_scale_saturates(values, factor):
    """Out-of-range values clip to ±127 under an explicit scale."""
    peak = max(abs(v) for v in values)
    scale = peak / INT8_MAX / factor  # too small on purpose
    if scale <= 0:  # zero or denormal-underflowed peak
        return
    _, codes = CODEC.encode_block(values, scale=scale)
    assert all(INT8_MIN <= c <= INT8_MAX for c in codes)
    for v, c in zip(values, codes):
        if abs(v) > INT8_MAX * scale:
            assert c == (INT8_MAX if v > 0 else INT8_MIN)


def test_int8_rejects_nonpositive_scale():
    with pytest.raises(ValueError):
        CODEC.encode_block([1.0], scale=0.0)
    with pytest.raises(ValueError):
        CODEC.encode_block([1.0], scale=-1.0)


def test_int8_all_zero_block_uses_unit_scale():
    scale, codes = CODEC.encode_block([0.0, 0.0])
    assert scale == 1.0 and codes == [0, 0]
    assert CODEC.decode_block(scale, codes) == [0.0, 0.0]


# ---------------------------------------------------------------------------
# top-k
# ---------------------------------------------------------------------------
@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(values=values_st, k=k_st)
def test_topk_indices_are_the_largest_magnitudes(values, k):
    idx = topk_indices(values, k)
    assert idx == sorted(idx)
    assert len(idx) == min(k, len(values))
    if not idx:
        return
    chosen = set(idx)
    floor = min(abs(values[i]) for i in idx)
    for i, v in enumerate(values):
        if i not in chosen:
            assert abs(v) <= floor


@settings(max_examples=FP_EXAMPLES, deadline=None)
@given(tensors=st.lists(values_st, min_size=1, max_size=5).filter(
    lambda ts: len({len(t) for t in ts}) == 1),
    k=k_st)
def test_coordinated_topk_merge_equals_dense_merge_on_selection(tensors, k):
    """All workers sparsify against the same reference ranking; the
    sparse sum equals the dense sum exactly on every selected coord."""
    dim = len(tensors[0])
    reference = [sum(t[j] for t in tensors) for j in range(dim)]
    selection = topk_indices(reference, k)

    merged = {}
    for tensor in tensors:
        idx, selected = topk_sparsify(tensor, k, indices=selection)
        assert idx == selection
        for i, v in zip(idx, selected):
            merged[i] = merged.get(i, 0.0) + v

    for i in selection:
        assert merged[i] == sum(t[i] for t in tensors)
    assert set(merged) == set(selection)


def test_topk_ties_break_toward_lower_index():
    assert topk_indices([2.0, -2.0, 2.0, 1.0], 2) == [0, 1]


def test_topk_k_at_least_length_selects_everything():
    assert topk_indices([3.0, 1.0], 5) == [0, 1]
    assert topk_indices([], 3) == []


def test_topk_rejects_negative_k():
    with pytest.raises(ValueError):
        topk_indices([1.0], -1)
