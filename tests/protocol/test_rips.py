"""Tests for RIP program representation and validation."""

import pytest

from repro.protocol import (
    ClearPolicy,
    CntFwdSpec,
    ForwardTarget,
    RIPProgram,
    RetryMode,
    StreamOp,
)


class TestEnumParsing:
    def test_clear_policy_parse(self):
        assert ClearPolicy.parse("copy") is ClearPolicy.COPY
        assert ClearPolicy.parse(" SHADOW ") is ClearPolicy.SHADOW
        assert ClearPolicy.parse("lazy") is ClearPolicy.LAZY
        assert ClearPolicy.parse("nop") is ClearPolicy.NOP

    def test_clear_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown clear policy"):
            ClearPolicy.parse("sometimes")

    def test_forward_target_parse(self):
        assert ForwardTarget.parse("ALL") is ForwardTarget.ALL
        assert ForwardTarget.parse("src") is ForwardTarget.SRC
        assert ForwardTarget.parse("Server") is ForwardTarget.SERVER

    def test_forward_target_unknown(self):
        with pytest.raises(ValueError, match="unknown CntFwd target"):
            ForwardTarget.parse("everyone")

    def test_retry_mode_parse(self):
        assert RetryMode.parse("persist") is RetryMode.PERSIST
        assert RetryMode.parse("FRESH") is RetryMode.FRESH

    def test_retry_mode_unknown(self):
        with pytest.raises(ValueError, match="unknown retry mode"):
            RetryMode.parse("maybe")


class TestCntFwdSpec:
    def test_threshold_zero_is_unconditional_forward(self):
        spec = CntFwdSpec(threshold=0)
        assert not spec.counts

    def test_positive_threshold_counts(self):
        spec = CntFwdSpec(threshold=2)
        assert spec.counts and not spec.is_test_and_set

    def test_threshold_one_is_test_and_set(self):
        assert CntFwdSpec(threshold=1).is_test_and_set

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CntFwdSpec(threshold=-1)


class TestRIPProgram:
    def test_minimal_program(self):
        prog = RIPProgram(app_name="app")
        assert not prog.uses_get
        assert not prog.uses_add_to
        assert not prog.uses_map
        assert not prog.uses_floats

    def test_gradient_aggregation_program(self):
        # The paper's Figure 3 NetFilter.
        prog = RIPProgram(
            app_name="DT-1", precision=8,
            get_field="AgtrGrad.tensor", add_to_field="NewGrad.tensor",
            clear=ClearPolicy.COPY,
            cntfwd=CntFwdSpec(target=ForwardTarget.ALL, threshold=2,
                              key="ClientID"))
        assert prog.uses_get and prog.uses_add_to and prog.uses_map
        assert prog.uses_floats
        assert prog.cntfwd.counts

    def test_empty_app_name_rejected(self):
        with pytest.raises(ValueError):
            RIPProgram(app_name="")

    def test_bad_precision_rejected(self):
        with pytest.raises(ValueError):
            RIPProgram(app_name="a", precision=-1)
        with pytest.raises(ValueError):
            RIPProgram(app_name="a", precision=10)

    def test_cntfwd_only_program_uses_map(self):
        prog = RIPProgram(app_name="lock",
                          cntfwd=CntFwdSpec(threshold=1,
                                            target=ForwardTarget.SRC))
        assert prog.uses_map

    def test_describe_mentions_enabled_primitives(self):
        prog = RIPProgram(app_name="x", get_field="R.kvs",
                          clear=ClearPolicy.LAZY,
                          modify_op=StreamOp.ADD, modify_para=5,
                          cntfwd=CntFwdSpec(target=ForwardTarget.SRC,
                                            threshold=3))
        text = prog.describe()
        assert "get=R.kvs" in text
        assert "clear=lazy" in text
        assert "modify=add(5)" in text
        assert "cntfwd" in text and "th=3" in text

    def test_programs_are_immutable(self):
        prog = RIPProgram(app_name="x")
        with pytest.raises(AttributeError):
            prog.precision = 5
