"""Fast smoke tests for the experiment harnesses.

The heavy, paper-scale runs live in ``benchmarks/``; these verify the
measurement plumbing itself at miniature scale.
"""

import pytest

from repro.experiments import (
    run_async_aggregation,
    run_sync_aggregation,
    sync_chunk_latency,
    voting_delay,
)
from repro.experiments.common import format_table
from repro.experiments.exp_fairness import jain_fairness
from repro.experiments.exp_loc import count_loc, netfilter_loc
from repro.experiments.exp_training import training_speed


class TestSyncHarness:
    def test_goodput_positive_and_bounded(self):
        result = run_sync_aggregation(n_values=8192)
        assert 0 < result.goodput_gbps < 100
        assert result.elapsed_s > 0
        assert result.overflow_chunks == 0

    def test_overflow_ratio_produces_overflow_chunks(self):
        result = run_sync_aggregation(n_values=4096, overflow_ratio=0.5,
                                      seed=1)
        assert result.overflow_chunks > 0

    def test_loss_produces_retransmissions(self):
        result = run_sync_aggregation(n_values=8192, loss=0.02, seed=2)
        assert result.retransmits > 0

    def test_chunk_latency_is_microseconds(self):
        latency = sync_chunk_latency(rounds=5)
        assert 1e-7 < latency < 1e-3


class TestAsyncHarness:
    def test_chr_rises_with_repeats(self):
        one_pass = run_async_aggregation(distinct_keys=256, repeats=1)
        many = run_async_aggregation(distinct_keys=256, repeats=64, seed=1)
        assert many.cache_hit_ratio > one_pass.cache_hit_ratio
        assert many.cache_hit_ratio > 0.3

    def test_software_only_never_hits_cache(self):
        result = run_async_aggregation(distinct_keys=128, repeats=3,
                                       software_only=True)
        assert result.cache_hit_ratio == 0.0

    def test_phases_rotate_hot_keys(self):
        static = run_async_aggregation(distinct_keys=512, repeats=6,
                                       value_slots=256, zipf_s=1.1,
                                       phases=1, seed=4, app_name="P1")
        shifting = run_async_aggregation(distinct_keys=512, repeats=6,
                                         value_slots=256, zipf_s=1.1,
                                         phases=3, seed=4, app_name="P3")
        # A shifting hot set is strictly harder for any fixed cache.
        assert shifting.cache_hit_ratio <= static.cache_hit_ratio + 0.05


class TestVotingHarness:
    def test_delay_in_microsecond_band(self):
        delay = voting_delay(rounds=6)
        assert 1e-7 < delay < 1e-3

    def test_software_only_slower(self):
        fast = voting_delay(rounds=6)
        slow = voting_delay(rounds=6, software_only=True, seed=1)
        assert slow > fast


class TestHelpers:
    def test_jain_fairness_bounds(self):
        assert jain_fairness([1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness([1.0, 0.0]) == pytest.approx(0.5)
        assert jain_fairness([]) == 0.0

    def test_format_table_alignment(self):
        table = format_table("t", ["a", "bb"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert lines[0] == "== t =="
        assert len(lines) == 4

    def test_count_loc_skips_comments_and_docstrings(self):
        from repro.experiments import exp_loc as module
        loc = count_loc(module)
        raw = len(open(module.__file__).read().splitlines())
        assert 0 < loc < raw

    def test_netfilter_loc(self):
        assert netfilter_loc({"a.nf": "{\n \"x\": 1\n}\n"}) == 3

    def test_training_speed_monotone_in_goodput(self):
        slow = training_speed("VGG16", 10.0)
        fast = training_speed("VGG16", 50.0)
        assert fast > slow
