"""Seed-determinism golden test for the optimized hot path.

Runs a 2-to-1 SyncAgtr round twice with the same seed and asserts the
two runs are indistinguishable, then pins the results to golden values
snapshotted from the pre-optimization simulator.  The hot-path work
(fused link events, inlined counters, memoized addressing) was required
to be *bit-identical* — same float timestamps, same event tie-breaking,
same counter values — and this test is the tripwire: an optimization
that reorders same-timestamp events or perturbs a float computation
shifts ``sim.now`` or the event count and fails here.
"""

from repro.control import build_rack
from repro.experiments.common import run_chaos_sync_round, run_sync_aggregation
from repro.netsim import ChaosSchedule

# Golden values captured on the pre-optimization simulator (and
# verified unchanged after the overhaul): 2 clients x 4096 values,
# seed 7.  Every *observable* quantity — timestamps, goodput, per-node
# counters — is bit-identical across the rewrite.
GOLDEN_GOODPUT_GBPS = 17.283429680577207
GOLDEN_FINAL_TIME_S = 7.583680000000015e-06
# The internal event count is the one number that legitimately moved:
# the fused link path schedules one event per idle-transmitter packet
# instead of two (pre-optimization: 2714).  Pinned so an accidental
# return to the two-event model — or a new per-packet event — is caught.
GOLDEN_EVENT_COUNT = 2186
GOLDEN_SWITCH_STATS = {"cntfwd_absorbed": 128, "inc_pkts": 384,
                       "multicasts": 128, "rx_pkts": 384, "tx_pkts": 384}
GOLDEN_CLIENT0_STATS = {"processed_pkts": 128, "rx_pkts": 128,
                        "tx_pkts": 132}
GOLDEN_SERVER_STATS = {"processed_pkts": 128, "rx_pkts": 128,
                       "tx_pkts": 128}


def _run_once(seed=7, n_values=4096):
    deployment = build_rack(2, 1, seed=seed)
    result = run_sync_aggregation(n_clients=2, n_values=n_values,
                                  seed=seed, deployment=deployment)
    return {
        "goodput_gbps": result.goodput_gbps,
        "final_time_s": deployment.sim.now,
        "event_count": deployment.sim._sequence,
        "switch": dict(sorted(deployment.switches[0].stats
                              .as_dict().items())),
        "client0": dict(sorted(deployment.clients[0].stats
                               .as_dict().items())),
        "server": dict(sorted(deployment.servers[0].stats
                              .as_dict().items())),
    }


def test_same_seed_is_bit_identical():
    first = _run_once()
    second = _run_once()
    # Full-precision float comparison on purpose: determinism means
    # identical bits, not "close enough".
    assert first == second


def test_matches_pre_optimization_golden_snapshot():
    run = _run_once()
    assert run["goodput_gbps"] == GOLDEN_GOODPUT_GBPS
    assert run["final_time_s"] == GOLDEN_FINAL_TIME_S
    assert run["event_count"] == GOLDEN_EVENT_COUNT
    assert run["switch"] == GOLDEN_SWITCH_STATS
    assert run["client0"] == GOLDEN_CLIENT0_STATS
    assert run["server"] == GOLDEN_SERVER_STATS


def test_different_workload_diverges():
    # Guard against the golden test passing vacuously (e.g. the stats
    # plumbing returning constants regardless of the simulation).  The
    # lossless aggregation path draws nothing from the RNG, so the
    # workload size — not the seed — is what must move the needle.
    assert _run_once(n_values=2048) != _run_once(n_values=4096)


# --- chaos-schedule determinism ---------------------------------------
# A ChaosSchedule is a pure function of (seed, topology): it must hash
# to the same fingerprint on every machine and across PRs, so a failing
# chaos seed reported in one session reproduces in the next.  Pinned on
# the exp_micro topology (build_rack(2, 1)).
GOLDEN_CHAOS_FINGERPRINT = \
    "09a9eff07cb4d2c45c0bb1ffbca8d7755c7a4a42e9faa58c5589018b91869662"
# And a full chaos round — random faults layered over the lossy link
# path — must itself be bit-identical run-to-run, ending at the same
# simulated instant.
GOLDEN_CHAOS_FINAL_TIME_S = 0.00202551008


def test_chaos_schedule_fingerprint_pinned():
    dep = build_rack(2, 1, seed=7)
    schedule = ChaosSchedule.random(11, dep, t0=1e-6, t1=5e-6,
                                    n_link_faults=4, n_switch_reboots=1,
                                    n_host_pauses=1)
    assert schedule.fingerprint() == GOLDEN_CHAOS_FINGERPRINT


def test_chaos_run_is_bit_identical():
    first = run_chaos_sync_round(n_clients=2, n_values=256, seed=0,
                                 chaos_seed=3)
    second = run_chaos_sync_round(n_clients=2, n_values=256, seed=0,
                                  chaos_seed=3)
    assert (first.values, first.final_time_s, first.fingerprint,
            first.failure, first.switch_stats) == \
        (second.values, second.final_time_s, second.fingerprint,
         second.failure, second.switch_stats)
    assert first.ok
    assert first.final_time_s == GOLDEN_CHAOS_FINAL_TIME_S
