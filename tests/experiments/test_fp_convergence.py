"""Seeded convergence regression: fp/quantized INC vs exact reduction.

Three contracts from DESIGN.md §4.8:

1. the table-fp trajectory tracks the exact float64 host reduction
   within the table-precision tolerance, round for round;
2. a trajectory is a pure function of its seed — two runs are
   bit-identical, and the sweep pool's worker count cannot leak into
   the result (workers=1 vs workers=2 produce the same lists);
3. importing and exercising the fp machinery leaves the integer
   aggregation path byte-identical — the pre-existing golden pins
   re-assert unchanged.
"""

import pytest

from repro.experiments.exp_training import convergence_trajectory
from repro.sweep import RunSpec, sweep_values

from . import test_golden_determinism as golden

pytestmark = pytest.mark.fpinc

# Small-but-real: a 16-dim SGD job over the simulated rack per call.
DIM = 16
ROUNDS = 4
SEED = 7


def _curve(mode, **overrides):
    kwargs = dict(mode=mode, workers=2, dim=DIM, rounds=ROUNDS, seed=SEED)
    kwargs.update(overrides)
    return convergence_trajectory(**kwargs)


def test_fp_trajectory_tracks_exact_reduction():
    exact = _curve("exact")
    fp = _curve("fp")
    assert len(fp) == len(exact) == ROUNDS + 1
    for got, want in zip(fp, exact):
        # 16-bit mantissa tables: relative error per round far below
        # the gradient signal; 1e-3 relative is a loose ceiling.
        assert got == pytest.approx(want, rel=1e-3, abs=1e-6)
    # And the job actually converges.
    assert fp[-1] < fp[0] / 2


def test_quantized_modes_converge():
    for mode in ("int8", "topk"):
        curve = _curve(mode)
        assert curve[-1] < curve[0], mode


def test_trajectory_is_bit_identical_for_same_seed():
    for mode in ("exact", "fp", "int8", "topk"):
        assert _curve(mode) == _curve(mode), mode


def test_trajectory_changes_with_seed():
    assert _curve("fp") != _curve("fp", seed=SEED + 1)


def test_sweep_worker_count_cannot_leak_into_trajectories():
    """workers=1 (in-process serial) vs workers=2 (subprocess pool)
    must produce bit-identical curves — the sweep determinism contract
    extended to the convergence harness."""
    specs = [RunSpec(
        "repro.experiments.exp_training.convergence_trajectory",
        {"mode": mode, "workers": 2, "dim": DIM, "rounds": ROUNDS,
         "seed": SEED}, label=f"conv:{mode}")
        for mode in ("exact", "fp")]
    serial = sweep_values(specs, workers=1)
    pooled = sweep_values(specs, workers=2)
    assert serial == pooled


def test_integer_golden_pins_survive_fp_machinery():
    """The new ops are purely additive: with every fp/quantized module
    imported (above), the integer-path golden snapshot re-asserts
    byte-identically."""
    run = golden._run_once()
    assert run["goodput_gbps"] == golden.GOLDEN_GOODPUT_GBPS
    assert run["final_time_s"] == golden.GOLDEN_FINAL_TIME_S
    assert run["event_count"] == golden.GOLDEN_EVENT_COUNT
    assert run["switch"] == golden.GOLDEN_SWITCH_STATS
    assert run["client0"] == golden.GOLDEN_CLIENT0_STATS
    assert run["server"] == golden.GOLDEN_SERVER_STATS


def test_chaos_fingerprint_survives_fp_machinery():
    from repro.control import build_rack
    from repro.netsim import ChaosSchedule

    dep = build_rack(2, 1, seed=7)
    schedule = ChaosSchedule.random(11, dep, t0=1e-6, t1=5e-6,
                                    n_link_faults=4, n_switch_reboots=1,
                                    n_host_pauses=1)
    assert schedule.fingerprint() == golden.GOLDEN_CHAOS_FINGERPRINT
