"""Property-based chaos: random fault schedules over a small rack.

For every seed hypothesis picks, a full sync round under a randomly
generated ``ChaosSchedule`` (link faults + a switch reboot + a host
pause) must uphold the invariants: the result is bit-identical to the
fault-free run or the failure is explicit, allocator slots are
conserved, and simulated time is monotone."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import run_chaos_sync_round

pytestmark = pytest.mark.chaos

SETTINGS = dict(max_examples=12, deadline=None, derandomize=True)


@settings(**SETTINGS)
@given(chaos_seed=st.integers(min_value=0, max_value=10**6))
def test_random_schedule_upholds_invariants(chaos_seed):
    result = run_chaos_sync_round(
        n_clients=3, n_values=128, seed=1, chaos_seed=chaos_seed,
        n_link_faults=4, n_switch_reboots=1, n_host_pauses=1)
    assert not result.violations, result.violations
    assert result.ok or result.failure, \
        "round neither completed nor failed explicitly"


@settings(**SETTINGS)
@given(chaos_seed=st.integers(min_value=0, max_value=10**6))
def test_link_faults_only_still_invariant(chaos_seed):
    # No reboot / pause: only wire-level chaos.  The transport layer is
    # expected to absorb it (explicit failure allowed only if a flap
    # starves a chunk past its attempt budget).
    result = run_chaos_sync_round(
        n_clients=2, n_values=128, seed=2, chaos_seed=chaos_seed,
        n_link_faults=5, n_switch_reboots=0, n_host_pauses=0)
    assert not result.violations, result.violations
    assert result.ok or result.failure


@settings(max_examples=6, deadline=None, derandomize=True)
@given(chaos_seed=st.integers(min_value=0, max_value=10**6))
def test_chaos_runs_are_reproducible(chaos_seed):
    # Same (seed, chaos_seed) twice -> identical values, end time and
    # schedule fingerprint.  Determinism is what makes every failing
    # seed above a one-line repro.
    a = run_chaos_sync_round(n_clients=2, n_values=128, seed=3,
                             chaos_seed=chaos_seed)
    b = run_chaos_sync_round(n_clients=2, n_values=128, seed=3,
                             chaos_seed=chaos_seed)
    assert (a.values, a.final_time_s, a.fingerprint, a.failure) == \
        (b.values, b.final_time_s, b.fingerprint, b.failure)
