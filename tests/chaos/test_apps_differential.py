"""Differential tests: every application must return results identical
to its in-memory baseline while each link duplicates and reorders
packets.  Flip-bit idempotence (paper §5.1) plus selective ACKs are
what make this hold — these tests fail loudly if either regresses."""

import pytest

from repro.apps import FlowMonitor, PaxosCluster, TrainingJob, WordCountJob
from repro.control import build_rack
from repro.netsim import CompositeFault, Duplicate, Reorder, scaled
from repro.workloads import (
    MODELS,
    SyntheticCorpus,
    SyntheticTrace,
    word_count,
)

pytestmark = pytest.mark.chaos

CAL = scaled()


def _inject(dep, dup_rate=0.05, reorder_rate=0.2, jitter_s=5e-7):
    for link in dep.topology.links.values():
        link.loss = CompositeFault([
            Duplicate(rate=dup_rate),
            Reorder(jitter_s=jitter_s, rate=reorder_rate),
        ])


def _faults_fired(dep):
    total = 0
    for link in dep.topology.links.values():
        stats = link.stats.as_dict()
        total += stats.get("dup_pkts", 0) + stats.get("reordered_pkts", 0)
    return total


class TestWordCountDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counts_match_in_memory_baseline(self, seed):
        dep = build_rack(2, 1, cal=CAL, seed=seed)
        _inject(dep)
        corpus = SyntheticCorpus(vocabulary_size=200, seed=3)
        shards = {"c0": list(corpus.documents(4)),
                  "c1": list(corpus.documents(4))}
        result = WordCountJob(dep, batch_words=128).run(shards)
        expected = word_count(doc for docs in shards.values()
                              for doc in docs)
        got = {word: result.counts.get(word, 0) for word in expected}
        assert got == expected
        assert _faults_fired(dep) > 0


class TestMonitoringDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flow_counts_match_exact_truth(self, seed):
        dep = build_rack(2, 1, cal=CAL, seed=seed)
        _inject(dep)
        trace = SyntheticTrace(n_flows=100, seed=2)
        records = list(trace.packets(600))
        shards = {"c0": records[:300], "c1": records[300:]}
        monitor = FlowMonitor(dep, batch_flows=16)
        monitor.feed(shards)
        dep.sim.run(until=dep.sim.now + 0.1)
        truth = trace.exact_counts(records)
        top = sorted(truth, key=truth.get, reverse=True)[:20]
        counts = monitor.query(top)
        assert {f: counts[f] for f in top} == {f: truth[f] for f in top}
        assert _faults_fired(dep) > 0


class TestTrainingDifferential:
    def test_round_aggregates_bit_identical_to_clean_run(self):
        captures = {}
        for label in ("clean", "chaos"):
            dep = build_rack(2, 1, cal=CAL, seed=4)
            if label == "chaos":
                _inject(dep)
            job = TrainingJob(dep, MODELS["AlexNet"], scale=20_000)
            seen = {}
            job.server_stub.bind_round(
                lambda r, values, seen=seen: seen.update({r: dict(values)}))
            job.run(iterations=3)
            assert all(c == 3 for c in job.iterations_done.values())
            captures[label] = seen
        assert set(captures["clean"]) == {0, 1, 2}
        assert captures["chaos"] == captures["clean"]


class TestPaxosDifferential:
    def test_all_decisions_match_owner_proposals(self):
        # Instances are sharded round-robin over proposers and each
        # proposer proposes cmd-<self>-<instance>, so the decided map is
        # exactly determined — duplication or reordering that slipped a
        # double-counted vote through would corrupt it.
        dep = build_rack(7, 1, cal=CAL, seed=5)
        _inject(dep)
        cluster = PaxosCluster(dep, proposers=["c0", "c1"],
                               acceptors=["c2", "c3"],
                               learners=["c4", "c5", "c6"])
        report = cluster.run(30, window=4)
        owners = ["c0", "c1"]
        expected = {i: f"cmd-{owners[i % 2]}-{i}" for i in range(30)}
        assert report.decided == expected
        assert _faults_fired(dep) > 0
