"""Mid-round switch reboot: the ISSUE acceptance scenario.

A ``SwitchReboot`` injected mid-round on ``exp_micro``'s topology
(``build_rack(2, 1)``) wipes the register file, the flow-state table and
the admission entries.  The round must still complete via the
controller's failover re-install with a correct result — or report an
explicit failure — but never return a silent wrong aggregate.

The 24-seed acceptance grid and the reboot-phase sweep fan out through
the sweep engine (worker count from ``REPRO_SWEEP_WORKERS``): each seed
is an independent pure run, and the engine's ordered merge keeps the
per-seed verdicts attributable.  A crashed or hung seed surfaces as a
structured ``RunFailure`` in the report instead of aborting the sweep.
"""

import pytest

from repro.control import TimeoutMonitor, build_rack
from repro.experiments.common import run_chaos_reboot_round
from repro.inc import Task
from repro.netsim import scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram
from repro.sweep import RunFailure, RunSpec, SweepEngine

pytestmark = pytest.mark.chaos

REBOOT_ROUND_FN = "repro.experiments.common.run_chaos_reboot_round"
# Generous wall budget per 256-value round (~10 ms nominal): only a
# pathological hang trips it, and a trip is a RunFailure, not a crash.
ROUND_TIMEOUT_S = 60.0


def _judge(tag, outcome, problems, require_reboot=True):
    """Append a description of anything wrong with one sweep outcome."""
    if isinstance(outcome, RunFailure):
        problems.append(f"{tag}: [{outcome.kind}] {outcome.message}")
        return
    result = outcome.value
    if result.violations:
        problems.append(f"{tag}: invariant violations {result.violations}")
    elif not (result.ok or result.failure):
        problems.append(f"{tag}: round neither completed nor failed "
                        f"explicitly")
    elif require_reboot and result.switch_stats.get("reboots") != 1:
        problems.append(f"{tag}: expected exactly one reboot, stats="
                        f"{result.switch_stats.get('reboots')}")
    elif require_reboot and result.audit.get("failovers") != 1:
        problems.append(f"{tag}: expected exactly one failover in the "
                        f"audit trail, audit={result.audit}")
    elif require_reboot and result.audit.get("flows_resynced", 0) < 1:
        problems.append(f"{tag}: failover resynced no flows, "
                        f"audit={result.audit}")
    elif require_reboot and not any(entry[0] == "failover"
                                    for entry in result.audit_trail):
        problems.append(f"{tag}: audit log lacks the failover entry: "
                        f"{result.audit_trail}")


class TestMidRoundReboot:
    SEEDS = tuple(range(24))

    def test_round_survives_reboot_or_fails_loudly_all_seeds(self):
        specs = [RunSpec(REBOOT_ROUND_FN, {"frac": 0.45}, seed=seed,
                         label=f"reboot-seed-{seed}",
                         timeout_s=ROUND_TIMEOUT_S)
                 for seed in self.SEEDS]
        outcomes = SweepEngine().run(specs)
        problems = []
        for seed, outcome in zip(self.SEEDS, outcomes):
            _judge(f"seed {seed}", outcome, problems)
        assert not problems, "\n".join(problems)

    def test_reboot_phase_sweep(self):
        fracs = (0.1, 0.3, 0.6, 0.9)
        specs = [RunSpec(REBOOT_ROUND_FN, {"frac": frac}, seed=5,
                         label=f"reboot-frac-{frac}",
                         timeout_s=ROUND_TIMEOUT_S)
                 for frac in fracs]
        outcomes = SweepEngine().run(specs)
        problems = []
        for frac, outcome in zip(fracs, outcomes):
            _judge(f"frac {frac}", outcome, problems, require_reboot=False)
        assert not problems, "\n".join(problems)

    def test_server_gate_blocks_unprocessed_packets(self):
        # During the failover window INC packets bypass the (cold) switch
        # pipeline; the server agent must refuse to treat them as
        # aggregated results rather than folding partial sums.
        result = run_chaos_reboot_round(seed=3, frac=0.45)
        assert not result.violations
        assert result.ok
        assert result.server_stats.get("unprocessed_rx", 0) >= 1

    def test_traced_reboot_span_counts_match_audit(self):
        # The flight recorder's failover spans must agree with the
        # controller's own audit counters (span <-> metrics consistency
        # on the chaos path); tracing must not perturb the verdict.
        from repro.obs import TRACE, keep_registries, start_trace

        start_trace()
        try:
            result = run_chaos_reboot_round(seed=7, frac=0.45)
            assert not result.violations
            assert result.ok or result.failure
            assert result.audit.get("failovers") == 1
            assert TRACE.count("control.failover") == 1
            assert TRACE.count("control.reboot") == \
                result.switch_stats.get("reboots")
            assert TRACE.count("inc.resync") == \
                result.audit.get("flows_resynced")
        finally:
            TRACE.clear()
            keep_registries(False)


class TestTwoLevelTimeouts:
    TCAL = scaled(first_level_timeout_s=0.05, second_level_timeout_s=0.3,
                  controller_poll_interval_s=0.02)

    def _app(self, dep, name="APP"):
        prog = RIPProgram(app_name=name, add_to_field="r.kvs",
                          cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        (config,) = dep.controller.register([prog], server="s0",
                                            clients=["c0"], value_slots=64)
        return config

    def test_reboot_without_failover_trips_both_levels(self):
        """A reboot wipes the admission entries, so the app goes silent
        from the controller's vantage point.  With the failover handler
        deliberately withheld, the first-level timeout must fire, then
        the second-level timeout (paper §5.2.2) must expire the app
        instead of leaking its registration forever."""
        dep = build_rack(1, 1, cal=self.TCAL, seed=11)
        config = self._app(dep)
        expired = {}
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=self.TCAL,
                                 on_expire=lambda app, data:
                                 expired.update({app: data}))
        agent = dep.client_agent(0)
        for value in (9, 3):   # second task maps the key on the switch
            done = agent.submit(Task(app=config, items=[("k", value)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)

        dep.switches[0].reboot()   # no handle_switch_reboot on purpose
        dep.sim.run(until=dep.sim.now + 1.0)
        assert monitor.first_level_fired("APP")
        assert monitor.second_level_fired("APP")
        assert "APP" in expired

    def test_prompt_failover_keeps_active_app_alive(self):
        """If the controller re-installs the entries right away, an app
        that keeps talking never reaches even the first timeout level."""
        dep = build_rack(1, 1, cal=self.TCAL, seed=11)
        config = self._app(dep)
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=self.TCAL)
        agent = dep.client_agent(0)
        rebooted = False
        deadline = 0.3
        while dep.sim.now < deadline:
            done = agent.submit(Task(app=config, items=[("k", 1)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)
            dep.sim.run(until=dep.sim.now + 0.01)
            if not rebooted and dep.sim.now > 0.1:
                dep.switches[0].reboot()
                dep.controller.handle_switch_reboot(dep.switches[0])
                rebooted = True
        assert rebooted
        assert not monitor.first_level_fired("APP")
