"""Mid-round switch reboot: the ISSUE acceptance scenario.

A ``SwitchReboot`` injected mid-round on ``exp_micro``'s topology
(``build_rack(2, 1)``) wipes the register file, the flow-state table and
the admission entries.  The round must still complete via the
controller's failover re-install with a correct result — or report an
explicit failure — but never return a silent wrong aggregate.
"""

import pytest

from repro.control import TimeoutMonitor, build_rack
from repro.experiments.common import run_chaos_sync_round
from repro.inc import Task
from repro.netsim import ChaosSchedule, SwitchReboot, scaled
from repro.protocol import CntFwdSpec, ForwardTarget, RIPProgram

pytestmark = pytest.mark.chaos


def _reboot_schedule(frac):
    def factory(base_elapsed, deployment):
        return ChaosSchedule([SwitchReboot(
            switch=deployment.switches[0].name, at=frac * base_elapsed)])
    return factory


class TestMidRoundReboot:
    @pytest.mark.parametrize("seed", range(24))
    def test_round_survives_reboot_or_fails_loudly(self, seed):
        result = run_chaos_sync_round(
            n_clients=2, n_values=256, seed=seed,
            schedule_factory=_reboot_schedule(0.45))
        # Never a silent wrong answer, conservation intact, time monotone.
        assert not result.violations, result.violations
        assert result.ok or result.failure, \
            "round neither completed nor failed explicitly"
        assert result.switch_stats.get("reboots") == 1

    @pytest.mark.parametrize("frac", [0.1, 0.3, 0.6, 0.9])
    def test_reboot_phase_sweep(self, frac):
        result = run_chaos_sync_round(
            n_clients=2, n_values=256, seed=5,
            schedule_factory=_reboot_schedule(frac))
        assert not result.violations, result.violations
        assert result.ok or result.failure

    def test_server_gate_blocks_unprocessed_packets(self):
        # During the failover window INC packets bypass the (cold) switch
        # pipeline; the server agent must refuse to treat them as
        # aggregated results rather than folding partial sums.
        result = run_chaos_sync_round(
            n_clients=2, n_values=256, seed=3,
            schedule_factory=_reboot_schedule(0.45))
        assert not result.violations
        assert result.ok
        assert result.server_stats.get("unprocessed_rx", 0) >= 1


class TestTwoLevelTimeouts:
    TCAL = scaled(first_level_timeout_s=0.05, second_level_timeout_s=0.3,
                  controller_poll_interval_s=0.02)

    def _app(self, dep, name="APP"):
        prog = RIPProgram(app_name=name, add_to_field="r.kvs",
                          cntfwd=CntFwdSpec(target=ForwardTarget.SRC))
        (config,) = dep.controller.register([prog], server="s0",
                                            clients=["c0"], value_slots=64)
        return config

    def test_reboot_without_failover_trips_both_levels(self):
        """A reboot wipes the admission entries, so the app goes silent
        from the controller's vantage point.  With the failover handler
        deliberately withheld, the first-level timeout must fire, then
        the second-level timeout (paper §5.2.2) must expire the app
        instead of leaking its registration forever."""
        dep = build_rack(1, 1, cal=self.TCAL, seed=11)
        config = self._app(dep)
        expired = {}
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=self.TCAL,
                                 on_expire=lambda app, data:
                                 expired.update({app: data}))
        agent = dep.client_agent(0)
        for value in (9, 3):   # second task maps the key on the switch
            done = agent.submit(Task(app=config, items=[("k", value)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)

        dep.switches[0].reboot()   # no handle_switch_reboot on purpose
        dep.sim.run(until=dep.sim.now + 1.0)
        assert monitor.first_level_fired("APP")
        assert monitor.second_level_fired("APP")
        assert "APP" in expired

    def test_prompt_failover_keeps_active_app_alive(self):
        """If the controller re-installs the entries right away, an app
        that keeps talking never reaches even the first timeout level."""
        dep = build_rack(1, 1, cal=self.TCAL, seed=11)
        config = self._app(dep)
        monitor = TimeoutMonitor(dep.sim, dep.controller, cal=self.TCAL)
        agent = dep.client_agent(0)
        rebooted = False
        deadline = 0.3
        while dep.sim.now < deadline:
            done = agent.submit(Task(app=config, items=[("k", 1)],
                                     expect_result=False))
            dep.sim.run_until(done, limit=5.0)
            dep.sim.run(until=dep.sim.now + 0.01)
            if not rebooted and dep.sim.now > 0.1:
                dep.switches[0].reboot()
                dep.controller.handle_switch_reboot(dep.switches[0])
                rebooted = True
        assert rebooted
        assert not monitor.first_level_fired("APP")
