"""Unit tests for counters, time series, meters, and percentiles."""

import pytest

from repro.netsim import (
    Counter,
    LatencyRecorder,
    RateMeter,
    TimeSeries,
    mean,
    percentile,
)


class TestStatFunctions:
    def test_mean_of_values(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_percentile_endpoints(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_percentile_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_percentile_unsorted_input(self):
        assert percentile([5, 1, 3], 50) == 3

    def test_percentile_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCounter:
    def test_default_is_zero(self):
        assert Counter()["missing"] == 0

    def test_add_accumulates(self):
        c = Counter()
        c.add("pkts")
        c.add("pkts", 2)
        assert c["pkts"] == 3

    def test_as_dict_snapshot(self):
        c = Counter()
        c.add("a", 5)
        snap = c.as_dict()
        c.add("a")
        assert snap == {"a": 5}


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries("x")
        ts.record(1.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.last() == (2.0, 20.0)
        assert len(ts) == 2

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(1.0, 1.0)

    def test_window_mean(self):
        ts = TimeSeries()
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 100.0)]:
            ts.record(t, v)
        assert ts.window_mean(0.0, 2.0) == 2.0

    def test_empty_last_is_none(self):
        assert TimeSeries().last() is None


class TestRateMeter:
    def test_average_rate(self):
        meter = RateMeter(bucket_s=1.0)
        meter.record(0.5, 125_000_000)  # 1 Gbit in bucket 0
        meter.record(1.5, 125_000_000)  # 1 Gbit in bucket 1
        assert meter.average_gbps(0.0, 2.0) == pytest.approx(1.0)

    def test_series_buckets(self):
        meter = RateMeter(bucket_s=0.5)
        meter.record(0.1, 1000)
        meter.record(0.2, 1000)
        meter.record(0.7, 500)
        series = dict(meter.series())
        assert series[0.0] == pytest.approx(2000 * 8 / 0.5 / 1e9)
        assert series[0.5] == pytest.approx(500 * 8 / 0.5 / 1e9)

    def test_empty_meter_rate_is_zero(self):
        assert RateMeter().average_gbps() == 0.0

    def test_bucket_size_validated(self):
        with pytest.raises(ValueError):
            RateMeter(bucket_s=0)


class TestLatencyRecorder:
    def test_summary_statistics(self):
        rec = LatencyRecorder("rpc")
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            rec.record(v)
        s = rec.summary()
        assert s["count"] == 5
        assert s["mean"] == pytest.approx(22.0)
        assert s["p50"] == 3.0
        assert s["max"] == 100.0

    def test_p99_dominated_by_tail(self):
        rec = LatencyRecorder()
        for _ in range(99):
            rec.record(1.0)
        rec.record(1000.0)
        # Interpolated p99 sits between the 98th and 99th order statistic.
        assert rec.p(99) > 10.0
        assert rec.p(100) == 1000.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_empty_summary(self):
        assert LatencyRecorder().summary() == {"count": 0}


class TestPercentileEdges:
    def test_single_element_any_pct(self):
        for pct in (0, 37.5, 50, 99, 100):
            assert percentile([7.0], pct) == 7.0

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.001)
        with pytest.raises(ValueError):
            percentile([1.0], 100.001)

    def test_rank_exactly_on_order_statistic(self):
        # pct=25 of 5 elements -> rank 1.0 exactly: no interpolation.
        assert percentile([10, 20, 30, 40, 50], 25) == 20

    def test_interpolation_between_adjacent_elements(self):
        # pct=10 of 2 elements -> rank 0.1: 0.9*1 + 0.1*2.
        assert percentile([1.0, 2.0], 10) == pytest.approx(1.1)

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([5, 1, 3, 2, 4], 50) == 3


class TestTimeSeriesWindowMean:
    def _series(self):
        ts = TimeSeries("x")
        for t, v in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 40.0)]:
            ts.record(t, v)
        return ts

    def test_window_is_half_open(self):
        # [1.0, 3.0) includes t=1,2 but excludes t=3.
        assert self._series().window_mean(1.0, 3.0) == 25.0

    def test_start_boundary_included(self):
        assert self._series().window_mean(0.0, 0.5) == 10.0

    def test_empty_window_is_zero(self):
        assert self._series().window_mean(0.25, 0.75) == 0.0

    def test_out_of_order_record_rejected(self):
        ts = self._series()
        with pytest.raises(ValueError):
            ts.record(2.5, 1.0)


class TestRateMeterWindows:
    def test_average_window_bucket_boundaries(self):
        # bucket_s=0.01: bytes at t=0.005 land in bucket 0 ([0, 0.01)).
        meter = RateMeter(bucket_s=0.01)
        meter.record(0.005, 125)     # bucket 0
        meter.record(0.015, 250)     # bucket 1
        meter.record(0.025, 500)     # bucket 2
        # [0.01, 0.02): bucket 1 only (bucket 0 below start, bucket 2
        # at end is excluded by the half-open filter).
        assert meter.average_gbps(0.01, 0.02) == \
            pytest.approx(250 * 8 / 0.01 / 1e9)

    def test_average_window_end_excludes_boundary_bucket(self):
        meter = RateMeter(bucket_s=0.01)
        meter.record(0.000, 100)
        meter.record(0.010, 900)
        # end=0.01 excludes the bucket starting exactly at 0.01.
        assert meter.average_gbps(0.0, 0.01) == \
            pytest.approx(100 * 8 / 0.01 / 1e9)

    def test_default_span_is_first_to_last(self):
        meter = RateMeter(bucket_s=0.01)
        meter.record(0.0, 1000)
        meter.record(0.5, 1000)
        # Default span [0, 0.5): the bucket at 0.5 falls outside, so
        # only the first 1000 bytes count over the 0.5 s span.
        assert meter.average_gbps() == pytest.approx(1000 * 8 / 0.5 / 1e9)

    def test_degenerate_window_is_zero(self):
        meter = RateMeter()
        meter.record(1.0, 100)
        assert meter.average_gbps(2.0, 2.0) == 0.0
        assert meter.average_gbps(3.0, 2.0) == 0.0
