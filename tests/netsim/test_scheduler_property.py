"""Property suite: the tiered scheduler is order-identical to a heap.

The reference model is the original single-``heapq`` scheduler: a list
of ``(when, seq, callback, value)`` tuples popped one at a time.  The
properties drive both schedulers through the same randomly generated
command sequences — relative and absolute schedules, zero-delay bursts,
timer cancellations, interleaved ``peek``/``run(until)`` boundaries —
and require the dispatch order, timestamps, and final clock to match
exactly.  Any tie-breaking or cohort-boundary bug in the cohort table /
spill heap shows up as a divergent dispatch log.
"""

import heapq
import math

from hypothesis import given, settings, strategies as st

from repro.netsim import Simulator


class HeapReference:
    """The pre-cohort scheduler: one binary heap, ``(time, seq)`` order.

    Cancellation is modelled the way the production scheduler defines
    it: a cancelled entry still advances the clock at its timestamp but
    its callback never runs.
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, callback, value=None):
        self.schedule_at(self.now + delay, callback, value)

    def schedule_at(self, when, callback, value=None):
        self._seq += 1
        entry = [when, self._seq, callback, value]
        heapq.heappush(self._heap, entry)

    def call_later(self, delay, callback, value=None):
        when = self.now + delay
        self._seq += 1
        entry = [when, self._seq, callback, value]
        heapq.heappush(self._heap, entry)
        return entry

    def call_at(self, when, callback, value=None):
        self._seq += 1
        entry = [when, self._seq, callback, value]
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry):
        entry[2] = None

    def peek(self):
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until=None):
        heap = self._heap
        while heap:
            when = heap[0][0]
            if until is not None and when > until:
                break
            when, _seq, callback, value = heapq.heappop(heap)
            self.now = when
            if callback is not None:
                callback(value)
        if until is not None:
            self.now = max(self.now, until)


# Delays drawn from a small grid so same-timestamp cohorts (including
# zero-delay bursts) are common, plus arbitrary floats for irregularity.
_DELAYS = st.one_of(
    st.sampled_from([0.0, 0.0, 1.0, 1.0, 2.0, 0.5, 1e-9]),
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
)


@st.composite
def _programs(draw):
    """A program is a list of scheduling commands executed up front plus
    commands executed *from inside callbacks* (self-rescheduling)."""
    n = draw(st.integers(min_value=1, max_value=40))
    commands = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["schedule", "schedule", "schedule_at", "timer", "timer",
             "chain"]))
        delay = draw(_DELAYS)
        cancel = draw(st.booleans()) if kind == "timer" else False
        # chain: the callback reschedules itself `depth` more times.
        depth = draw(st.integers(1, 3)) if kind == "chain" else 0
        redelay = draw(_DELAYS) if kind == "chain" else 0.0
        commands.append((kind, delay, cancel, depth, redelay))
    return commands


def _execute(sim, commands, log):
    """Load one command program into a scheduler, logging dispatches."""
    timers = []

    def make_cb(tag):
        def cb(value):
            log.append((sim.now, tag, value))
        return cb

    def make_chain(tag, depth, redelay):
        state = {"left": depth}

        def cb(value):
            log.append((sim.now, tag, state["left"]))
            if state["left"] > 0:
                state["left"] -= 1
                sim.schedule(redelay, cb, None)
        return cb

    for index, (kind, delay, cancel, depth, redelay) in enumerate(commands):
        tag = f"{kind}{index}"
        if kind == "schedule":
            sim.schedule(delay, make_cb(tag), index)
        elif kind == "schedule_at":
            sim.schedule_at(sim.now + delay, make_cb(tag), index)
        elif kind == "timer":
            handle = sim.call_later(delay, make_cb(tag), index)
            if cancel:
                timers.append(handle)
        elif kind == "chain":
            sim.schedule(delay, make_chain(tag, depth, redelay), None)
    for handle in timers:
        if type(handle) is list:          # reference model entry
            HeapReference.cancel(handle)
        else:                             # TimerHandle (list subclass)
            handle.cancel()


@settings(max_examples=200, deadline=None)
@given(_programs())
def test_dispatch_order_matches_heap_reference(commands):
    ref_log, new_log = [], []
    ref = HeapReference()
    _execute(ref, commands, ref_log)
    ref.run()

    sim = Simulator(seed=0)
    _execute(sim, commands, new_log)
    sim.run()

    assert new_log == ref_log
    assert sim.now == ref.now


@settings(max_examples=200, deadline=None)
@given(_programs(),
       st.lists(st.floats(min_value=0.0, max_value=12.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=5))
def test_interleaved_run_until_and_peek_boundaries(commands, boundaries):
    """run(until) must stop exactly at cohort boundaries and peek must
    agree between models at every pause point."""
    boundaries = sorted(boundaries)
    ref_log, new_log = [], []
    ref = HeapReference()
    _execute(ref, commands, ref_log)
    sim = Simulator(seed=0)
    _execute(sim, commands, new_log)

    for until in boundaries:
        if until < ref.now:
            continue
        ref.run(until=until)
        sim.run(until=until)
        assert new_log == ref_log
        assert sim.now == ref.now
        assert sim.peek() == ref.peek() or (
            # peek may differ only in how cancelled heads are reported;
            # both must still agree on "nothing pending".
            math.isinf(sim.peek()) == math.isinf(ref.peek()))
    ref.run()
    sim.run()
    assert new_log == ref_log
    assert sim.now == ref.now


@settings(max_examples=100, deadline=None)
@given(_programs())
def test_step_by_step_matches_run(commands):
    """Driving the scheduler one step() at a time dispatches the exact
    sequence a single run() would (shared dispatch state)."""
    run_log, step_log = [], []
    whole = Simulator(seed=0)
    _execute(whole, commands, run_log)
    whole.run()

    stepped = Simulator(seed=0)
    _execute(stepped, commands, step_log)
    while stepped.peek() != float("inf"):
        try:
            stepped.step()
        except IndexError:
            break
    assert step_log == run_log
    assert stepped.now == whole.now


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(_DELAYS, st.booleans()),
                min_size=1, max_size=30))
def test_cancellation_timestamps_still_advance_clock(pairs):
    """A drained schedule ends at the same clock whether its last timers
    fired or were cancelled (cancelled entries advance time lazily)."""
    sim = Simulator(seed=0)
    fired = []
    latest = 0.0
    for delay, cancel in pairs:
        handle = sim.call_later(delay, fired.append, delay)
        latest = max(latest, handle.when)
        if cancel:
            assert handle.cancel()
            assert handle.cancelled
            assert not handle.cancel()     # idempotent
    sim.run()
    assert sim.now == latest
    assert fired == sorted(
        d for (d, cancel) in pairs if not cancel)
