"""Tests for calibration scaling and the host CPU service model."""

import pytest

from repro.netsim import Calibration, DEFAULT_CALIBRATION, Host, Simulator, scaled


class TestCalibration:
    def test_default_is_paper_testbed_scale(self):
        cal = DEFAULT_CALIBRATION
        assert cal.link_bandwidth_bps == 100e9
        assert cal.w_max == 256
        assert cal.kv_pairs_per_packet == 32
        assert cal.memory_segments == 32
        assert cal.segment_registers == 40_000
        assert cal.pipeline_stages == 12
        assert cal.map_stages == 8

    def test_scaled_overrides_single_field(self):
        cal = scaled(w_max=64)
        assert cal.w_max == 64
        assert cal.link_bandwidth_bps == 100e9

    def test_scaled_does_not_mutate_default(self):
        scaled(w_max=8)
        assert DEFAULT_CALIBRATION.w_max == 256

    def test_calibration_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CALIBRATION.w_max = 1


class TestHostCpuModel:
    def test_run_on_core_charges_time(self):
        sim = Simulator()
        host = Host(sim, "h", cores=1, rx_cpu_cost_s=1e-3)
        seen = []
        host.run_on_core(2e-3, lambda _: seen.append(sim.now))
        sim.run()
        assert seen == [pytest.approx(2e-3)]

    def test_run_on_core_zero_cost_is_immediate(self):
        sim = Simulator()
        host = Host(sim, "h")
        seen = []
        host.run_on_core(0.0, lambda _: seen.append(sim.now))
        assert seen == [0.0]

    def test_extra_work_contends_with_packet_processing(self):
        sim = Simulator()
        host = Host(sim, "h", cores=1, rx_cpu_cost_s=1e-3)
        order = []
        host.set_handler(lambda p, l: order.append(("pkt", sim.now)))

        class P:
            size_bytes = 10

        host.receive(P(), None)
        host.run_on_core(1e-3, lambda _: order.append(("work", sim.now)))
        sim.run()
        assert order == [("pkt", pytest.approx(1e-3)),
                         ("work", pytest.approx(2e-3))]

    def test_utilisation_accounting(self):
        sim = Simulator()
        host = Host(sim, "h", cores=2, rx_cpu_cost_s=1e-3)

        class P:
            size_bytes = 10

        host.set_handler(lambda p, l: None)
        for _ in range(4):
            host.receive(P(), None)
        sim.run()
        # 4 packets x 1 ms over 2 cores within a 2 ms horizon: full.
        assert host.cpu_utilisation_until(2e-3) == pytest.approx(1.0)
        assert host.cpu_utilisation_until(4e-3) == pytest.approx(0.5)
