"""Unit tests for the FIFO store."""

import pytest

from repro.netsim import Simulator, Store, StoreFull


@pytest.fixture
def sim():
    return Simulator(seed=0)


class TestStoreBasics:
    def test_put_then_get_nowait(self, sim):
        store = Store(sim)
        store.put_nowait("a")
        store.put_nowait("b")
        assert store.get_nowait() == "a"
        assert store.get_nowait() == "b"

    def test_get_nowait_empty_raises(self, sim):
        store = Store(sim)
        with pytest.raises(LookupError):
            store.get_nowait()

    def test_len_tracks_contents(self, sim):
        store = Store(sim)
        assert len(store) == 0
        store.put_nowait(1)
        assert len(store) == 1
        store.get_nowait()
        assert len(store) == 0

    def test_bounded_put_nowait_raises_when_full(self, sim):
        store = Store(sim, capacity=1)
        store.put_nowait("x")
        with pytest.raises(StoreFull):
            store.put_nowait("y")

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_drain_empties_store(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put_nowait(i)
        assert store.drain() == [0, 1, 2]
        assert len(store) == 0


class TestBlockingOperations:
    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        out = []

        def consumer():
            item = yield store.get()
            out.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(2.0, lambda _: store.put_nowait("late"))
        sim.run()
        assert out == [(2.0, "late")]

    def test_getters_are_served_fifo(self, sim):
        store = Store(sim)
        out = []

        def consumer(name):
            item = yield store.get()
            out.append((name, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.schedule(1.0, lambda _: store.put_nowait("a"))
        sim.schedule(2.0, lambda _: store.put_nowait("b"))
        sim.run()
        assert out == [("first", "a"), ("second", "b")]

    def test_put_blocks_when_full_and_resumes(self, sim):
        store = Store(sim, capacity=1)
        store.put_nowait("occupies")
        log = []

        def producer():
            yield store.put("blocked-item")
            log.append(("put-done", sim.now))

        sim.process(producer())

        def consumer():
            yield sim.timeout(3.0)
            item = yield store.get()
            log.append(("got", item, sim.now))
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(consumer())
        sim.run()
        assert ("put-done", 3.0) in log
        assert ("got", "occupies", 3.0) in log
        assert ("got", "blocked-item", 3.0) in log

    def test_put_event_triggers_immediately_when_space(self, sim):
        store = Store(sim, capacity=2)
        ev = store.put("x")
        assert ev.triggered
        assert store.get_nowait() == "x"
